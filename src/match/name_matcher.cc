#include "match/name_matcher.h"

#include <algorithm>
#include <cmath>

#include "match/features.h"
#include "text/lexicon.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace schemr {

namespace {

/// True if `needle` is a subsequence of `haystack` sharing its first
/// character ("qty" ⊑ "quantity", "ht" ⊑ "height") -- the shape of
/// consonant-skeleton abbreviations.
bool IsAbbreviationSubsequence(const std::string& needle,
                               const std::string& haystack) {
  if (needle.empty() || haystack.empty() || needle[0] != haystack[0]) {
    return false;
  }
  // Stemming rewrites y→i ("quantity" → "quantiti") but leaves vowel-free
  // abbreviations like "qty" untouched; fold the two together here.
  auto fold = [](char c) { return c == 'y' ? 'i' : c; };
  size_t h = 0;
  for (char raw : needle) {
    char c = fold(raw);
    while (h < haystack.size() && fold(haystack[h]) != c) ++h;
    if (h == haystack.size()) return false;
    ++h;
  }
  return true;
}

/// Initials of a word list ("date","of","birth" → "dob").
std::string Initials(const std::vector<std::string>& words) {
  std::string out;
  for (const std::string& word : words) {
    if (!word.empty()) out += word[0];
  }
  return out;
}

}  // namespace

std::vector<std::string> NameMatcher::NormalizeName(
    const std::string& name) const {
  std::vector<std::string> words;
  for (const std::string& raw : TokenizeToStrings(name)) {
    std::string word = ToLowerAscii(raw);
    if (options_.stem) word = PorterStem(word);
    if (!word.empty()) words.push_back(std::move(word));
  }
  return words;
}

NgramProfile NameMatcher::ProfileOf(const std::string& word) const {
  NgramProfile profile;
  if (options_.exhaustive_ngrams) {
    profile = BuildNgramProfile(word, 1, word.size());
  } else {
    profile = BuildNgramProfile(word, options_.min_n, options_.max_n);
    // Always include the whole word so exact matches of short words score.
    ++profile[word];
  }
  return profile;
}

double NameMatcher::WordSimilarity(const std::string& a,
                                   const NgramProfile& pa,
                                   const std::string& b,
                                   const NgramProfile& pb) const {
  return LiftDice(DiceSimilarity(pa, pb), a, b);
}

double NameMatcher::LiftDice(double dice, const std::string& a,
                             const std::string& b) const {
  const std::string& shorter = a.size() <= b.size() ? a : b;
  const std::string& longer = a.size() <= b.size() ? b : a;
  if (shorter.size() >= 2 && shorter.size() < longer.size()) {
    double coverage = static_cast<double>(shorter.size()) /
                      static_cast<double>(longer.size());
    if (longer.compare(0, shorter.size(), shorter) == 0) {
      // Prefix abbreviations ("pat" for "patient", "obs" for
      // "observation") share few long grams, so pure Dice under-scores
      // exactly the case the paper highlights.
      dice = std::max(dice, 0.55 + 0.45 * coverage);
    } else if (IsAbbreviationSubsequence(shorter, longer)) {
      // Consonant-skeleton abbreviations ("qty" for "quantity", "ht" for
      // "height"): weaker evidence than a prefix, still far above random
      // gram overlap.
      dice = std::max(dice, 0.35 + 0.35 * coverage);
    }
  }
  // Synonyms (gender↔sex) share no grams at all; only the lexicon can
  // recover them.
  if (options_.use_synonyms && dice < 0.85 && AreSynonyms(a, b)) {
    dice = 0.85;
  }
  return dice;
}

NameMatcher::PreparedName NameMatcher::Prepare(const std::string& name) const {
  PreparedName p;
  p.words = NormalizeName(name);
  for (const auto& w : p.words) p.word_profiles.push_back(ProfileOf(w));
  p.concat = Join(p.words, "");
  p.concat_profile = ProfileOf(p.concat);
  p.initials = Initials(p.words);
  return p;
}

double NameMatcher::PairSimilarity(const PreparedName& a,
                                   const PreparedName& b) const {
  if (a.words.empty() || b.words.empty()) return 0.0;

  // Word-level soft alignment: every word finds its best counterpart; the
  // two directional sums combine into a generalized Dice.
  double sum_a = 0.0;
  for (size_t i = 0; i < a.words.size(); ++i) {
    double best = 0.0;
    for (size_t j = 0; j < b.words.size(); ++j) {
      best = std::max(best, WordSimilarity(a.words[i], a.word_profiles[i],
                                           b.words[j], b.word_profiles[j]));
    }
    sum_a += best;
  }
  double sum_b = 0.0;
  for (size_t j = 0; j < b.words.size(); ++j) {
    double best = 0.0;
    for (size_t i = 0; i < a.words.size(); ++i) {
      best = std::max(best, WordSimilarity(a.words[i], a.word_profiles[i],
                                           b.words[j], b.word_profiles[j]));
    }
    sum_b += best;
  }
  double score = (sum_a + sum_b) /
                 static_cast<double>(a.words.size() + b.words.size());

  // Concatenated comparison rescues cross-word grams ("dateofbirth" vs
  // "date_of_birth" tokenizations that differ in word splits).
  score = std::max(score, WordSimilarity(a.concat, a.concat_profile,
                                         b.concat, b.concat_profile));

  // Acronyms: a single short word equal to the other side's initials
  // ("dob" vs date_of_birth). Both directions.
  auto acronym = [](const PreparedName& single, const PreparedName& multi) {
    return single.words.size() == 1 && multi.words.size() >= 2 &&
           single.words[0] == multi.initials;
  };
  if (acronym(a, b) || acronym(b, a)) score = std::max(score, 0.8);

  return score;
}

double NameMatcher::NameSimilarity(const std::string& a,
                                   const std::string& b) const {
  return PairSimilarity(Prepare(a), Prepare(b));
}

NgramProfile NameMatcher::WordProfile(const std::string& word) const {
  return ProfileOf(word);
}

double NameMatcher::NormalizedWordSimilarity(const std::string& a,
                                             const NgramProfile& pa,
                                             const std::string& b,
                                             const NgramProfile& pb) const {
  return WordSimilarity(a, pa, b, pb);
}

double NameMatcher::PreparedWordSimilarity(const TermFeature& a,
                                           const TermFeature& b) const {
  return LiftDice(PackedDice(a.profile, b.profile), a.text, b.text);
}

namespace {

/// The shared term-pair memo lookup: identical texts score exactly 1.0
/// (which WordSimilarity also produces for identical words — identical
/// non-empty profiles give Dice 1.0 and no bonus applies), everything
/// else computes once per (query term, candidate term) pair and is reused
/// across every element pair of this candidate — and by the context
/// matcher, which memoizes the same function.
double MemoizedSimilarity(const NameMatcher& matcher,
                          const SchemaFeatures& qf, const SchemaFeatures& cf,
                          MatchScratch* scratch, uint32_t q_term,
                          uint32_t c_term) {
  double* slot = scratch->Slot(q_term, c_term);
  if (std::isnan(*slot)) {
    const TermFeature& a = qf.terms[q_term];
    const TermFeature& b = cf.terms[c_term];
    *slot = a.text == b.text ? 1.0 : matcher.PreparedWordSimilarity(a, b);
  }
  return *slot;
}

/// PairSimilarity on NameFeatures: the same word alignment, concat rescue
/// and acronym check, with word profiles and pair scores coming from the
/// precomputed catalog instead of per-candidate Prepare() calls. Sums
/// iterate words in name order — the legacy FP summation order.
double PreparedPairSimilarity(const NameMatcher& matcher,
                              const SchemaFeatures& qf,
                              const SchemaFeatures& cf, MatchScratch* scratch,
                              const NameFeature& a, const NameFeature& b) {
  if (a.words.empty() || b.words.empty()) return 0.0;

  double sum_a = 0.0;
  for (uint32_t qw : a.words) {
    double best = 0.0;
    for (uint32_t cw : b.words) {
      best = std::max(best,
                      MemoizedSimilarity(matcher, qf, cf, scratch, qw, cw));
    }
    sum_a += best;
  }
  double sum_b = 0.0;
  for (uint32_t cw : b.words) {
    double best = 0.0;
    for (uint32_t qw : a.words) {
      best = std::max(best,
                      MemoizedSimilarity(matcher, qf, cf, scratch, qw, cw));
    }
    sum_b += best;
  }
  double score = (sum_a + sum_b) /
                 static_cast<double>(a.words.size() + b.words.size());

  score = std::max(score, MemoizedSimilarity(matcher, qf, cf, scratch,
                                             a.concat, b.concat));

  auto acronym = [&](const NameFeature& single, const SchemaFeatures& sf,
                     const NameFeature& multi) {
    return single.words.size() == 1 && multi.words.size() >= 2 &&
           sf.terms[single.words[0]].text == multi.initials;
  };
  if (acronym(a, qf, b) || acronym(b, cf, a)) score = std::max(score, 0.8);

  return score;
}

}  // namespace

SimilarityMatrix NameMatcher::MatchPrepared(const Schema& query,
                                            const Schema& candidate,
                                            const MatchContext& context) const {
  const SchemaFeatures* qf = context.query_features;
  const SchemaFeatures* cf = context.candidate_features;
  if (qf == nullptr || cf == nullptr || context.scratch == nullptr ||
      qf->names.size() != query.size() ||
      cf->names.size() != candidate.size() ||
      !SameOptions(qf->name_options, options_) ||
      !SameOptions(cf->name_options, options_)) {
    return Match(query, candidate);
  }
  SimilarityMatrix matrix(query.size(), candidate.size());
  for (size_t r = 0; r < query.size(); ++r) {
    for (size_t c = 0; c < candidate.size(); ++c) {
      matrix.set(r, c,
                 PreparedPairSimilarity(*this, *qf, *cf, context.scratch,
                                        qf->names[r], cf->names[c]));
    }
  }
  return matrix;
}

SimilarityMatrix NameMatcher::Match(const Schema& query,
                                    const Schema& candidate) const {
  SimilarityMatrix matrix(query.size(), candidate.size());
  std::vector<PreparedName> qs(query.size());
  std::vector<PreparedName> cs(candidate.size());
  for (ElementId id = 0; id < query.size(); ++id) {
    qs[id] = Prepare(query.element(id).name);
  }
  for (ElementId id = 0; id < candidate.size(); ++id) {
    cs[id] = Prepare(candidate.element(id).name);
  }
  for (size_t r = 0; r < qs.size(); ++r) {
    for (size_t c = 0; c < cs.size(); ++c) {
      matrix.set(r, c, PairSimilarity(qs[r], cs[c]));
    }
  }
  return matrix;
}

}  // namespace schemr
