#include "match/meta_learner.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace schemr {

namespace {
double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

double LogisticModel::Predict(const std::vector<double>& features) const {
  double z = bias;
  size_t n = std::min(features.size(), weights.size());
  for (size_t i = 0; i < n; ++i) z += weights[i] * features[i];
  return Sigmoid(z);
}

std::vector<double> LogisticModel::NormalizedWeights() const {
  std::vector<double> out(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    out[i] = std::max(0.0, weights[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate model: fall back to uniform.
    std::fill(out.begin(), out.end(),
              out.empty() ? 0.0 : 1.0 / static_cast<double>(out.size()));
    return out;
  }
  for (double& w : out) w /= total;
  return out;
}

Result<LogisticModel> TrainLogisticModel(
    const std::vector<TrainingRecord>& records,
    const MetaLearnerOptions& options) {
  if (records.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  const size_t dim = records[0].features.size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional features");
  bool has_pos = false, has_neg = false;
  for (const TrainingRecord& r : records) {
    if (r.features.size() != dim) {
      return Status::InvalidArgument("inconsistent feature dimensionality");
    }
    (r.relevant ? has_pos : has_neg) = true;
  }
  if (!has_pos || !has_neg) {
    return Status::InvalidArgument(
        "training set needs both positive and negative examples");
  }

  LogisticModel model;
  model.weights.assign(dim, 0.0);
  model.bias = 0.0;

  Rng rng(options.shuffle_seed);
  std::vector<size_t> order(records.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    // Decaying step size keeps late epochs from oscillating.
    double lr = options.learning_rate /
                (1.0 + 0.01 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const TrainingRecord& r = records[idx];
      double p = model.Predict(r.features);
      double err = p - (r.relevant ? 1.0 : 0.0);
      for (size_t i = 0; i < dim; ++i) {
        model.weights[i] -=
            lr * (err * r.features[i] + options.l2 * model.weights[i]);
      }
      model.bias -= lr * err;
    }
  }
  return model;
}

double EvaluateAccuracy(const LogisticModel& model,
                        const std::vector<TrainingRecord>& records) {
  if (records.empty()) return 0.0;
  size_t correct = 0;
  for (const TrainingRecord& r : records) {
    bool predicted = model.Predict(r.features) >= 0.5;
    if (predicted == r.relevant) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(records.size());
}

}  // namespace schemr
