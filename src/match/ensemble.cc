#include "match/ensemble.h"

#include <cstring>
#include <stdexcept>

#include "match/codebook.h"
#include "match/context_matcher.h"
#include "match/features.h"
#include "match/name_matcher.h"
#include "match/structure_matcher.h"
#include "match/type_matcher.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace schemr {

DegradationState::DegradationState(std::vector<std::string> matcher_names,
                                   double budget_seconds)
    : matcher_names_(std::move(matcher_names)),
      budget_seconds_(budget_seconds),
      benched_(matcher_names_.size(), 0),
      matcher_seconds_(matcher_names_.size(), 0.0) {}

void DegradationState::SnapshotBenched(std::vector<char>* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  *out = benched_;
}

size_t DegradationState::Observe(const std::vector<char>& failed,
                                 const std::vector<char>& already_skipped,
                                 const std::vector<double>* candidate_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t newly_benched = 0;
  for (size_t m = 0; m < benched_.size(); ++m) {
    if (candidate_seconds != nullptr) {
      matcher_seconds_[m] += (*candidate_seconds)[m];
    }
    if (benched_[m] != 0) continue;
    if (already_skipped[m] == 0 && failed[m] != 0) {
      benched_[m] = 1;
      ++benched_count_;
      dropped_.push_back(matcher_names_[m]);
      ++newly_benched;
    } else if (budget_seconds_ > 0.0 && candidate_seconds != nullptr &&
               matcher_seconds_[m] > budget_seconds_) {
      benched_[m] = 1;
      ++benched_count_;
      dropped_.push_back(matcher_names_[m] + " (budget)");
      ++newly_benched;
    }
  }
  return newly_benched;
}

size_t DegradationState::benched_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return benched_count_;
}

std::vector<double> DegradationState::matcher_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return matcher_seconds_;
}

std::vector<std::string> DegradationState::dropped_matchers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void MatcherEnsemble::AddMatcher(std::unique_ptr<Matcher> matcher,
                                 double weight) {
  // Precomputed here so Match() can consult the fault site without a
  // per-(candidate x matcher) string allocation on the search hot path.
  fault_sites_.push_back("match/" + matcher->Name());
  matchers_.push_back(std::move(matcher));
  weights_.push_back(weight);
}

MatcherEnsemble MatcherEnsemble::Default() {
  MatcherEnsemble ensemble;
  ensemble.AddMatcher(std::make_unique<NameMatcher>(), 1.0);
  ensemble.AddMatcher(std::make_unique<ContextMatcher>(), 1.0);
  ensemble.AddMatcher(std::make_unique<TypeMatcher>(), 0.25);
  ensemble.AddMatcher(std::make_unique<StructureMatcher>(), 0.25);
  return ensemble;
}

MatcherEnsemble MatcherEnsemble::PaperMinimal() {
  MatcherEnsemble ensemble;
  ensemble.AddMatcher(std::make_unique<NameMatcher>(), 1.0);
  ensemble.AddMatcher(std::make_unique<ContextMatcher>(), 1.0);
  return ensemble;
}

MatcherEnsemble MatcherEnsemble::WithCodebook() {
  MatcherEnsemble ensemble = Default();
  ensemble.AddMatcher(std::make_unique<CodebookMatcher>(), 0.5);
  return ensemble;
}

void MatcherEnsemble::SetWeights(std::vector<double> weights) {
  if (weights.size() == matchers_.size()) {
    weights_ = std::move(weights);
  }
}

void MatcherEnsemble::SetLogisticModel(LogisticModel model) {
  if (model.weights.size() == matchers_.size()) {
    logistic_ = std::move(model);
  }
}

std::vector<std::string> MatcherEnsemble::MatcherNames() const {
  std::vector<std::string> names;
  names.reserve(matchers_.size());
  for (const auto& matcher : matchers_) names.push_back(matcher->Name());
  return names;
}

EnsembleResult MatcherEnsemble::Match(
    const Schema& query, const Schema& candidate,
    std::vector<double>* matcher_seconds, const std::vector<char>* skip,
    const MatchContext* context) const {
  const bool prepared = context != nullptr &&
                        context->query_features != nullptr &&
                        context->candidate_features != nullptr &&
                        context->scratch != nullptr;
  if (prepared) {
    // One memo per candidate, shared by every matcher in this invocation.
    context->scratch->Reset(context->query_features->terms.size(),
                            context->candidate_features->terms.size());
  }
  EnsembleResult result;
  result.matcher_names.reserve(matchers_.size());
  result.per_matcher.reserve(matchers_.size());
  result.failed.assign(matchers_.size(), 0);
  for (size_t m = 0; m < matchers_.size(); ++m) {
    result.matcher_names.push_back(matchers_[m]->Name());
    if (skip != nullptr && (*skip)[m] != 0) {
      // Benched by the caller (earlier failure or budget overrun); a zero
      // matrix with zero weight leaves it out of the combination.
      result.per_matcher.emplace_back(query.size(), candidate.size());
      result.failed[m] = 1;
      continue;
    }
    Timer timer;
    try {
      int err = FaultInjector::Global().Check(fault_sites_[m].c_str());
      if (err != 0) {
        throw std::runtime_error("injected matcher fault: " +
                                 std::string(std::strerror(err)));
      }
      result.per_matcher.push_back(
          prepared ? matchers_[m]->MatchPrepared(query, candidate, *context)
                   : matchers_[m]->Match(query, candidate));
    } catch (const InjectedCrash&) {
      throw;  // a simulated kill must never be absorbed as a matcher fault
    } catch (...) {
      result.per_matcher.emplace_back(query.size(), candidate.size());
      result.failed[m] = 1;
      result.any_failure = true;
    }
    if (matcher_seconds != nullptr) {
      (*matcher_seconds)[m] += timer.ElapsedSeconds();
    }
  }

  if (logistic_.has_value()) {
    // Cell-wise logistic combination of the per-matcher features.
    SimilarityMatrix combined(query.size(), candidate.size());
    std::vector<double> features(matchers_.size());
    for (size_t r = 0; r < query.size(); ++r) {
      for (size_t c = 0; c < candidate.size(); ++c) {
        for (size_t m = 0; m < matchers_.size(); ++m) {
          features[m] = result.per_matcher[m].at(r, c);
        }
        combined.set(r, c, logistic_->Predict(features));
      }
    }
    result.combined = std::move(combined);
  } else {
    std::vector<const SimilarityMatrix*> pointers;
    pointers.reserve(result.per_matcher.size());
    for (const auto& m : result.per_matcher) pointers.push_back(&m);
    std::vector<double> weights = weights_;
    for (size_t m = 0; m < weights.size(); ++m) {
      if (result.failed[m] != 0) weights[m] = 0.0;
    }
    result.combined = SimilarityMatrix::WeightedCombine(pointers, weights);
  }
  return result;
}

SimilarityMatrix MatcherEnsemble::MatchCombined(
    const Schema& query, const Schema& candidate,
    std::vector<double>* matcher_seconds) const {
  return Match(query, candidate, matcher_seconds).combined;
}

}  // namespace schemr
