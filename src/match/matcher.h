// The matcher interface of the match engine.
//
// A matcher compares a query (itself represented as a schema: fragment
// trees plus keyword elements, see core/query_graph.h) against one
// candidate schema and emits a SimilarityMatrix. Matchers are composed by
// MatcherEnsemble; the paper highlights the name and context matchers but
// notes "other matchers may be used as well" -- we also provide data-type
// and structural matchers.

#ifndef SCHEMR_MATCH_MATCHER_H_
#define SCHEMR_MATCH_MATCHER_H_

#include <string>

#include "match/similarity_matrix.h"
#include "schema/schema.h"

namespace schemr {

struct SchemaFeatures;  // match/features.h
struct MatchScratch;    // match/features.h

/// Precomputed inputs for one ensemble invocation: the columnar features
/// of both schemas (built at index time / once per query) and the shared
/// per-candidate term-pair memo. Any pointer may be null — a matcher that
/// cannot use what it is given falls back to its Match() path.
struct MatchContext {
  const SchemaFeatures* query_features = nullptr;
  const SchemaFeatures* candidate_features = nullptr;
  MatchScratch* scratch = nullptr;
};

/// Abstract element-level schema matcher.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Stable identifier used for weights, feature names and reports.
  virtual std::string Name() const = 0;

  /// Computes the |query| × |candidate| similarity matrix. All values must
  /// land in [0, 1] (SimilarityMatrix::set clamps as a backstop).
  virtual SimilarityMatrix Match(const Schema& query,
                                 const Schema& candidate) const = 0;

  /// Match() with precomputed features. The default ignores the context;
  /// matchers with a columnar fast path (name, context) override this and
  /// MUST produce a bit-identical matrix to Match() — the fast path is a
  /// latency optimization, never a scoring change (DESIGN.md §16).
  virtual SimilarityMatrix MatchPrepared(const Schema& query,
                                         const Schema& candidate,
                                         const MatchContext&) const {
    return Match(query, candidate);
  }
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_MATCHER_H_
