#include "match/signature.h"

#include <cstring>

namespace schemr {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Per-slot MinHash seeds: MixHash64 of the slot index, precomputed so
/// Add() stays a multiply-xor chain.
struct MinHashSeeds {
  uint64_t seed[SchemaSignature::kMinHashSlots];
  MinHashSeeds() {
    for (size_t s = 0; s < SchemaSignature::kMinHashSlots; ++s) {
      seed[s] = MixHash64(0x9e3779b97f4a7c15ull + s);
    }
  }
};

const MinHashSeeds& Seeds() {
  static const MinHashSeeds seeds;
  return seeds;
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
struct Crc32Table {
  uint32_t table[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const Crc32Table crc_table;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc = crc_table.table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashBytes(const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = kFnvOffset;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

bool SchemaSignature::operator==(const SchemaSignature& other) const {
  return std::memcmp(simhash, other.simhash, sizeof(simhash)) == 0 &&
         std::memcmp(minhash, other.minhash, sizeof(minhash)) == 0 &&
         crc == other.crc;
}

size_t SimHashDistance(const SchemaSignature& a, const SchemaSignature& b) {
  size_t distance = 0;
  for (size_t w = 0; w < SchemaSignature::kSimHashWords; ++w) {
    distance += static_cast<size_t>(
        __builtin_popcountll(a.simhash[w] ^ b.simhash[w]));
  }
  return distance;
}

double SimHashSimilarity(const SchemaSignature& a, const SchemaSignature& b) {
  // Unrelated gram sets land near distance = bits/2; map that to ~0 so the
  // estimate spreads over [0, 1] instead of clustering around 0.5.
  const double agreement =
      1.0 - 2.0 * static_cast<double>(SimHashDistance(a, b)) /
                static_cast<double>(SchemaSignature::kSimHashBits);
  return agreement < 0.0 ? 0.0 : agreement;
}

double MinHashSimilarity(const SchemaSignature& a, const SchemaSignature& b) {
  size_t agree = 0;
  for (size_t s = 0; s < SchemaSignature::kMinHashSlots; ++s) {
    if (a.minhash[s] == b.minhash[s]) ++agree;
  }
  return static_cast<double>(agree) /
         static_cast<double>(SchemaSignature::kMinHashSlots);
}

double EstimatedSimilarity(const SchemaSignature& a,
                           const SchemaSignature& b) {
  // Name material dominates the matcher ensemble (name matcher weight 1.0,
  // and context neighborhoods are themselves built from names), so the
  // SimHash carries more of the estimate than the term-set sketch.
  return 0.6 * SimHashSimilarity(a, b) + 0.4 * MinHashSimilarity(a, b);
}

uint32_t SignatureCrc(const SchemaSignature& signature) {
  unsigned char payload[sizeof(signature.simhash) + sizeof(signature.minhash)];
  std::memcpy(payload, signature.simhash, sizeof(signature.simhash));
  std::memcpy(payload + sizeof(signature.simhash), signature.minhash,
              sizeof(signature.minhash));
  return Crc32(payload, sizeof(payload));
}

void SealSignature(SchemaSignature* signature) {
  signature->crc = SignatureCrc(*signature);
}

bool VerifySignature(const SchemaSignature& signature) {
  return signature.crc == SignatureCrc(signature);
}

SimHashAccumulator::SimHashAccumulator() {
  for (double& w : weights_) w = 0.0;
}

void SimHashAccumulator::Add(uint64_t gram_hash, double weight) {
  // Expand the gram hash into a 256-bit decision stream: four dependent
  // splitmix steps, one per 64-bit word.
  uint64_t h = gram_hash;
  for (size_t w = 0; w < SchemaSignature::kSimHashWords; ++w) {
    h = MixHash64(h);
    uint64_t bits = h;
    for (size_t b = 0; b < 64; ++b) {
      weights_[w * 64 + b] += (bits & 1u) ? weight : -weight;
      bits >>= 1;
    }
  }
}

void SimHashAccumulator::Finish(SchemaSignature* signature) const {
  for (size_t w = 0; w < SchemaSignature::kSimHashWords; ++w) {
    uint64_t word = 0;
    for (size_t b = 0; b < 64; ++b) {
      if (weights_[w * 64 + b] > 0.0) word |= uint64_t{1} << b;
    }
    signature->simhash[w] = word;
  }
}

void MinHashAccumulator::Add(uint64_t term_hash) {
  const MinHashSeeds& seeds = Seeds();
  for (size_t s = 0; s < SchemaSignature::kMinHashSlots; ++s) {
    const uint32_t value =
        static_cast<uint32_t>(MixHash64(term_hash ^ seeds.seed[s]));
    if (value < slots_[s]) slots_[s] = value;
  }
}

void MinHashAccumulator::Finish(SchemaSignature* signature) const {
  for (size_t s = 0; s < SchemaSignature::kMinHashSlots; ++s) {
    signature->minhash[s] = slots_[s];
  }
}

}  // namespace schemr
