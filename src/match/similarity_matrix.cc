#include "match/similarity_matrix.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace schemr {

double SimilarityMatrix::ColumnMax(size_t col) const {
  double best = 0.0;
  for (size_t row = 0; row < rows_; ++row) {
    best = std::max(best, at(row, col));
  }
  return best;
}

double SimilarityMatrix::RowMax(size_t row) const {
  double best = 0.0;
  for (size_t col = 0; col < cols_; ++col) {
    best = std::max(best, at(row, col));
  }
  return best;
}

double SimilarityMatrix::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

SimilarityMatrix SimilarityMatrix::WeightedCombine(
    const std::vector<const SimilarityMatrix*>& matrices,
    const std::vector<double>& weights) {
  assert(matrices.size() == weights.size());
  if (matrices.empty()) return SimilarityMatrix();
  const size_t rows = matrices[0]->rows();
  const size_t cols = matrices[0]->cols();
  SimilarityMatrix combined(rows, cols);
  double total_weight = 0.0;
  for (double w : weights) total_weight += std::max(0.0, w);
  if (total_weight <= 0.0) return combined;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      double sum = 0.0;
      for (size_t m = 0; m < matrices.size(); ++m) {
        assert(matrices[m]->rows() == rows && matrices[m]->cols() == cols);
        sum += std::max(0.0, weights[m]) * matrices[m]->at(r, c);
      }
      combined.set(r, c, sum / total_weight);
    }
  }
  return combined;
}

std::string SimilarityMatrix::ToString() const {
  std::string out;
  char buf[32];
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%s%.3f", c == 0 ? "" : " ", at(r, c));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace schemr
