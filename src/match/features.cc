#include "match/features.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>

#include "schema/entity_graph.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace schemr {

namespace {

/// Grams longer than this spill into the overflow array.
constexpr size_t kMaxPackedGram = 7;

/// Domain separator so packed-gram hashes never collide with term-text
/// hashes by construction of the inputs alone.
constexpr uint64_t kGramSeed = 0x5349474e41545552ull;  // "SIGNATUR"

uint64_t PackGram(const std::string& gram) {
  uint64_t key = static_cast<uint64_t>(gram.size()) << 56;
  for (size_t i = 0; i < gram.size(); ++i) {
    key |= static_cast<uint64_t>(static_cast<unsigned char>(gram[i]))
           << (48 - 8 * i);
  }
  return key;
}

/// Mirrors NameMatcher::NormalizeName (tokenize, lowercase, optional
/// stem, drop empties). Kept in lock-step: the fast path is only exact
/// because this produces the same word list.
std::vector<std::string> NormalizeName(const std::string& name,
                                       const NameMatcherOptions& options) {
  std::vector<std::string> words;
  for (const std::string& raw : TokenizeToStrings(name)) {
    std::string word = ToLowerAscii(raw);
    if (options.stem) word = PorterStem(word);
    if (!word.empty()) words.push_back(std::move(word));
  }
  return words;
}

/// Mirrors the context matcher's AddTerms (which stems unconditionally).
void AddContextTerms(const std::string& name, std::set<std::string>* terms) {
  for (const std::string& raw : TokenizeToStrings(name)) {
    terms->insert(PorterStem(ToLowerAscii(raw)));
  }
}

/// Initials of a word list ("date","of","birth" → "dob"); mirrors the
/// name matcher's helper.
std::string Initials(const std::vector<std::string>& words) {
  std::string out;
  for (const std::string& word : words) {
    if (!word.empty()) out += word[0];
  }
  return out;
}

uint64_t HashString(uint64_t hash, const std::string& s) {
  hash = MixHash64(hash ^ s.size());
  return MixHash64(hash ^ HashBytes(s.data(), s.size()));
}

/// Deterministic hash of the matcher-visible content of a schema.
uint64_t ContentHash(const Schema& schema) {
  uint64_t hash = 0x534348454d520000ull;  // "SCHEMR"
  hash = HashString(hash, schema.name());
  for (const Element& element : schema.elements()) {
    hash = HashString(hash, element.name);
    hash = MixHash64(hash ^ static_cast<uint64_t>(element.kind));
    hash = MixHash64(hash ^ static_cast<uint64_t>(element.type));
    hash = MixHash64(hash ^ element.parent);
  }
  for (const ForeignKey& fk : schema.foreign_keys()) {
    hash = MixHash64(hash ^ fk.attribute);
    hash = MixHash64(hash ^ fk.target_entity);
    hash = MixHash64(hash ^ fk.target_attribute);
  }
  return hash;
}

}  // namespace

PackedProfile PackProfile(const NgramProfile& profile) {
  PackedProfile packed;
  for (const auto& [gram, count] : profile) {
    packed.total += count;
    if (gram.size() <= kMaxPackedGram) {
      packed.packed.emplace_back(PackGram(gram), count);
    } else {
      packed.overflow.emplace_back(gram, count);
    }
  }
  std::sort(packed.packed.begin(), packed.packed.end());
  std::sort(packed.overflow.begin(), packed.overflow.end());
  return packed;
}

double PackedDice(const PackedProfile& a, const PackedProfile& b) {
  uint64_t intersection = 0;
  {
    size_t i = 0, j = 0;
    while (i < a.packed.size() && j < b.packed.size()) {
      if (a.packed[i].first == b.packed[j].first) {
        intersection += std::min(a.packed[i].second, b.packed[j].second);
        ++i;
        ++j;
      } else if (a.packed[i].first < b.packed[j].first) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  {
    size_t i = 0, j = 0;
    while (i < a.overflow.size() && j < b.overflow.size()) {
      const int cmp = a.overflow[i].first.compare(b.overflow[j].first);
      if (cmp == 0) {
        intersection += std::min(a.overflow[i].second, b.overflow[j].second);
        ++i;
        ++j;
      } else if (cmp < 0) {
        ++i;
      } else {
        ++j;
      }
    }
  }
  if (a.total + b.total == 0) return 0.0;
  // The exact expression of DiceSimilarity: same integers, same division.
  return 2.0 * static_cast<double>(intersection) /
         static_cast<double>(a.total + b.total);
}

bool SameOptions(const NameMatcherOptions& a, const NameMatcherOptions& b) {
  return a.exhaustive_ngrams == b.exhaustive_ngrams && a.min_n == b.min_n &&
         a.max_n == b.max_n && a.stem == b.stem &&
         a.use_synonyms == b.use_synonyms;
}

bool SameOptions(const ContextMatcherOptions& a,
                 const ContextMatcherOptions& b) {
  return a.soft_alignment == b.soft_alignment &&
         a.soft_threshold == b.soft_threshold &&
         a.include_fk_neighbors == b.include_fk_neighbors;
}

void DfTable::AddDocument(const SchemaFeatures& features) {
  for (const TermFeature& term : features.terms) ++df_[term.text];
  ++documents_;
}

void DfTable::RemoveDocument(const SchemaFeatures& features) {
  for (const TermFeature& term : features.terms) {
    auto it = df_.find(term.text);
    if (it == df_.end()) continue;
    if (--it->second == 0) df_.erase(it);
  }
  if (documents_ > 0) --documents_;
}

uint32_t DfTable::Df(const std::string& term) const {
  auto it = df_.find(term);
  return it == df_.end() ? 0 : it->second;
}

double DfTable::Idf(const std::string& term) const {
  return std::log(1.0 + static_cast<double>(documents_) /
                            (1.0 + static_cast<double>(Df(term))));
}

void MatchScratch::Reset(size_t query_terms, size_t candidate_terms) {
  cand_terms = candidate_terms;
  pair_scores.assign(query_terms * candidate_terms,
                     std::numeric_limits<double>::quiet_NaN());
}

std::shared_ptr<SchemaFeatures> BuildSchemaFeatures(
    const Schema& schema, const FeatureBuildOptions& options) {
  auto features = std::make_shared<SchemaFeatures>();
  features->name_options = options.name;
  features->context_options = options.context;
  features->content_hash = ContentHash(schema);

  // The profile source of truth: the same ProfileOf the legacy matcher
  // uses, so packed counts match the legacy NgramProfile exactly.
  const NameMatcher profiler(options.name);
  std::unordered_map<std::string, uint32_t> intern;
  auto term_id = [&](const std::string& text) -> uint32_t {
    auto it = intern.find(text);
    if (it != intern.end()) return it->second;
    const uint32_t id = static_cast<uint32_t>(features->terms.size());
    intern.emplace(text, id);
    features->terms.push_back(
        TermFeature{text, PackProfile(profiler.WordProfile(text))});
    return id;
  };

  // Prepared names, mirroring NameMatcher::Prepare.
  features->names.resize(schema.size());
  for (ElementId id = 0; id < schema.size(); ++id) {
    NameFeature& name = features->names[id];
    std::vector<std::string> words =
        NormalizeName(schema.element(id).name, options.name);
    name.words.reserve(words.size());
    for (const std::string& word : words) name.words.push_back(term_id(word));
    name.concat = term_id(Join(words, ""));
    name.initials = Initials(words);
  }

  // Neighborhood term-id lists, mirroring NeighborhoodTermsWithGraph. The
  // per-element std::set fixes the term order (sorted by text); the id
  // list preserves it, so the soft-Jaccard sums run in the legacy order.
  features->neighborhoods.resize(schema.size());
  const EntityGraph graph(schema);
  for (ElementId id = 0; id < schema.size(); ++id) {
    std::set<std::string> terms;
    const Element& element = schema.element(id);
    AddContextTerms(element.name, &terms);
    if (element.parent != kNoElement) {
      AddContextTerms(schema.element(element.parent).name, &terms);
      for (ElementId sibling : schema.Children(element.parent)) {
        if (sibling != id) {
          AddContextTerms(schema.element(sibling).name, &terms);
        }
      }
    }
    for (ElementId child : schema.Children(id)) {
      AddContextTerms(schema.element(child).name, &terms);
    }
    if (options.context.include_fk_neighbors) {
      ElementId entity = schema.EntityOf(id);
      if (entity != kNoElement) {
        for (ElementId neighbor : graph.Neighbors(entity)) {
          AddContextTerms(schema.element(neighbor).name, &terms);
        }
      }
    }
    std::vector<uint32_t>& ids = features->neighborhoods[id];
    ids.reserve(terms.size());
    for (const std::string& term : terms) ids.push_back(term_id(term));
  }
  return features;
}

void ComputeSignature(SchemaFeatures* features, const DfTable* df) {
  SimHashAccumulator simhash;
  // SimHash votes: every gram of every name word, weighted by the word's
  // occurrence count and corpus IDF — rare, discriminative words dominate
  // the bit pattern while boilerplate ("id", "name") barely moves it.
  for (const NameFeature& name : features->names) {
    for (uint32_t word_id : name.words) {
      const TermFeature& term = features->terms[word_id];
      const double weight = df != nullptr ? df->Idf(term.text) : 1.0;
      for (const auto& [key, count] : term.profile.packed) {
        simhash.Add(MixHash64(key ^ kGramSeed), weight * count);
      }
      for (const auto& [gram, count] : term.profile.overflow) {
        simhash.Add(MixHash64(HashBytes(gram.data(), gram.size()) ^ kGramSeed),
                    weight * count);
      }
    }
  }
  simhash.Finish(&features->signature);

  // MinHash sketch over the schema's whole term vocabulary (name words,
  // concats, context terms) — a Jaccard estimate of shared vocabulary.
  MinHashAccumulator minhash;
  for (const TermFeature& term : features->terms) {
    minhash.Add(HashBytes(term.text.data(), term.text.size()));
  }
  minhash.Finish(&features->signature);
  SealSignature(&features->signature);
}

CatalogBuilder::CatalogBuilder(FeatureBuildOptions options)
    : options_(options) {}

void CatalogBuilder::Add(const Schema& schema) {
  auto features = BuildSchemaFeatures(schema, options_);
  df_.AddDocument(*features);
  features_[schema.id()] = std::move(features);
}

std::shared_ptr<const MatchFeatureCatalog> CatalogBuilder::Build(
    const StoredSignatures* stored, CatalogBuildStats* stats) {
  Timer timer;
  uint64_t corpus_hash = 0;
  for (const auto& [id, features] : features_) {
    corpus_hash += MixHash64(features->content_hash ^ MixHash64(id));
  }
  const bool adoptable = stored != nullptr && stored->corpus_hash == corpus_hash;
  CatalogBuildStats local;
  local.schemas = features_.size();
  local.corrupt_records = stored != nullptr ? stored->corrupt_records : 0;
  std::unordered_map<SchemaId, std::shared_ptr<const SchemaFeatures>> frozen;
  frozen.reserve(features_.size());
  for (auto& [id, features] : features_) {
    const SchemaSignature* loaded = nullptr;
    if (adoptable) {
      auto it = stored->signatures.find(id);
      // Belt and braces: the loader already dropped CRC-invalid records,
      // but a signature must never be adopted unverified.
      if (it != stored->signatures.end() && VerifySignature(it->second)) {
        loaded = &it->second;
      }
    }
    if (loaded != nullptr) {
      features->signature = *loaded;
      ++local.signatures_loaded;
    } else {
      ComputeSignature(features.get(), &df_);
      ++local.signatures_built;
    }
    frozen.emplace(id, std::move(features));
  }
  features_.clear();
  local.seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return std::make_shared<const MatchFeatureCatalog>(
      options_, std::move(frozen), std::make_shared<const DfTable>(df_));
}

MatchFeatureCatalog::MatchFeatureCatalog(
    FeatureBuildOptions options,
    std::unordered_map<SchemaId, std::shared_ptr<const SchemaFeatures>>
        features,
    std::shared_ptr<const DfTable> df)
    : options_(options), features_(std::move(features)), df_(std::move(df)) {}

const SchemaFeatures* MatchFeatureCatalog::Find(SchemaId id) const {
  auto it = features_.find(id);
  return it == features_.end() ? nullptr : it->second.get();
}

uint64_t MatchFeatureCatalog::CorpusHash() const {
  uint64_t hash = 0;
  for (const auto& [id, features] : features_) {
    hash += MixHash64(features->content_hash ^ MixHash64(id));
  }
  return hash;
}

namespace {

constexpr char kSignatureMagic[4] = {'S', 'S', 'I', 'G'};
constexpr uint32_t kSignatureVersion = 1;

/// On-disk record layout, packed manually (no struct padding games).
constexpr size_t kRecordPayload =
    sizeof(uint64_t) +                                       // schema id
    sizeof(uint64_t) * SchemaSignature::kSimHashWords +      // simhash
    sizeof(uint32_t) * SchemaSignature::kMinHashSlots +      // minhash
    sizeof(uint32_t);                                        // signature crc
constexpr size_t kRecordSize = kRecordPayload + sizeof(uint32_t);

void EncodeRecord(SchemaId id, const SchemaSignature& signature,
                  unsigned char* out) {
  size_t offset = 0;
  std::memcpy(out + offset, &id, sizeof(id));
  offset += sizeof(id);
  std::memcpy(out + offset, signature.simhash, sizeof(signature.simhash));
  offset += sizeof(signature.simhash);
  std::memcpy(out + offset, signature.minhash, sizeof(signature.minhash));
  offset += sizeof(signature.minhash);
  std::memcpy(out + offset, &signature.crc, sizeof(signature.crc));
  offset += sizeof(signature.crc);
  const uint32_t record_crc = Crc32(out, kRecordPayload);
  std::memcpy(out + offset, &record_crc, sizeof(record_crc));
}

bool DecodeRecord(const unsigned char* in, SchemaId* id,
                  SchemaSignature* signature) {
  uint32_t record_crc = 0;
  std::memcpy(&record_crc, in + kRecordPayload, sizeof(record_crc));
  if (record_crc != Crc32(in, kRecordPayload)) return false;
  size_t offset = 0;
  std::memcpy(id, in + offset, sizeof(*id));
  offset += sizeof(*id);
  std::memcpy(signature->simhash, in + offset, sizeof(signature->simhash));
  offset += sizeof(signature->simhash);
  std::memcpy(signature->minhash, in + offset, sizeof(signature->minhash));
  offset += sizeof(signature->minhash);
  std::memcpy(&signature->crc, in + offset, sizeof(signature->crc));
  return VerifySignature(*signature);
}

}  // namespace

Status SaveSignatures(const std::string& path,
                      const MatchFeatureCatalog& catalog) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot write signatures to " + path);
  out.write(kSignatureMagic, sizeof(kSignatureMagic));
  const uint32_t version = kSignatureVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t corpus_hash = catalog.CorpusHash();
  out.write(reinterpret_cast<const char*>(&corpus_hash), sizeof(corpus_hash));
  const uint64_t count = catalog.features().size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  unsigned char record[kRecordSize];
  for (const auto& [id, features] : catalog.features()) {
    EncodeRecord(id, features->signature, record);
    out.write(reinterpret_cast<const char*>(record), sizeof(record));
  }
  out.close();
  if (!out) return Status::IOError("failed writing signatures to " + path);
  return Status::OK();
}

Result<StoredSignatures> LoadSignatures(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open signatures at " + path);
  char magic[4];
  uint32_t version = 0;
  StoredSignatures stored;
  uint64_t count = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&stored.corpus_hash),
          sizeof(stored.corpus_hash));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || std::memcmp(magic, kSignatureMagic, sizeof(magic)) != 0 ||
      version != kSignatureVersion) {
    return Status::ParseError("bad signature file header in " + path);
  }
  unsigned char record[kRecordSize];
  for (uint64_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(record), sizeof(record));
    if (!in) {
      // Truncated tail: everything unread counts as corrupt, the records
      // already decoded stay usable.
      stored.corrupt_records += count - i;
      break;
    }
    SchemaId id = kNoSchema;
    SchemaSignature signature;
    if (DecodeRecord(record, &id, &signature)) {
      stored.signatures.emplace(id, signature);
    } else {
      ++stored.corrupt_records;
    }
  }
  return stored;
}

}  // namespace schemr
