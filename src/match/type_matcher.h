// Data-type matcher: compatibility of attribute data types.
//
// One of the "other matchers" the paper allows in the ensemble. Exact
// type equality scores 1.0; losslessly widening conversions (int32→int64,
// float→double) score high; same-family types (the numeric family, the
// temporal family) score medium; anything can round-trip through a string
// with some loss; unrelated families score 0. Entity/entity pairs score by
// kind agreement only; entity/attribute pairs score 0.

#ifndef SCHEMR_MATCH_TYPE_MATCHER_H_
#define SCHEMR_MATCH_TYPE_MATCHER_H_

#include <string>

#include "match/matcher.h"

namespace schemr {

/// Pairwise compatibility of two data types, in [0, 1]. Symmetric.
double DataTypeCompatibility(DataType a, DataType b);

/// Type-compatibility matcher. Because queries often carry no type
/// information (keywords default to kString), this matcher is most useful
/// as a tie-breaker with a modest ensemble weight.
class TypeMatcher : public Matcher {
 public:
  std::string Name() const override { return "type"; }

  SimilarityMatrix Match(const Schema& query,
                         const Schema& candidate) const override;
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_TYPE_MATCHER_H_
