// Compact per-schema signatures for phase-2 screening (DESIGN.md §16).
//
// Every schema gets a 256-bit SimHash over its element-name n-grams plus a
// 16-slot MinHash sketch over its context-term set, both computed at index
// time and stored in the CorpusSnapshot next to the inverted index. At
// query time one XOR+popcount per candidate estimates how similar the
// matcher ensemble would find the pair — before any similarity matrix is
// built. Exact mode uses the estimate only to order candidate visits (the
// score-bound pruning floor rises faster; the skip predicate itself is
// unchanged, so the returned window cannot change). Approximate mode
// (SearchEngineOptions::prefilter) drops candidates below a threshold and
// is opt-in per request, with its recall floor measured by E20.
//
// Signatures are advisory: no matcher score is ever derived from them, so
// hash collisions can cost a little recall in approximate mode but can
// never corrupt a score. The CRC seals a signature against storage bit
// rot — a flipped byte is detected and the signature rebuilt from the
// schema, never silently trusted.

#ifndef SCHEMR_MATCH_SIGNATURE_H_
#define SCHEMR_MATCH_SIGNATURE_H_

#include <cstddef>
#include <cstdint>

namespace schemr {

struct SchemaSignature {
  static constexpr size_t kSimHashBits = 256;
  static constexpr size_t kSimHashWords = kSimHashBits / 64;
  static constexpr size_t kMinHashSlots = 16;
  /// Slot value of an empty MinHash (no terms hashed in).
  static constexpr uint32_t kEmptySlot = 0xffffffffu;

  uint64_t simhash[kSimHashWords] = {0, 0, 0, 0};
  uint32_t minhash[kMinHashSlots] = {
      kEmptySlot, kEmptySlot, kEmptySlot, kEmptySlot, kEmptySlot, kEmptySlot,
      kEmptySlot, kEmptySlot, kEmptySlot, kEmptySlot, kEmptySlot, kEmptySlot,
      kEmptySlot, kEmptySlot, kEmptySlot, kEmptySlot};
  /// CRC-32 over simhash+minhash, written by SealSignature.
  uint32_t crc = 0;

  bool operator==(const SchemaSignature& other) const;
};

/// Deterministic 64-bit mix (splitmix64 finalizer); the one hash every
/// signature bit derives from, so signatures are stable across runs,
/// machines and compilers.
uint64_t MixHash64(uint64_t x);

/// FNV-1a over a byte string, the seed for MixHash64 on textual grams.
uint64_t HashBytes(const void* data, size_t size);

/// CRC-32 (IEEE 802.3, reflected), exposed for the signature file's
/// per-record checksums.
uint32_t Crc32(const void* data, size_t size);

/// Hamming distance between the two SimHashes (XOR+popcount, 4 words).
size_t SimHashDistance(const SchemaSignature& a, const SchemaSignature& b);

/// SimHash agreement mapped onto [0, 1]: 1 for identical bit vectors, ~0
/// for unrelated ones (whose expected distance is kSimHashBits/2).
double SimHashSimilarity(const SchemaSignature& a, const SchemaSignature& b);

/// Fraction of agreeing MinHash slots — an unbiased estimate of the
/// Jaccard similarity of the two context-term sets.
double MinHashSimilarity(const SchemaSignature& a, const SchemaSignature& b);

/// The screening estimate: a fixed blend of SimHash (name material) and
/// MinHash (context material) agreement, in [0, 1].
double EstimatedSimilarity(const SchemaSignature& a, const SchemaSignature& b);

/// CRC-32 (IEEE, reflected) over the signature payload (simhash+minhash).
uint32_t SignatureCrc(const SchemaSignature& signature);

/// Stamps signature.crc so VerifySignature can authenticate it later.
void SealSignature(SchemaSignature* signature);

/// True iff the stored crc matches the payload (a byte-flipped signature
/// fails this and must be rebuilt from the schema).
bool VerifySignature(const SchemaSignature& signature);

/// Incremental SimHash accumulator: feed weighted grams, then Finish()
/// collapses the 256 weight sums into sign bits.
class SimHashAccumulator {
 public:
  SimHashAccumulator();

  /// Adds one gram with the given weight: each of the 256 positions moves
  /// by ±weight according to the gram's expanded hash stream.
  void Add(uint64_t gram_hash, double weight);

  /// Writes the sign bits into signature->simhash (weight sum > 0 → 1).
  void Finish(SchemaSignature* signature) const;

 private:
  double weights_[SchemaSignature::kSimHashBits];
};

/// Incremental MinHash accumulator over a term set.
class MinHashAccumulator {
 public:
  /// Folds one distinct term (by its 64-bit hash) into all slots.
  void Add(uint64_t term_hash);

  /// Writes the per-slot minima into signature->minhash.
  void Finish(SchemaSignature* signature) const;

 private:
  uint32_t slots_[SchemaSignature::kMinHashSlots] = {
      SchemaSignature::kEmptySlot, SchemaSignature::kEmptySlot,
      SchemaSignature::kEmptySlot, SchemaSignature::kEmptySlot,
      SchemaSignature::kEmptySlot, SchemaSignature::kEmptySlot,
      SchemaSignature::kEmptySlot, SchemaSignature::kEmptySlot,
      SchemaSignature::kEmptySlot, SchemaSignature::kEmptySlot,
      SchemaSignature::kEmptySlot, SchemaSignature::kEmptySlot,
      SchemaSignature::kEmptySlot, SchemaSignature::kEmptySlot,
      SchemaSignature::kEmptySlot, SchemaSignature::kEmptySlot};
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_SIGNATURE_H_
