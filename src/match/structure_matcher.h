// Structural matcher: positional similarity of elements within their
// schemas.
//
// Another of the paper's "other matchers". Two elements are structurally
// similar when they play the same role: same kind (entity vs attribute),
// similar depth in the containment forest, and similar fan-out (children
// count for entities). This matcher is name-blind on purpose -- combined
// with the name matcher it disambiguates, e.g., an entity called "address"
// from an attribute called "address".

#ifndef SCHEMR_MATCH_STRUCTURE_MATCHER_H_
#define SCHEMR_MATCH_STRUCTURE_MATCHER_H_

#include <string>

#include "match/matcher.h"

namespace schemr {

struct StructureMatcherOptions {
  /// Score multiplier per level of depth difference (exponential decay).
  double depth_decay = 0.5;
  /// Weight of fan-out similarity vs depth similarity.
  double fanout_weight = 0.4;
};

class StructureMatcher : public Matcher {
 public:
  explicit StructureMatcher(StructureMatcherOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "structure"; }

  SimilarityMatrix Match(const Schema& query,
                         const Schema& candidate) const override;

 private:
  StructureMatcherOptions options_;
};

}  // namespace schemr

#endif  // SCHEMR_MATCH_STRUCTURE_MATCHER_H_
