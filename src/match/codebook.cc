#include "match/codebook.h"

#include <unordered_map>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace schemr {

const char* SemanticTypeName(SemanticType type) {
  switch (type) {
    case SemanticType::kUnknown:
      return "unknown";
    case SemanticType::kIdentifier:
      return "identifier";
    case SemanticType::kGeoLatitude:
      return "latitude";
    case SemanticType::kGeoLongitude:
      return "longitude";
    case SemanticType::kDate:
      return "date";
    case SemanticType::kTime:
      return "time";
    case SemanticType::kDateTime:
      return "datetime";
    case SemanticType::kYear:
      return "year";
    case SemanticType::kMoney:
      return "money";
    case SemanticType::kPercentage:
      return "percentage";
    case SemanticType::kLength:
      return "length";
    case SemanticType::kMass:
      return "mass";
    case SemanticType::kTemperature:
      return "temperature";
    case SemanticType::kCount:
      return "count";
    case SemanticType::kEmail:
      return "email";
    case SemanticType::kPhone:
      return "phone";
    case SemanticType::kUrl:
      return "url";
    case SemanticType::kPersonName:
      return "person name";
  }
  return "unknown";
}

namespace {

/// Unit-suffix tokens: a trailing token that names a measurement unit
/// classifies the attribute and records the unit.
const std::unordered_map<std::string, SemanticType>& UnitTable() {
  static const std::unordered_map<std::string, SemanticType> table = {
      {"cm", SemanticType::kLength},   {"mm", SemanticType::kLength},
      {"km", SemanticType::kLength},   {"meters", SemanticType::kLength},
      {"metres", SemanticType::kLength}, {"inches", SemanticType::kLength},
      {"feet", SemanticType::kLength}, {"ft", SemanticType::kLength},
      {"kg", SemanticType::kMass},     {"grams", SemanticType::kMass},
      {"lbs", SemanticType::kMass},    {"lb", SemanticType::kMass},
      {"tons", SemanticType::kMass},
      {"usd", SemanticType::kMoney},   {"eur", SemanticType::kMoney},
      {"gbp", SemanticType::kMoney},   {"dollars", SemanticType::kMoney},
      {"celsius", SemanticType::kTemperature},
      {"fahrenheit", SemanticType::kTemperature},
      {"percent", SemanticType::kPercentage},
      {"pct", SemanticType::kPercentage},
      {"hectares", SemanticType::kLength},  // area units folded into length
  };
  return table;
}

/// Keyword tokens anywhere in the name.
struct Keyword {
  SemanticType semantic;
  double confidence;
};

const std::unordered_map<std::string, Keyword>& KeywordTable() {
  static const std::unordered_map<std::string, Keyword> table = {
      {"latitude", {SemanticType::kGeoLatitude, 0.95}},
      {"lat", {SemanticType::kGeoLatitude, 0.7}},
      {"longitude", {SemanticType::kGeoLongitude, 0.95}},
      {"lon", {SemanticType::kGeoLongitude, 0.7}},
      {"lng", {SemanticType::kGeoLongitude, 0.7}},
      {"email", {SemanticType::kEmail, 0.95}},
      {"mail", {SemanticType::kEmail, 0.6}},
      {"phone", {SemanticType::kPhone, 0.9}},
      {"telephone", {SemanticType::kPhone, 0.95}},
      {"tel", {SemanticType::kPhone, 0.6}},
      {"fax", {SemanticType::kPhone, 0.7}},
      {"url", {SemanticType::kUrl, 0.95}},
      {"website", {SemanticType::kUrl, 0.8}},
      {"link", {SemanticType::kUrl, 0.5}},
      {"year", {SemanticType::kYear, 0.8}},
      {"price", {SemanticType::kMoney, 0.85}},
      {"cost", {SemanticType::kMoney, 0.8}},
      {"salary", {SemanticType::kMoney, 0.85}},
      {"amount", {SemanticType::kMoney, 0.5}},
      {"balance", {SemanticType::kMoney, 0.7}},
      {"fee", {SemanticType::kMoney, 0.7}},
      {"wage", {SemanticType::kMoney, 0.8}},
      {"height", {SemanticType::kLength, 0.7}},
      {"width", {SemanticType::kLength, 0.7}},
      {"depth", {SemanticType::kLength, 0.6}},
      {"distance", {SemanticType::kLength, 0.8}},
      {"diameter", {SemanticType::kLength, 0.8}},
      {"elevation", {SemanticType::kLength, 0.7}},
      {"weight", {SemanticType::kMass, 0.8}},
      {"mass", {SemanticType::kMass, 0.8}},
      {"temperature", {SemanticType::kTemperature, 0.9}},
      {"temp", {SemanticType::kTemperature, 0.6}},
      {"count", {SemanticType::kCount, 0.7}},
      {"quantity", {SemanticType::kCount, 0.75}},
      {"qty", {SemanticType::kCount, 0.7}},
      {"attendance", {SemanticType::kCount, 0.5}},
      {"percentage", {SemanticType::kPercentage, 0.9}},
      {"percentile", {SemanticType::kPercentage, 0.8}},
      {"surname", {SemanticType::kPersonName, 0.8}},
      {"forename", {SemanticType::kPersonName, 0.8}},
      {"firstname", {SemanticType::kPersonName, 0.8}},
      {"lastname", {SemanticType::kPersonName, 0.8}},
  };
  return table;
}

bool IsTemporalType(DataType type) {
  return type == DataType::kDate || type == DataType::kTime ||
         type == DataType::kDateTime;
}

}  // namespace

const Codebook& Codebook::Default() {
  static const Codebook* codebook = new Codebook();
  return *codebook;
}

CodebookEntry Codebook::Classify(const Element& element) const {
  CodebookEntry entry;
  if (element.kind != ElementKind::kAttribute) return entry;

  std::vector<std::string> tokens;
  for (const std::string& raw : TokenizeToStrings(element.name)) {
    tokens.push_back(ToLowerAscii(raw));
  }
  if (tokens.empty()) return entry;

  // 1. Unit suffix is the strongest signal: "height_cm", "weight_kg".
  const auto& units = UnitTable();
  auto unit_it = units.find(tokens.back());
  if (unit_it != units.end() && tokens.size() >= 2) {
    entry.semantic = unit_it->second;
    entry.unit = tokens.back();
    entry.confidence = 0.95;
    return entry;
  }

  // 2. Declared keys are identifiers regardless of name.
  if (element.primary_key) {
    entry.semantic = SemanticType::kIdentifier;
    entry.confidence = 0.95;
    return entry;
  }

  // 3. Temporal: declared type is decisive; "date"/"time" tokens back it
  // up for string-typed columns.
  if (IsTemporalType(element.type)) {
    entry.semantic = element.type == DataType::kDate ? SemanticType::kDate
                     : element.type == DataType::kTime
                         ? SemanticType::kTime
                         : SemanticType::kDateTime;
    entry.confidence = 0.9;
    return entry;
  }
  for (const std::string& token : tokens) {
    if (token == "date" || token == "dob") {
      entry.semantic = SemanticType::kDate;
      entry.confidence = 0.7;
      return entry;
    }
    if (token == "timestamp") {
      entry.semantic = SemanticType::kDateTime;
      entry.confidence = 0.8;
      return entry;
    }
  }

  // 4. Keyword table, first hit wins (names are short). Runs before the
  // identifier suffixes so "phone_number" is a phone, not a key.
  const auto& keywords = KeywordTable();
  for (const std::string& token : tokens) {
    auto it = keywords.find(token);
    if (it != keywords.end()) {
      entry.semantic = it->second.semantic;
      entry.confidence = it->second.confidence;
      return entry;
    }
  }

  // 5. Identifier-shaped names: "<x>_id", "invoice_number", ISBN/SKU.
  if (tokens.back() == "id" || tokens.back() == "identifier" ||
      tokens.back() == "key" || tokens.back() == "code" ||
      tokens.back() == "number" || tokens.back() == "isbn" ||
      tokens.back() == "sku") {
    entry.semantic = SemanticType::kIdentifier;
    entry.confidence = 0.7;
    return entry;
  }

  // 6. "first/last name" patterns.
  if (tokens.back() == "name" && tokens.size() >= 2 &&
      (tokens[0] == "first" || tokens[0] == "last" || tokens[0] == "full" ||
       tokens[0] == "middle" || tokens[0] == "maiden")) {
    entry.semantic = SemanticType::kPersonName;
    entry.confidence = 0.8;
    return entry;
  }
  return entry;
}

std::vector<AnnotatedElement> Codebook::AnnotateSchema(
    const Schema& schema) const {
  std::vector<AnnotatedElement> annotations;
  for (ElementId id = 0; id < schema.size(); ++id) {
    CodebookEntry entry = Classify(schema.element(id));
    if (entry.semantic != SemanticType::kUnknown) {
      annotations.push_back(AnnotatedElement{id, entry});
    }
  }
  return annotations;
}

double CodebookMatcher::EntrySimilarity(const CodebookEntry& a,
                                        const CodebookEntry& b) {
  if (a.semantic == SemanticType::kUnknown ||
      b.semantic == SemanticType::kUnknown) {
    // Uninformative: neutral score so the ensemble's other matchers
    // decide.
    return 0.3;
  }
  if (a.semantic != b.semantic) return 0.0;
  double score = std::min(a.confidence, b.confidence);
  // Same semantic type but different declared units ("height_cm" vs
  // "height_inches"): still the same concept, small penalty flags the
  // conversion.
  if (!a.unit.empty() && !b.unit.empty() && a.unit != b.unit) {
    score *= 0.85;
  }
  return score;
}

SimilarityMatrix CodebookMatcher::Match(const Schema& query,
                                        const Schema& candidate) const {
  const Codebook& codebook = Codebook::Default();
  SimilarityMatrix matrix(query.size(), candidate.size());
  std::vector<CodebookEntry> query_entries(query.size());
  std::vector<CodebookEntry> cand_entries(candidate.size());
  for (ElementId id = 0; id < query.size(); ++id) {
    query_entries[id] = codebook.Classify(query.element(id));
  }
  for (ElementId id = 0; id < candidate.size(); ++id) {
    cand_entries[id] = codebook.Classify(candidate.element(id));
  }
  for (size_t r = 0; r < query.size(); ++r) {
    for (size_t c = 0; c < candidate.size(); ++c) {
      if (query.element(static_cast<ElementId>(r)).kind !=
          candidate.element(static_cast<ElementId>(c)).kind) {
        matrix.set(r, c, 0.0);
      } else {
        matrix.set(r, c,
                   EntrySimilarity(query_entries[r], cand_entries[c]));
      }
    }
  }
  return matrix;
}

}  // namespace schemr
