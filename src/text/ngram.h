// Character n-gram extraction for the name matcher.
//
// The paper's name matcher "parses each schema element in the query into a
// set of all possible n-grams, ranging in length from one character to the
// length of the word" and ranks each n-gram set against candidate element
// names. We expose both the exhaustive variant and a banded variant
// (min_n..max_n) that is what production string matchers actually use.

#ifndef SCHEMR_TEXT_NGRAM_H_
#define SCHEMR_TEXT_NGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace schemr {

/// Multiset of n-grams with counts.
using NgramProfile = std::unordered_map<std::string, uint32_t>;

/// All contiguous substrings of length in [min_n, max_n] (clamped to the
/// word length). min_n >= 1, max_n >= min_n.
std::vector<std::string> ExtractNgrams(std::string_view word, size_t min_n,
                                       size_t max_n);

/// All possible n-grams, 1..len(word) -- the paper's exhaustive variant.
std::vector<std::string> ExtractAllNgrams(std::string_view word);

/// Builds a counted profile from a word (banded n-grams).
NgramProfile BuildNgramProfile(std::string_view word, size_t min_n,
                               size_t max_n);

/// Dice coefficient between two n-gram multisets:
/// 2·|A∩B| / (|A|+|B|), with multiset intersection using min counts.
/// Returns a value in [0, 1]; 1 for identical non-empty profiles.
double DiceSimilarity(const NgramProfile& a, const NgramProfile& b);

/// Jaccard coefficient over the same multisets (min/max counts).
double JaccardSimilarity(const NgramProfile& a, const NgramProfile& b);

}  // namespace schemr

#endif  // SCHEMR_TEXT_NGRAM_H_
