// Stopword filtering for the document index.
//
// Schema names rarely contain classic English stopwords, but summaries,
// descriptions and web-table headers do ("list of ...", "name of the ...").

#ifndef SCHEMR_TEXT_STOPWORDS_H_
#define SCHEMR_TEXT_STOPWORDS_H_

#include <string_view>

namespace schemr {

/// True if the lowercase word is in the default English stopword list.
bool IsStopword(std::string_view word);

}  // namespace schemr

#endif  // SCHEMR_TEXT_STOPWORDS_H_
