#include "text/stopwords.h"

#include <string>
#include <unordered_set>

namespace schemr {

namespace {
const std::unordered_set<std::string>& StopwordSet() {
  // Lucene's classic English stopword list.
  static const std::unordered_set<std::string> set = {
      "a",    "an",   "and",  "are",   "as",    "at",   "be",   "but",
      "by",   "for",  "if",   "in",    "into",  "is",   "it",   "no",
      "not",  "of",   "on",   "or",    "such",  "that", "the",  "their",
      "then", "there", "these", "they", "this",  "to",   "was",  "will",
      "with",
  };
  return set;
}
}  // namespace

bool IsStopword(std::string_view word) {
  const auto& set = StopwordSet();
  return set.find(std::string(word)) != set.end();
}

}  // namespace schemr
