#include "text/porter_stemmer.h"

#include <algorithm>

namespace schemr {

namespace {

// The implementation follows Porter's original description: a word is a
// sequence [C](VC)^m[V]; each step applies the longest-matching suffix rule
// whose condition (usually a lower bound on the measure m of the stem)
// holds.

bool IsVowelAt(const std::string& w, size_t i) {
  char c = w[i];
  if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') return true;
  // 'y' is a vowel when preceded by a consonant.
  if (c == 'y') return i > 0 && !IsVowelAt(w, i - 1);
  return false;
}

// Measure m of w[0..end): number of VC sequences.
int Measure(const std::string& w, size_t end) {
  int m = 0;
  bool prev_vowel = false;
  for (size_t i = 0; i < end; ++i) {
    bool v = IsVowelAt(w, i);
    if (prev_vowel && !v) ++m;
    prev_vowel = v;
  }
  return m;
}

bool ContainsVowel(const std::string& w, size_t end) {
  for (size_t i = 0; i < end; ++i) {
    if (IsVowelAt(w, i)) return true;
  }
  return false;
}

bool EndsWithDoubleConsonant(const std::string& w) {
  size_t n = w.size();
  if (n < 2) return false;
  return w[n - 1] == w[n - 2] && !IsVowelAt(w, n - 1);
}

// *o: stem ends cvc where the final c is not w, x or y.
bool EndsCvc(const std::string& w, size_t end) {
  if (end < 3) return false;
  size_t i = end - 1;
  if (IsVowelAt(w, i) || !IsVowelAt(w, i - 1) || IsVowelAt(w, i - 2)) {
    return false;
  }
  char c = w[i];
  return c != 'w' && c != 'x' && c != 'y';
}

bool HasSuffix(const std::string& w, std::string_view suffix) {
  return w.size() >= suffix.size() &&
         w.compare(w.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// If w ends with `suffix` and the stem before it has measure > min_m,
// replace the suffix and return true.
bool ReplaceIf(std::string* w, std::string_view suffix,
               std::string_view replacement, int min_m) {
  if (!HasSuffix(*w, suffix)) return false;
  size_t stem_len = w->size() - suffix.size();
  if (Measure(*w, stem_len) <= min_m) return true;  // matched, no change
  w->resize(stem_len);
  w->append(replacement);
  return true;
}

void Step1a(std::string* w) {
  if (HasSuffix(*w, "sses")) {
    w->resize(w->size() - 2);
  } else if (HasSuffix(*w, "ies")) {
    w->resize(w->size() - 2);
  } else if (HasSuffix(*w, "ss")) {
    // no change
  } else if (HasSuffix(*w, "s")) {
    w->resize(w->size() - 1);
  }
}

void Step1b(std::string* w) {
  bool second = false;
  if (HasSuffix(*w, "eed")) {
    if (Measure(*w, w->size() - 3) > 0) w->resize(w->size() - 1);
  } else if (HasSuffix(*w, "ed") && ContainsVowel(*w, w->size() - 2)) {
    w->resize(w->size() - 2);
    second = true;
  } else if (HasSuffix(*w, "ing") && ContainsVowel(*w, w->size() - 3)) {
    w->resize(w->size() - 3);
    second = true;
  }
  if (second) {
    if (HasSuffix(*w, "at") || HasSuffix(*w, "bl") || HasSuffix(*w, "iz")) {
      w->push_back('e');
    } else if (EndsWithDoubleConsonant(*w)) {
      char last = w->back();
      if (last != 'l' && last != 's' && last != 'z') w->resize(w->size() - 1);
    } else if (Measure(*w, w->size()) == 1 && EndsCvc(*w, w->size())) {
      w->push_back('e');
    }
  }
}

void Step1c(std::string* w) {
  if (HasSuffix(*w, "y") && ContainsVowel(*w, w->size() - 1)) {
    w->back() = 'i';
  }
}

void Step2(std::string* w) {
  static const struct {
    const char* suffix;
    const char* replacement;
  } kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},
  };
  for (const auto& rule : kRules) {
    if (ReplaceIf(w, rule.suffix, rule.replacement, 0)) return;
  }
}

void Step3(std::string* w) {
  static const struct {
    const char* suffix;
    const char* replacement;
  } kRules[] = {
      {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},   {"ness", ""},
  };
  for (const auto& rule : kRules) {
    if (ReplaceIf(w, rule.suffix, rule.replacement, 0)) return;
  }
}

void Step4(std::string* w) {
  static const char* kSuffixes[] = {
      "al",   "ance", "ence", "er",  "ic",   "able", "ible", "ant", "ement",
      "ment", "ent",  "ou",   "ism", "ate",  "iti",  "ous",  "ive", "ize",
  };
  for (const char* suffix : kSuffixes) {
    if (HasSuffix(*w, suffix)) {
      size_t stem_len = w->size() - std::string_view(suffix).size();
      if (Measure(*w, stem_len) > 1) w->resize(stem_len);
      return;
    }
  }
  // "(s|t)ion": remove "ion" if preceded by s or t.
  if (HasSuffix(*w, "ion")) {
    size_t stem_len = w->size() - 3;
    if (stem_len > 0 && ((*w)[stem_len - 1] == 's' || (*w)[stem_len - 1] == 't') &&
        Measure(*w, stem_len) > 1) {
      w->resize(stem_len);
    }
  }
}

void Step5a(std::string* w) {
  if (HasSuffix(*w, "e")) {
    size_t stem_len = w->size() - 1;
    int m = Measure(*w, stem_len);
    if (m > 1 || (m == 1 && !EndsCvc(*w, stem_len))) {
      w->resize(stem_len);
    }
  }
}

void Step5b(std::string* w) {
  if (w->size() >= 2 && w->back() == 'l' && EndsWithDoubleConsonant(*w) &&
      Measure(*w, w->size()) > 1) {
    w->resize(w->size() - 1);
  }
}

}  // namespace

std::string PorterStem(std::string_view word) {
  std::string w(word);
  if (w.size() < 3) return w;
  if (!std::all_of(w.begin(), w.end(),
                   [](char c) { return c >= 'a' && c <= 'z'; })) {
    return w;
  }
  Step1a(&w);
  Step1b(&w);
  Step1c(&w);
  Step2(&w);
  Step3(&w);
  Step4(&w);
  Step5a(&w);
  Step5b(&w);
  return w;
}

}  // namespace schemr
