#include "text/lexicon.h"

#include <set>

#include "text/porter_stemmer.h"

namespace schemr {

const std::vector<std::pair<std::string, std::vector<std::string>>>&
AbbreviationTable() {
  static const std::vector<std::pair<std::string, std::vector<std::string>>>
      table = {
          {"patient", {"pat", "pt"}},
          {"doctor", {"doc", "dr"}},
          {"number", {"num", "no", "nbr"}},
          {"address", {"addr"}},
          {"quantity", {"qty"}},
          {"description", {"desc", "descr"}},
          {"amount", {"amt"}},
          {"account", {"acct", "acc"}},
          {"average", {"avg"}},
          {"maximum", {"max"}},
          {"minimum", {"min"}},
          {"temperature", {"temp"}},
          {"latitude", {"lat"}},
          {"longitude", {"lon", "lng", "long"}},
          {"department", {"dept"}},
          {"organization", {"org"}},
          {"reference", {"ref"}},
          {"identifier", {"id", "ident"}},
          {"telephone", {"tel"}},
          {"phone", {"ph"}},
          {"first", {"fst"}},
          {"last", {"lst"}},
          {"date", {"dt"}},
          {"birth", {"brth"}},
          {"height", {"ht", "hgt"}},
          {"weight", {"wt", "wgt"}},
          {"diagnosis", {"diag", "dx"}},
          {"treatment", {"tx", "treat"}},
          {"prescription", {"rx"}},
          {"measurement", {"meas"}},
          {"observation", {"obs"}},
          {"transaction", {"txn", "trans"}},
          {"employee", {"emp"}},
          {"customer", {"cust"}},
          {"supplier", {"supp"}},
          {"product", {"prod"}},
          {"warehouse", {"whs", "wh"}},
          {"student", {"stu", "stud"}},
          {"enrollment", {"enrol", "enr"}},
          {"payment", {"pmt", "pay"}},
          {"percent", {"pct"}},
          {"year", {"yr"}},
          {"month", {"mo", "mon"}},
          {"location", {"loc"}},
          {"category", {"cat"}},
          {"manufacturer", {"mfr", "mfg"}},
          {"expenditure", {"exp"}},
          {"attendance", {"attend"}},
          {"population", {"pop"}},
          {"administration", {"admin"}},
          {"information", {"info"}},
      };
  return table;
}

const std::vector<std::pair<std::string, std::string>>& SynonymTable() {
  static const std::vector<std::pair<std::string, std::string>> table = {
      {"gender", "sex"},
      {"phone", "telephone"},
      {"zip", "postal"},
      {"surname", "lastname"},
      {"dob", "birthdate"},
      {"email", "mail"},
      {"price", "cost"},
      {"employee", "staff"},
      {"student", "pupil"},
      {"grade", "mark"},
      {"vendor", "supplier"},
      {"customer", "client"},
      {"begin", "start"},
      {"end", "finish"},
      {"doctor", "physician"},
      {"illness", "disease"},
      {"drug", "medication"},
      {"salary", "wage"},
      {"company", "firm"},
      {"country", "nation"},
      {"picture", "image"},
      {"film", "movie"},
      {"author", "writer"},
      {"site", "location"},
      {"kind", "type"},
  };
  return table;
}

std::vector<std::string> AbbreviationsOf(const std::string& word) {
  for (const auto& [full, abbrevs] : AbbreviationTable()) {
    if (full == word) return abbrevs;
  }
  return {};
}

std::vector<std::string> SynonymsOf(const std::string& word) {
  std::vector<std::string> out;
  for (const auto& [a, b] : SynonymTable()) {
    if (a == word) out.push_back(b);
    if (b == word) out.push_back(a);
  }
  return out;
}

bool AreSynonyms(const std::string& a, const std::string& b) {
  if (a == b) return false;  // identity is not synonymy
  // Canonical stemmed pair set, built once.
  static const std::set<std::pair<std::string, std::string>>* pairs = [] {
    auto* set = new std::set<std::pair<std::string, std::string>>();
    auto add = [set](std::string x, std::string y) {
      if (x > y) std::swap(x, y);
      set->emplace(std::move(x), std::move(y));
    };
    for (const auto& [x, y] : SynonymTable()) {
      add(x, y);
      add(PorterStem(x), PorterStem(y));
    }
    return set;
  }();
  std::pair<std::string, std::string> key =
      a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return pairs->count(key) > 0;
}

}  // namespace schemr
