#include "text/ngram.h"

#include <algorithm>

namespace schemr {

std::vector<std::string> ExtractNgrams(std::string_view word, size_t min_n,
                                       size_t max_n) {
  std::vector<std::string> out;
  if (word.empty() || min_n == 0) return out;
  max_n = std::min(max_n, word.size());
  for (size_t n = min_n; n <= max_n; ++n) {
    for (size_t i = 0; i + n <= word.size(); ++i) {
      out.emplace_back(word.substr(i, n));
    }
  }
  return out;
}

std::vector<std::string> ExtractAllNgrams(std::string_view word) {
  return ExtractNgrams(word, 1, word.size());
}

NgramProfile BuildNgramProfile(std::string_view word, size_t min_n,
                               size_t max_n) {
  NgramProfile profile;
  for (auto& g : ExtractNgrams(word, min_n, max_n)) {
    ++profile[std::move(g)];
  }
  return profile;
}

namespace {

struct OverlapCounts {
  uint64_t intersection = 0;
  uint64_t size_a = 0;
  uint64_t size_b = 0;
};

OverlapCounts CountOverlap(const NgramProfile& a, const NgramProfile& b) {
  OverlapCounts c;
  for (const auto& [gram, count] : a) c.size_a += count;
  for (const auto& [gram, count] : b) c.size_b += count;
  const NgramProfile& smaller = a.size() <= b.size() ? a : b;
  const NgramProfile& larger = a.size() <= b.size() ? b : a;
  for (const auto& [gram, count] : smaller) {
    auto it = larger.find(gram);
    if (it != larger.end()) {
      c.intersection += std::min(count, it->second);
    }
  }
  return c;
}

}  // namespace

double DiceSimilarity(const NgramProfile& a, const NgramProfile& b) {
  OverlapCounts c = CountOverlap(a, b);
  if (c.size_a + c.size_b == 0) return 0.0;
  return 2.0 * static_cast<double>(c.intersection) /
         static_cast<double>(c.size_a + c.size_b);
}

double JaccardSimilarity(const NgramProfile& a, const NgramProfile& b) {
  OverlapCounts c = CountOverlap(a, b);
  uint64_t uni = c.size_a + c.size_b - c.intersection;
  if (uni == 0) return 0.0;
  return static_cast<double>(c.intersection) / static_cast<double>(uni);
}

}  // namespace schemr
