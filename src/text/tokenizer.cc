#include "text/tokenizer.h"

namespace schemr {

namespace {

inline bool IsLower(char c) { return c >= 'a' && c <= 'z'; }
inline bool IsUpper(char c) { return c >= 'A' && c <= 'Z'; }
inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }
inline bool IsWordChar(char c) { return IsLower(c) || IsUpper(c) || IsDigit(c); }

}  // namespace

std::vector<Token> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  uint32_t position = 0;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    if (!IsWordChar(input[i])) {
      ++i;
      continue;
    }
    // Scan one maximal alphanumeric run, then split it on case/digit
    // boundaries.
    size_t run_end = i;
    while (run_end < n && IsWordChar(input[run_end])) ++run_end;

    size_t start = i;
    for (size_t j = i + 1; j <= run_end; ++j) {
      bool boundary = false;
      if (j == run_end) {
        boundary = true;
      } else {
        char prev = input[j - 1];
        char cur = input[j];
        if (IsLower(prev) && IsUpper(cur)) {
          boundary = true;  // camelCase
        } else if (IsDigit(prev) != IsDigit(cur)) {
          boundary = true;  // letter<->digit
        } else if (IsUpper(prev) && IsUpper(cur) && j + 1 < run_end &&
                   IsLower(input[j + 1])) {
          // Uppercase run followed by lowercase: "XMLSchema" splits before
          // the 'S'.
          boundary = true;
        }
      }
      if (boundary) {
        tokens.push_back(
            Token{std::string(input.substr(start, j - start)), position++});
        start = j;
      }
    }
    i = run_end;
  }
  return tokens;
}

std::vector<std::string> TokenizeToStrings(std::string_view input) {
  std::vector<std::string> out;
  for (auto& t : Tokenize(input)) out.push_back(std::move(t.text));
  return out;
}

}  // namespace schemr
