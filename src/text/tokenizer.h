// Tokenization of schema element names and keyword queries.
//
// Schema identifiers arrive in many shapes -- "dateOfBirth", "date_of_birth",
// "DATE-OF-BIRTH", "date.of.birth", "DateOfBirth2" -- and the tokenizer
// must expose the same word stream for all of them so that downstream
// TF/IDF and the name matcher see comparable terms.

#ifndef SCHEMR_TEXT_TOKENIZER_H_
#define SCHEMR_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace schemr {

/// A token plus its ordinal position in the source stream (positions feed
/// the index's proximity data).
struct Token {
  std::string text;
  uint32_t position = 0;

  bool operator==(const Token& other) const = default;
};

/// Splits `input` into word tokens.
///
/// Rules:
///  - any non-alphanumeric byte is a delimiter (underscore, dash, dot,
///    slash, space, punctuation, ...);
///  - a lowercase→uppercase boundary starts a new token (camelCase);
///  - an uppercase run followed by a lowercase letter splits before the
///    last uppercase letter ("XMLSchema" → "XML", "Schema");
///  - a letter↔digit boundary starts a new token ("address2" → "address",
///    "2").
/// Tokens keep their original case; case folding is the normalizer's job.
std::vector<Token> Tokenize(std::string_view input);

/// Convenience: token texts only, in order.
std::vector<std::string> TokenizeToStrings(std::string_view input);

}  // namespace schemr

#endif  // SCHEMR_TEXT_TOKENIZER_H_
