// The analyzer chain: tokenize → lowercase → (stopwords) → (stem).
//
// This mirrors a Lucene Analyzer. The same analyzer instance must be used
// at index time and at query time or terms will not line up; IndexWriter
// and the candidate extractor therefore share an AnalyzerOptions value.

#ifndef SCHEMR_TEXT_ANALYZER_H_
#define SCHEMR_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"

namespace schemr {

/// Configuration of the analysis chain.
struct AnalyzerOptions {
  bool lowercase = true;
  bool remove_stopwords = true;
  bool stem = true;
  /// Tokens shorter than this (after normalization) are dropped.
  size_t min_token_length = 1;

  bool operator==(const AnalyzerOptions&) const = default;
};

/// Stateless text-analysis pipeline.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Full chain: returns terms with positions preserved from tokenization
  /// (dropped tokens leave position gaps, as in Lucene, so proximity
  /// scoring remains meaningful).
  std::vector<Token> Analyze(std::string_view input) const;

  /// Convenience: term texts only.
  std::vector<std::string> AnalyzeToStrings(std::string_view input) const;

  /// Normalizes a single already-tokenized word (lowercase + stem), without
  /// stopword/length filtering. Used by matchers that must not lose terms.
  std::string NormalizeWord(std::string_view word) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

}  // namespace schemr

#endif  // SCHEMR_TEXT_ANALYZER_H_
