// Porter stemming algorithm (M.F. Porter, 1980), used by the analyzer to
// conflate grammatical variants ("diagnoses"/"diagnosis"/"diagnosed" →
// "diagnos") -- one of the name variations the Schemr paper calls out as
// important for schema search recall.

#ifndef SCHEMR_TEXT_PORTER_STEMMER_H_
#define SCHEMR_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace schemr {

/// Stems a single lowercase ASCII word. Words shorter than 3 characters
/// and words containing non-letters are returned unchanged.
std::string PorterStem(std::string_view word);

}  // namespace schemr

#endif  // SCHEMR_TEXT_PORTER_STEMMER_H_
