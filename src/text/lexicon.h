// Language resources: abbreviation and synonym tables.
//
// Used from two directions: the corpus generator applies these to
// *create* realistic name variation, and the name matcher consults them
// to *recognize* it (synonyms like gender↔sex share no character grams,
// so no string similarity can recover them). Keeping one table for both
// sides makes the corpus noise model and the matcher's vocabulary
// coverage consistent by construction.

#ifndef SCHEMR_TEXT_LEXICON_H_
#define SCHEMR_TEXT_LEXICON_H_

#include <string>
#include <utility>
#include <vector>

namespace schemr {

/// Known word-level abbreviations ("patient" → {"pat", "pt"}, "number" →
/// {"num", "no", "nbr"}). Keys and values are lowercase single words.
const std::vector<std::pair<std::string, std::vector<std::string>>>&
AbbreviationTable();

/// Known synonym pairs ("gender" ↔ "sex"). Each pair is listed once;
/// lookups are symmetric.
const std::vector<std::pair<std::string, std::string>>& SynonymTable();

/// Abbreviations applicable to `word` (lowercase); empty if none.
std::vector<std::string> AbbreviationsOf(const std::string& word);

/// Synonyms of `word` (lowercase, both directions); empty if none.
std::vector<std::string> SynonymsOf(const std::string& word);

/// True if the two words are a known synonym pair. Both raw and
/// Porter-stemmed forms are checked, so matcher-normalized words
/// ("telephon") still hit the table.
bool AreSynonyms(const std::string& a, const std::string& b);

}  // namespace schemr

#endif  // SCHEMR_TEXT_LEXICON_H_
