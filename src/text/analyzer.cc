#include "text/analyzer.h"

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "util/string_util.h"

namespace schemr {

std::vector<Token> Analyzer::Analyze(std::string_view input) const {
  std::vector<Token> out;
  for (Token& token : Tokenize(input)) {
    std::string text = options_.lowercase ? ToLowerAscii(token.text)
                                          : std::move(token.text);
    if (options_.remove_stopwords && IsStopword(text)) continue;
    if (options_.stem) text = PorterStem(text);
    if (text.size() < options_.min_token_length) continue;
    out.push_back(Token{std::move(text), token.position});
  }
  return out;
}

std::vector<std::string> Analyzer::AnalyzeToStrings(
    std::string_view input) const {
  std::vector<std::string> out;
  for (auto& t : Analyze(input)) out.push_back(std::move(t.text));
  return out;
}

std::string Analyzer::NormalizeWord(std::string_view word) const {
  std::string text = options_.lowercase ? ToLowerAscii(word)
                                        : std::string(word);
  if (options_.stem) text = PorterStem(text);
  return text;
}

}  // namespace schemr
