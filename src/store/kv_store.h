// Embedded log-structured key-value store.
//
// This is the storage engine beneath the schema repository (the role
// Yggdrasil's RDBMS plays in the paper's architecture, Fig. 5). The design
// is bitcask-style: all writes append CRC-checksummed records to the active
// segment file; an in-memory hash index maps each live key to its latest
// record's location; Get() reads one record back from disk and verifies
// its checksum. Deletes append tombstones. Compaction rewrites live
// records into a fresh segment and drops the old files.
//
// Durability/recovery contract (DESIGN.md §8 has the full crash matrix):
// every record is self-validating (masked CRC32 over header+payload). On
// Open() the store replays all segments in id order to rebuild the index;
// a corrupt or torn record in the *newest* segment is treated as a crashed
// tail -- the file is truncated at the last valid record and the store
// opens cleanly. A bad record in any older (immutable) segment is real
// corruption and fails Open() with Corruption, unless
// KvStoreOptions::salvage_corrupt_segments is set, in which case the
// damaged byte ranges are quarantined (skipped with a resync scan), the
// loss is tallied in repair_report(), and Open() succeeds with whatever
// records remain readable.
//
// Compaction is crash-safe via a COMPACTING marker file: the marker
// (naming the first output segment id) is made durable before any output
// is written, and old segments are deleted only after the marker is
// cleared. Recover() consults the marker -- if present, the compaction
// did not commit, its partial output is discarded, and the old segments
// (all still on disk) are replayed as if the compaction never ran. A
// compaction that fails mid-write restores the old in-memory view and
// leaves the store fully usable.
//
// All file writes go through the fault-injection shims
// (util/fault_injection.h); see README "Fault injection" for the site
// names. An append failure that cannot be rolled back (the torn record
// cannot be truncated away) wedges the store: reads keep working, writes
// return the sticky IOError.
//
// Record layout (little-endian):
//   fixed32 masked_crc | u8 type | varint key_len | varint value_len |
//   key bytes | value bytes
// where crc covers everything after the crc field.

#ifndef SCHEMR_STORE_KV_STORE_H_
#define SCHEMR_STORE_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace schemr {

struct KvStoreOptions {
  /// The active segment rolls over once it exceeds this many bytes.
  uint64_t max_segment_bytes = 4ull << 20;
  /// fsync after every write (slow; off for bulk loads and tests).
  bool sync_on_write = false;
  /// Open() normally fails with Corruption when an older (immutable)
  /// segment has a bad record. With salvage on, the corrupt byte ranges
  /// are skipped instead (scanning forward for the next checksummed
  /// record), the damage is tallied in repair_report(), and the store
  /// opens with every record that is still readable. Keys whose only
  /// copy sat in a quarantined range are lost; a key overwritten there
  /// may resurface with its last intact (older) value.
  bool salvage_corrupt_segments = false;
};

/// What salvage-mode recovery had to skip (all zero on a clean open).
struct KvRepairReport {
  size_t corrupt_segments = 0;   ///< older segments with >=1 bad range
  size_t corrupt_regions = 0;    ///< contiguous quarantined byte ranges
  uint64_t skipped_bytes = 0;    ///< bytes in quarantined ranges
  size_t salvaged_records = 0;   ///< records recovered after a bad range

  bool AnyDamage() const { return corrupt_regions > 0; }
  std::string ToString() const;
};

/// Point-in-time statistics, for tests and the storage bench.
struct KvStoreStats {
  size_t live_keys = 0;
  size_t segment_count = 0;
  uint64_t total_bytes = 0;     ///< sum of segment file sizes
  uint64_t dead_records = 0;    ///< overwritten/deleted records since open
};

/// Single-threaded embedded KV store. Not internally synchronized; wrap
/// with external locking for concurrent use (the repository layer does).
class KvStore {
 public:
  /// Opens (creating if needed) a store rooted at directory `path` and
  /// replays existing segments to rebuild the index.
  static Result<std::unique_ptr<KvStore>> Open(std::string path,
                                               KvStoreOptions options = {});

  ~KvStore();
  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Inserts or overwrites `key`.
  Status Put(std::string_view key, std::string_view value);

  /// Removes `key`. OK (idempotent) if absent.
  Status Delete(std::string_view key);

  /// Reads the current value of `key`; NotFound if absent or deleted.
  Result<std::string> Get(std::string_view key) const;

  bool Contains(std::string_view key) const;

  /// Number of live keys.
  size_t Size() const { return index_.size(); }

  /// All live keys, sorted lexicographically.
  std::vector<std::string> Keys() const;

  /// Invokes `fn` for every live (key, value) pair in sorted key order;
  /// stops and propagates on the first error the callback returns.
  Status ForEach(
      const std::function<Status(std::string_view key,
                                 std::string_view value)>& fn) const;

  /// Rewrites all live records into a fresh segment and removes the old
  /// files. Reclaims space from overwrites and tombstones. Crash-safe
  /// (COMPACTING marker); on failure the old view stays fully valid.
  Status Compact();

  /// Flushes the active segment to the OS (and fsyncs).
  Status Flush();

  KvStoreStats GetStats() const;

  /// What (if anything) salvage-mode recovery skipped at Open().
  const KvRepairReport& repair_report() const { return repair_report_; }

  const std::string& path() const { return path_; }

 private:
  struct Location {
    uint64_t segment_id = 0;
    uint64_t offset = 0;  ///< byte offset of the record start
  };

  KvStore(std::string path, KvStoreOptions options)
      : path_(std::move(path)), options_(options) {}

  Status Recover();
  Status ReplaySegment(uint64_t segment_id, bool newest);
  Status OpenActiveSegment();
  Status RollSegmentIfNeeded();
  Status AppendRecord(uint8_t type, std::string_view key,
                      std::string_view value, Location* loc);
  Result<std::pair<std::string, std::string>> ReadRecordAt(
      const Location& loc) const;

  std::string SegmentFileName(uint64_t segment_id) const;
  std::string MarkerFileName() const;
  Status WriteCompactionMarker(uint64_t first_output_id);
  Status RemoveCompactionMarker();
  Status SyncDirectory();
  Status WedgedStatus() const;

  std::string path_;
  KvStoreOptions options_;
  std::unordered_map<std::string, Location> index_;
  std::vector<uint64_t> segment_ids_;  ///< sorted ascending; back() is active
  int active_fd_ = -1;
  uint64_t active_offset_ = 0;
  uint64_t dead_records_ = 0;
  KvRepairReport repair_report_;
  /// Set when an append failure could not be rolled back; all further
  /// writes are refused so the damaged tail cannot be built upon.
  bool wedged_ = false;
};

}  // namespace schemr

#endif  // SCHEMR_STORE_KV_STORE_H_
