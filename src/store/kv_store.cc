#include "store/kv_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/varint.h"

namespace schemr {

namespace fs = std::filesystem;

namespace {

constexpr uint8_t kTypePut = 1;
constexpr uint8_t kTypeDelete = 2;
constexpr char kSegmentSuffix[] = ".seg";

/// Operation counters, shared by all open stores; GetStats() additionally
/// bridges the per-store KvStoreStats into the *_gauge metrics below.
struct StoreMetrics {
  Counter* reads;
  Counter* read_misses;
  Counter* read_bytes;
  Counter* writes;
  Counter* write_bytes;
  Counter* deletes;
  Counter* compactions;
  Gauge* live_keys;
  Gauge* segment_count;
  Gauge* total_bytes;
  Gauge* dead_records;

  static const StoreMetrics& Get() {
    static const StoreMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new StoreMetrics{
          r.GetCounter("schemr_store_reads_total", "KV store Get hits."),
          r.GetCounter("schemr_store_read_misses_total",
                       "KV store Gets of absent keys."),
          r.GetCounter("schemr_store_read_bytes_total",
                       "Key+value bytes read from segments."),
          r.GetCounter("schemr_store_writes_total", "KV store Puts."),
          r.GetCounter("schemr_store_write_bytes_total",
                       "Key+value bytes appended by Puts."),
          r.GetCounter("schemr_store_deletes_total", "KV store Deletes."),
          r.GetCounter("schemr_store_compactions_total",
                       "Segment compactions run."),
          r.GetGauge("schemr_store_live_keys",
                     "Live keys at the last GetStats call."),
          r.GetGauge("schemr_store_segment_count",
                     "Segment files at the last GetStats call."),
          r.GetGauge("schemr_store_total_bytes",
                     "Segment bytes on disk at the last GetStats call."),
          r.GetGauge("schemr_store_dead_records",
                     "Overwritten/deleted records at the last GetStats call."),
      };
    }();
    return *metrics;
  }
};

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Serializes one record; returns the bytes to append.
std::string EncodeRecord(uint8_t type, std::string_view key,
                         std::string_view value) {
  std::string body;
  body.push_back(static_cast<char>(type));
  PutVarint64(&body, key.size());
  PutVarint64(&body, value.size());
  body.append(key);
  body.append(value);
  std::string record;
  PutFixed32(&record, Crc32Mask(Crc32(body)));
  record += body;
  return record;
}

}  // namespace

Result<std::unique_ptr<KvStore>> KvStore::Open(std::string path,
                                               KvStoreOptions options) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("cannot create store directory '" + path +
                           "': " + ec.message());
  }
  std::unique_ptr<KvStore> store(new KvStore(std::move(path), options));
  SCHEMR_RETURN_IF_ERROR(store->Recover());
  return store;
}

KvStore::~KvStore() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string KvStore::SegmentFileName(uint64_t segment_id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu",
                static_cast<unsigned long long>(segment_id));
  return path_ + "/" + buf + kSegmentSuffix;
}

Status KvStore::Recover() {
  segment_ids_.clear();
  index_.clear();
  dead_records_ = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(path_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= sizeof(kSegmentSuffix) - 1 ||
        name.substr(name.size() - (sizeof(kSegmentSuffix) - 1)) !=
            kSegmentSuffix) {
      continue;
    }
    uint64_t id = 0;
    try {
      id = std::stoull(name.substr(0, name.size() - 4));
    } catch (...) {
      continue;  // not one of ours
    }
    segment_ids_.push_back(id);
  }
  if (ec) return Status::IOError("cannot list '" + path_ + "': " + ec.message());
  std::sort(segment_ids_.begin(), segment_ids_.end());

  for (size_t i = 0; i < segment_ids_.size(); ++i) {
    bool newest = (i + 1 == segment_ids_.size());
    SCHEMR_RETURN_IF_ERROR(ReplaySegment(segment_ids_[i], newest));
  }
  if (segment_ids_.empty()) segment_ids_.push_back(1);
  return OpenActiveSegment();
}

Status KvStore::ReplaySegment(uint64_t segment_id, bool newest) {
  std::string filename = SegmentFileName(segment_id);
  std::ifstream in(filename, std::ios::binary);
  if (!in) return Status::IOError("cannot open segment " + filename);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();

  std::string_view data(contents);
  uint64_t offset = 0;
  uint64_t valid_end = 0;
  Status bad = Status::OK();
  while (!data.empty()) {
    std::string_view record_start = data;
    uint32_t masked_crc = 0;
    uint8_t type = 0;
    uint64_t key_len = 0, value_len = 0;
    Status st = GetFixed32(&data, &masked_crc);
    if (st.ok() && data.empty()) st = Status::Corruption("truncated record");
    if (st.ok()) {
      type = static_cast<uint8_t>(data.front());
      data.remove_prefix(1);
      st = GetVarint64(&data, &key_len);
    }
    if (st.ok()) st = GetVarint64(&data, &value_len);
    if (st.ok() && key_len + value_len > data.size()) {
      st = Status::Corruption("record payload truncated");
    }
    if (st.ok()) {
      // Re-derive the body span to verify the checksum.
      size_t header_len = record_start.size() - data.size();
      std::string_view body =
          record_start.substr(4, header_len - 4 + key_len + value_len);
      if (Crc32Unmask(masked_crc) != Crc32(body)) {
        st = Status::Corruption("record checksum mismatch");
      }
    }
    if (st.ok() && type != kTypePut && type != kTypeDelete) {
      st = Status::Corruption("unknown record type");
    }
    if (!st.ok()) {
      bad = st;
      break;
    }
    std::string key(data.substr(0, key_len));
    data.remove_prefix(key_len + value_len);
    uint64_t record_size = record_start.size() - data.size();
    if (type == kTypePut) {
      auto [it, inserted] = index_.insert_or_assign(
          std::move(key), Location{segment_id, offset});
      (void)it;
      if (!inserted) ++dead_records_;
    } else {
      if (index_.erase(key) > 0) ++dead_records_;
      ++dead_records_;  // the tombstone itself is dead weight
    }
    offset += record_size;
    valid_end = offset;
  }

  if (!bad.ok()) {
    if (!newest) {
      return Status::Corruption("segment " + filename + ": " + bad.message());
    }
    // Torn tail of the active segment from a crash: truncate and move on.
    SCHEMR_LOG(kWarning) << "truncating torn tail of " << filename << " at "
                         << valid_end << " (" << bad.message() << ")";
    std::error_code ec;
    fs::resize_file(filename, valid_end, ec);
    if (ec) {
      return Status::IOError("cannot truncate " + filename + ": " +
                             ec.message());
    }
  }
  return Status::OK();
}

Status KvStore::OpenActiveSegment() {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  std::string filename = SegmentFileName(segment_ids_.back());
  active_fd_ = ::open(filename.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (active_fd_ < 0) return ErrnoStatus("open " + filename);
  off_t size = ::lseek(active_fd_, 0, SEEK_END);
  if (size < 0) return ErrnoStatus("lseek " + filename);
  active_offset_ = static_cast<uint64_t>(size);
  return Status::OK();
}

Status KvStore::RollSegmentIfNeeded() {
  if (active_offset_ < options_.max_segment_bytes) return Status::OK();
  segment_ids_.push_back(segment_ids_.back() + 1);
  return OpenActiveSegment();
}

Status KvStore::AppendRecord(uint8_t type, std::string_view key,
                             std::string_view value, Location* loc) {
  SCHEMR_RETURN_IF_ERROR(RollSegmentIfNeeded());
  std::string record = EncodeRecord(type, key, value);
  const char* p = record.data();
  size_t remaining = record.size();
  while (remaining > 0) {
    ssize_t n = ::write(active_fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (options_.sync_on_write && ::fsync(active_fd_) != 0) {
    return ErrnoStatus("fsync");
  }
  if (loc != nullptr) {
    loc->segment_id = segment_ids_.back();
    loc->offset = active_offset_;
  }
  active_offset_ += record.size();
  return Status::OK();
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  const StoreMetrics& metrics = StoreMetrics::Get();
  Location loc;
  SCHEMR_RETURN_IF_ERROR(AppendRecord(kTypePut, key, value, &loc));
  auto [it, inserted] = index_.insert_or_assign(std::string(key), loc);
  (void)it;
  if (!inserted) ++dead_records_;
  metrics.writes->Increment();
  metrics.write_bytes->Increment(key.size() + value.size());
  return Status::OK();
}

Status KvStore::Delete(std::string_view key) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::OK();
  SCHEMR_RETURN_IF_ERROR(AppendRecord(kTypeDelete, key, "", nullptr));
  index_.erase(it);
  dead_records_ += 2;  // the overwritten record and the tombstone
  StoreMetrics::Get().deletes->Increment();
  return Status::OK();
}

Result<std::pair<std::string, std::string>> KvStore::ReadRecordAt(
    const Location& loc) const {
  std::string filename = SegmentFileName(loc.segment_id);
  std::ifstream in(filename, std::ios::binary);
  if (!in) return Status::IOError("cannot open segment " + filename);
  in.seekg(static_cast<std::streamoff>(loc.offset));
  // Read the fixed header then the payload. Varints are at most 10 bytes
  // each, so 25 bytes covers crc+type+both lengths.
  char header[25];
  in.read(header, sizeof(header));
  std::streamsize got = in.gcount();
  if (got < 6) return Status::Corruption("record header truncated");
  std::string_view view(header, static_cast<size_t>(got));
  uint32_t masked_crc = 0;
  SCHEMR_RETURN_IF_ERROR(GetFixed32(&view, &masked_crc));
  uint8_t type = static_cast<uint8_t>(view.front());
  view.remove_prefix(1);
  uint64_t key_len = 0, value_len = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&view, &key_len));
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&view, &value_len));
  size_t header_len = static_cast<size_t>(got) - view.size();

  std::string body;
  body.resize(header_len - 4 + key_len + value_len);
  std::memcpy(body.data(), header + 4, header_len - 4);
  in.clear();
  in.seekg(static_cast<std::streamoff>(loc.offset + header_len));
  in.read(body.data() + header_len - 4,
          static_cast<std::streamsize>(key_len + value_len));
  if (static_cast<uint64_t>(in.gcount()) != key_len + value_len) {
    return Status::Corruption("record payload truncated");
  }
  if (Crc32Unmask(masked_crc) != Crc32(body)) {
    return Status::Corruption("record checksum mismatch on read");
  }
  if (type != kTypePut) {
    return Status::Corruption("index points at non-put record");
  }
  size_t key_start = header_len - 4;
  return std::make_pair(body.substr(key_start, key_len),
                        body.substr(key_start + key_len, value_len));
}

Result<std::string> KvStore::Get(std::string_view key) const {
  const StoreMetrics& metrics = StoreMetrics::Get();
  auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    metrics.read_misses->Increment();
    return Status::NotFound("key '" + std::string(key) + "'");
  }
  SCHEMR_ASSIGN_OR_RETURN(auto kv, ReadRecordAt(it->second));
  if (kv.first != key) {
    return Status::Corruption("index points at record for different key");
  }
  metrics.reads->Increment();
  metrics.read_bytes->Increment(kv.first.size() + kv.second.size());
  return std::move(kv.second);
}

bool KvStore::Contains(std::string_view key) const {
  return index_.find(std::string(key)) != index_.end();
}

std::vector<std::string> KvStore::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [key, loc] : index_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status KvStore::ForEach(
    const std::function<Status(std::string_view, std::string_view)>& fn)
    const {
  for (const std::string& key : Keys()) {
    SCHEMR_ASSIGN_OR_RETURN(std::string value, Get(key));
    SCHEMR_RETURN_IF_ERROR(fn(key, value));
  }
  return Status::OK();
}

Status KvStore::Compact() {
  StoreMetrics::Get().compactions->Increment();
  SCHEMR_RETURN_IF_ERROR(Flush());
  uint64_t new_id = segment_ids_.back() + 1;
  std::vector<uint64_t> old_ids = segment_ids_;

  // Write all live records into the new segment.
  segment_ids_.push_back(new_id);
  SCHEMR_RETURN_IF_ERROR(OpenActiveSegment());
  std::unordered_map<std::string, Location> new_index;
  for (const auto& [key, old_loc] : index_) {
    SCHEMR_ASSIGN_OR_RETURN(auto kv, ReadRecordAt(old_loc));
    Location loc;
    SCHEMR_RETURN_IF_ERROR(AppendRecord(kTypePut, key, kv.second, &loc));
    new_index[key] = loc;
  }
  if (::fsync(active_fd_) != 0) return ErrnoStatus("fsync after compaction");

  index_ = std::move(new_index);
  dead_records_ = 0;
  // The compaction output may itself have rolled into several segments.
  std::vector<uint64_t> kept;
  for (uint64_t id : segment_ids_) {
    if (id >= new_id) kept.push_back(id);
  }
  segment_ids_ = std::move(kept);
  for (uint64_t id : old_ids) {
    std::error_code ec;
    fs::remove(SegmentFileName(id), ec);
    if (ec) {
      SCHEMR_LOG(kWarning) << "cannot remove old segment " << id << ": "
                           << ec.message();
    }
  }
  return Status::OK();
}

Status KvStore::Flush() {
  if (active_fd_ >= 0 && ::fsync(active_fd_) != 0) {
    return ErrnoStatus("fsync");
  }
  return Status::OK();
}

KvStoreStats KvStore::GetStats() const {
  KvStoreStats stats;
  stats.live_keys = index_.size();
  stats.segment_count = segment_ids_.size();
  stats.dead_records = dead_records_;
  for (uint64_t id : segment_ids_) {
    std::error_code ec;
    auto size = fs::file_size(SegmentFileName(id), ec);
    if (!ec) stats.total_bytes += size;
  }
  const StoreMetrics& metrics = StoreMetrics::Get();
  metrics.live_keys->Set(static_cast<double>(stats.live_keys));
  metrics.segment_count->Set(static_cast<double>(stats.segment_count));
  metrics.total_bytes->Set(static_cast<double>(stats.total_bytes));
  metrics.dead_records->Set(static_cast<double>(stats.dead_records));
  return stats;
}

}  // namespace schemr
