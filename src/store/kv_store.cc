#include "store/kv_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/fault_bridge.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/varint.h"

namespace schemr {

namespace fs = std::filesystem;

namespace {

constexpr uint8_t kTypePut = 1;
constexpr uint8_t kTypeDelete = 2;
constexpr char kSegmentSuffix[] = ".seg";
constexpr char kCompactingMarker[] = "COMPACTING";

/// Operation counters, shared by all open stores; GetStats() additionally
/// bridges the per-store KvStoreStats into the *_gauge metrics below.
struct StoreMetrics {
  Counter* reads;
  Counter* read_misses;
  Counter* read_bytes;
  Counter* writes;
  Counter* write_bytes;
  Counter* deletes;
  Counter* compactions;
  Counter* salvaged_records;
  Gauge* live_keys;
  Gauge* segment_count;
  Gauge* total_bytes;
  Gauge* dead_records;

  static const StoreMetrics& Get() {
    static const StoreMetrics* metrics = [] {
      InstallFaultMetricsBridge();
      MetricsRegistry& r = MetricsRegistry::Global();
      return new StoreMetrics{
          r.GetCounter("schemr_store_reads_total", "KV store Get hits."),
          r.GetCounter("schemr_store_read_misses_total",
                       "KV store Gets of absent keys."),
          r.GetCounter("schemr_store_read_bytes_total",
                       "Key+value bytes read from segments."),
          r.GetCounter("schemr_store_writes_total", "KV store Puts."),
          r.GetCounter("schemr_store_write_bytes_total",
                       "Key+value bytes appended by Puts."),
          r.GetCounter("schemr_store_deletes_total", "KV store Deletes."),
          r.GetCounter("schemr_store_compactions_total",
                       "Segment compactions run."),
          r.GetCounter("schemr_store_salvaged_records_total",
                       "Records recovered from corrupt segments by "
                       "salvage-mode recovery."),
          r.GetGauge("schemr_store_live_keys",
                     "Live keys at the last GetStats call."),
          r.GetGauge("schemr_store_segment_count",
                     "Segment files at the last GetStats call."),
          r.GetGauge("schemr_store_total_bytes",
                     "Segment bytes on disk at the last GetStats call."),
          r.GetGauge("schemr_store_dead_records",
                     "Overwritten/deleted records at the last GetStats call."),
      };
    }();
    return *metrics;
  }
};

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Closes an fd on scope exit (the fault shims can throw InjectedCrash
/// between open and close; the torture harness runs thousands of cycles
/// in-process, so leaked descriptors would exhaust the limit).
class FdCloser {
 public:
  explicit FdCloser(int fd) : fd_(fd) {}
  ~FdCloser() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdCloser(const FdCloser&) = delete;
  FdCloser& operator=(const FdCloser&) = delete;

 private:
  int fd_;
};

/// Serializes one record; returns the bytes to append.
std::string EncodeRecord(uint8_t type, std::string_view key,
                         std::string_view value) {
  std::string body;
  body.push_back(static_cast<char>(type));
  PutVarint64(&body, key.size());
  PutVarint64(&body, value.size());
  body.append(key);
  body.append(value);
  std::string record;
  PutFixed32(&record, Crc32Mask(Crc32(body)));
  record += body;
  return record;
}

/// One decoded record, viewing into the segment buffer.
struct ParsedRecord {
  uint8_t type = 0;
  std::string_view key;
  std::string_view value;
  uint64_t size = 0;  ///< encoded bytes consumed
};

/// Parses (and validates) the record at the head of *data; advances past
/// it on success, leaves *data untouched on failure.
Status ParseRecord(std::string_view* data, ParsedRecord* out) {
  std::string_view view = *data;
  uint32_t masked_crc = 0;
  SCHEMR_RETURN_IF_ERROR(GetFixed32(&view, &masked_crc));
  if (view.empty()) return Status::Corruption("truncated record");
  uint8_t type = static_cast<uint8_t>(view.front());
  view.remove_prefix(1);
  uint64_t key_len = 0, value_len = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&view, &key_len));
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&view, &value_len));
  // Lengths come from untrusted bytes; compare without key+value overflow.
  if (key_len > view.size() || value_len > view.size() - key_len) {
    return Status::Corruption("record payload truncated");
  }
  size_t header_len = data->size() - view.size();
  std::string_view body =
      data->substr(4, header_len - 4 + key_len + value_len);
  if (Crc32Unmask(masked_crc) != Crc32(body)) {
    return Status::Corruption("record checksum mismatch");
  }
  if (type != kTypePut && type != kTypeDelete) {
    return Status::Corruption("unknown record type");
  }
  out->type = type;
  out->key = view.substr(0, key_len);
  out->value = view.substr(key_len, value_len);
  out->size = header_len + key_len + value_len;
  data->remove_prefix(out->size);
  return Status::OK();
}

}  // namespace

std::string KvRepairReport::ToString() const {
  return "repair: " + std::to_string(corrupt_segments) +
         " corrupt segment(s), " + std::to_string(corrupt_regions) +
         " quarantined region(s), " + std::to_string(skipped_bytes) +
         " byte(s) skipped, " + std::to_string(salvaged_records) +
         " record(s) salvaged";
}

Result<std::unique_ptr<KvStore>> KvStore::Open(std::string path,
                                               KvStoreOptions options) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("cannot create store directory '" + path +
                           "': " + ec.message());
  }
  std::unique_ptr<KvStore> store(new KvStore(std::move(path), options));
  SCHEMR_RETURN_IF_ERROR(store->Recover());
  return store;
}

KvStore::~KvStore() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string KvStore::SegmentFileName(uint64_t segment_id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu",
                static_cast<unsigned long long>(segment_id));
  return path_ + "/" + buf + kSegmentSuffix;
}

std::string KvStore::MarkerFileName() const {
  return path_ + "/" + kCompactingMarker;
}

Status KvStore::WedgedStatus() const {
  return Status::IOError("store '" + path_ +
                         "' is wedged after an unrecoverable write "
                         "failure; reopen to recover");
}

Status KvStore::SyncDirectory() {
  int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open dir " + path_);
  FdCloser closer(fd);
  if (FaultInjector::Global().Fsync("kv/dir/fsync", fd) != 0) {
    return ErrnoStatus("fsync dir " + path_);
  }
  return Status::OK();
}

Status KvStore::WriteCompactionMarker(uint64_t first_output_id) {
  // The trailing newline makes the marker self-validating under torn
  // writes: any proper prefix of "<digits>\n" lacks the terminator, so
  // recovery can tell a half-written marker (no output can exist yet)
  // from a durable one -- without it, a torn "13" could read as id 1 and
  // discard live segments.
  std::string contents = std::to_string(first_output_id) + "\n";
  int fd = ::open(MarkerFileName().c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                  0644);
  if (fd < 0) return ErrnoStatus("open " + MarkerFileName());
  FdCloser closer(fd);
  FaultInjector& fi = FaultInjector::Global();
  const char* p = contents.data();
  size_t remaining = contents.size();
  while (remaining > 0) {
    ssize_t n = fi.Write("kv/compact/marker_write", fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write marker");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (fi.Fsync("kv/compact/marker_fsync", fd) != 0) {
    return ErrnoStatus("fsync marker");
  }
  // The marker must be durable before any compaction output exists, or a
  // torn output segment could fail a markerless recovery.
  return SyncDirectory();
}

Status KvStore::RemoveCompactionMarker() {
  std::error_code ec;
  fs::remove(MarkerFileName(), ec);
  if (ec) {
    return Status::IOError("cannot remove compaction marker: " +
                           ec.message());
  }
  return SyncDirectory();
}

Status KvStore::Recover() {
  segment_ids_.clear();
  index_.clear();
  dead_records_ = 0;
  repair_report_ = KvRepairReport{};
  wedged_ = false;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(path_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= sizeof(kSegmentSuffix) - 1 ||
        name.substr(name.size() - (sizeof(kSegmentSuffix) - 1)) !=
            kSegmentSuffix) {
      continue;
    }
    uint64_t id = 0;
    try {
      id = std::stoull(name.substr(0, name.size() - 4));
    } catch (...) {
      continue;  // not one of ours
    }
    segment_ids_.push_back(id);
  }
  if (ec) return Status::IOError("cannot list '" + path_ + "': " + ec.message());
  std::sort(segment_ids_.begin(), segment_ids_.end());

  // An unfinished compaction left its marker: the output segments (ids >=
  // the marker's id) may be arbitrarily incomplete, but every old segment
  // is still on disk (they are deleted only after the marker is cleared).
  // Discard the output and recover the pre-compaction state.
  if (fs::exists(MarkerFileName(), ec)) {
    std::ifstream in(MarkerFileName(), std::ios::binary);
    std::string marker((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    in.close();
    uint64_t first_output_id = 0;
    bool valid = marker.size() >= 2 && marker.back() == '\n';
    if (valid) {
      for (size_t i = 0; i + 1 < marker.size(); ++i) {
        if (marker[i] < '0' || marker[i] > '9') {
          valid = false;
          break;
        }
        first_output_id = first_output_id * 10 +
                          static_cast<uint64_t>(marker[i] - '0');
      }
      valid = valid && first_output_id != 0;
    }
    if (!valid) {
      // A torn marker (missing its terminator) means the crash happened
      // while writing the marker itself -- compaction output only starts
      // after the complete marker is fsynced, so there is nothing to
      // roll back.
      SCHEMR_LOG(kWarning) << "removing torn COMPACTING marker in '" << path_
                           << "'";
      SCHEMR_RETURN_IF_ERROR(RemoveCompactionMarker());
      first_output_id = 0;
    }
    if (first_output_id != 0) {
      size_t discarded = 0;
      std::vector<uint64_t> kept;
      for (uint64_t id : segment_ids_) {
        if (id >= first_output_id) {
          fs::remove(SegmentFileName(id), ec);
          if (ec) {
            return Status::IOError("cannot discard compaction output " +
                                   SegmentFileName(id) + ": " + ec.message());
          }
          ++discarded;
        } else {
          kept.push_back(id);
        }
      }
      segment_ids_ = std::move(kept);
      SCHEMR_LOG(kWarning) << "rolled back unfinished compaction in '"
                           << path_ << "': discarded " << discarded
                           << " partial output segment(s)";
      SCHEMR_RETURN_IF_ERROR(RemoveCompactionMarker());
    }
  }

  for (size_t i = 0; i < segment_ids_.size(); ++i) {
    bool newest = (i + 1 == segment_ids_.size());
    SCHEMR_RETURN_IF_ERROR(ReplaySegment(segment_ids_[i], newest));
  }
  if (repair_report_.AnyDamage()) {
    StoreMetrics::Get().salvaged_records->Increment(
        repair_report_.salvaged_records);
    SCHEMR_LOG(kWarning) << "store '" << path_
                         << "' opened in salvage mode; "
                         << repair_report_.ToString();
  }
  if (segment_ids_.empty()) segment_ids_.push_back(1);
  return OpenActiveSegment();
}

Status KvStore::ReplaySegment(uint64_t segment_id, bool newest) {
  std::string filename = SegmentFileName(segment_id);
  std::ifstream in(filename, std::ios::binary);
  if (!in) return Status::IOError("cannot open segment " + filename);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();

  std::string_view data(contents);
  uint64_t offset = 0;
  uint64_t valid_end = 0;
  bool segment_corrupt = false;
  while (!data.empty()) {
    ParsedRecord rec;
    Status st = ParseRecord(&data, &rec);
    if (!st.ok()) {
      if (newest) {
        // Torn tail of the active segment from a crash: truncate and
        // move on.
        SCHEMR_LOG(kWarning) << "truncating torn tail of " << filename
                             << " at " << valid_end << " (" << st.message()
                             << ")";
        std::error_code ec;
        fs::resize_file(filename, valid_end, ec);
        if (ec) {
          return Status::IOError("cannot truncate " + filename + ": " +
                                 ec.message());
        }
        return Status::OK();
      }
      if (!options_.salvage_corrupt_segments) {
        return Status::Corruption("segment " + filename + ": " +
                                  st.message());
      }
      // Salvage: quarantine bytes until a checksummed record parses
      // again. The CRC makes a false resync vanishingly unlikely.
      if (!segment_corrupt) {
        segment_corrupt = true;
        ++repair_report_.corrupt_segments;
      }
      ++repair_report_.corrupt_regions;
      uint64_t region_start = offset;
      while (!data.empty()) {
        data.remove_prefix(1);
        ++offset;
        std::string_view probe = data;
        ParsedRecord resync;
        if (!data.empty() && ParseRecord(&probe, &resync).ok()) break;
      }
      repair_report_.skipped_bytes += offset - region_start;
      SCHEMR_LOG(kWarning) << "salvage: quarantined "
                           << (offset - region_start) << " byte(s) of "
                           << filename << " at offset " << region_start
                           << " (" << st.message() << ")";
      continue;
    }
    if (rec.type == kTypePut) {
      auto [it, inserted] = index_.insert_or_assign(
          std::string(rec.key), Location{segment_id, offset});
      (void)it;
      if (!inserted) ++dead_records_;
    } else {
      if (index_.erase(std::string(rec.key)) > 0) ++dead_records_;
      ++dead_records_;  // the tombstone itself is dead weight
    }
    if (segment_corrupt) ++repair_report_.salvaged_records;
    offset += rec.size;
    valid_end = offset;
  }
  return Status::OK();
}

Status KvStore::OpenActiveSegment() {
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  std::string filename = SegmentFileName(segment_ids_.back());
  active_fd_ = ::open(filename.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (active_fd_ < 0) return ErrnoStatus("open " + filename);
  off_t size = ::lseek(active_fd_, 0, SEEK_END);
  if (size < 0) return ErrnoStatus("lseek " + filename);
  active_offset_ = static_cast<uint64_t>(size);
  return Status::OK();
}

Status KvStore::RollSegmentIfNeeded() {
  if (active_offset_ < options_.max_segment_bytes) return Status::OK();
  // Sync the outgoing segment: once it is no longer the newest, the
  // torn-tail truncation rule stops applying to it, so its contents must
  // be durable before anything lands in the successor.
  if (FaultInjector::Global().Fsync("kv/roll/fsync", active_fd_) != 0) {
    return ErrnoStatus("fsync before roll");
  }
  segment_ids_.push_back(segment_ids_.back() + 1);
  return OpenActiveSegment();
}

Status KvStore::AppendRecord(uint8_t type, std::string_view key,
                             std::string_view value, Location* loc) {
  if (wedged_) return WedgedStatus();
  SCHEMR_RETURN_IF_ERROR(RollSegmentIfNeeded());
  std::string record = EncodeRecord(type, key, value);
  FaultInjector& fi = FaultInjector::Global();
  const char* p = record.data();
  size_t remaining = record.size();
  while (remaining > 0) {
    ssize_t n = fi.Write("kv/append/write", active_fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = ErrnoStatus("write");
      // A prefix of the record may have reached the file (short or torn
      // write). Cut it back off so the next append starts on a record
      // boundary; if even that fails, refuse further writes.
      if (::ftruncate(active_fd_,
                      static_cast<off_t>(active_offset_)) != 0) {
        wedged_ = true;
        SCHEMR_LOG(kError) << "cannot truncate torn append in '" << path_
                           << "'; wedging store: " << std::strerror(errno);
      }
      return st;
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (options_.sync_on_write &&
      fi.Fsync("kv/append/fsync", active_fd_) != 0) {
    Status st = ErrnoStatus("fsync");
    // The record is fully in the file but its durability is unknown. Cut
    // it back off so the fd's append position stays in step with
    // active_offset_ -- otherwise the next append lands after this
    // orphan record while the index records the stale offset, and every
    // later read in this segment fails with Corruption.
    if (::ftruncate(active_fd_, static_cast<off_t>(active_offset_)) != 0) {
      wedged_ = true;
      SCHEMR_LOG(kError) << "cannot truncate unsynced append in '" << path_
                         << "'; wedging store: " << std::strerror(errno);
    }
    return st;
  }
  if (loc != nullptr) {
    loc->segment_id = segment_ids_.back();
    loc->offset = active_offset_;
  }
  active_offset_ += record.size();
  return Status::OK();
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  const StoreMetrics& metrics = StoreMetrics::Get();
  Location loc;
  SCHEMR_RETURN_IF_ERROR(AppendRecord(kTypePut, key, value, &loc));
  auto [it, inserted] = index_.insert_or_assign(std::string(key), loc);
  (void)it;
  if (!inserted) ++dead_records_;
  metrics.writes->Increment();
  metrics.write_bytes->Increment(key.size() + value.size());
  return Status::OK();
}

Status KvStore::Delete(std::string_view key) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::OK();
  SCHEMR_RETURN_IF_ERROR(AppendRecord(kTypeDelete, key, "", nullptr));
  index_.erase(it);
  dead_records_ += 2;  // the overwritten record and the tombstone
  StoreMetrics::Get().deletes->Increment();
  return Status::OK();
}

Result<std::pair<std::string, std::string>> KvStore::ReadRecordAt(
    const Location& loc) const {
  std::string filename = SegmentFileName(loc.segment_id);
  std::ifstream in(filename, std::ios::binary);
  if (!in) return Status::IOError("cannot open segment " + filename);
  in.seekg(static_cast<std::streamoff>(loc.offset));
  // Read the fixed header then the payload. Varints are at most 10 bytes
  // each, so 25 bytes covers crc+type+both lengths.
  char header[25];
  in.read(header, sizeof(header));
  std::streamsize got = in.gcount();
  if (got < 6) return Status::Corruption("record header truncated");
  std::string_view view(header, static_cast<size_t>(got));
  uint32_t masked_crc = 0;
  SCHEMR_RETURN_IF_ERROR(GetFixed32(&view, &masked_crc));
  uint8_t type = static_cast<uint8_t>(view.front());
  view.remove_prefix(1);
  uint64_t key_len = 0, value_len = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&view, &key_len));
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&view, &value_len));
  size_t header_len = static_cast<size_t>(got) - view.size();

  std::string body;
  body.resize(header_len - 4 + key_len + value_len);
  std::memcpy(body.data(), header + 4, header_len - 4);
  in.clear();
  in.seekg(static_cast<std::streamoff>(loc.offset + header_len));
  in.read(body.data() + header_len - 4,
          static_cast<std::streamsize>(key_len + value_len));
  if (static_cast<uint64_t>(in.gcount()) != key_len + value_len) {
    return Status::Corruption("record payload truncated");
  }
  if (Crc32Unmask(masked_crc) != Crc32(body)) {
    return Status::Corruption("record checksum mismatch on read");
  }
  if (type != kTypePut) {
    return Status::Corruption("index points at non-put record");
  }
  size_t key_start = header_len - 4;
  return std::make_pair(body.substr(key_start, key_len),
                        body.substr(key_start + key_len, value_len));
}

Result<std::string> KvStore::Get(std::string_view key) const {
  const StoreMetrics& metrics = StoreMetrics::Get();
  auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    metrics.read_misses->Increment();
    return Status::NotFound("key '" + std::string(key) + "'");
  }
  SCHEMR_ASSIGN_OR_RETURN(auto kv, ReadRecordAt(it->second));
  if (kv.first != key) {
    return Status::Corruption("index points at record for different key");
  }
  metrics.reads->Increment();
  metrics.read_bytes->Increment(kv.first.size() + kv.second.size());
  return std::move(kv.second);
}

bool KvStore::Contains(std::string_view key) const {
  return index_.find(std::string(key)) != index_.end();
}

std::vector<std::string> KvStore::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [key, loc] : index_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status KvStore::ForEach(
    const std::function<Status(std::string_view, std::string_view)>& fn)
    const {
  // Walk the index directly (one ReadRecordAt per record) instead of
  // Keys() + Get(), which would re-hash and copy every key a second time.
  std::vector<const std::pair<const std::string, Location>*> entries;
  entries.reserve(index_.size());
  for (const auto& entry : index_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : entries) {
    SCHEMR_ASSIGN_OR_RETURN(auto kv, ReadRecordAt(entry->second));
    if (kv.first != entry->first) {
      return Status::Corruption("index points at record for different key");
    }
    SCHEMR_RETURN_IF_ERROR(fn(entry->first, kv.second));
  }
  return Status::OK();
}

Status KvStore::Compact() {
  if (wedged_) return WedgedStatus();
  StoreMetrics::Get().compactions->Increment();
  SCHEMR_RETURN_IF_ERROR(Flush());
  const uint64_t new_id = segment_ids_.back() + 1;
  const std::vector<uint64_t> old_ids = segment_ids_;
  FaultInjector& fi = FaultInjector::Global();

  // 1. Durable intent: until the marker is cleared, recovery discards
  //    every segment with id >= new_id and falls back to the old files.
  Status marked = WriteCompactionMarker(new_id);
  if (!marked.ok()) {
    // The marker payload may be complete on disk even though its fsync or
    // the directory sync failed. If it survives while writes continue, a
    // later segment roll can mint id new_id and the next Recover() would
    // discard it as compaction output -- so remove the marker, or refuse
    // further writes.
    Status cleared = RemoveCompactionMarker();
    if (!cleared.ok()) {
      wedged_ = true;
      SCHEMR_LOG(kError) << "cannot clear compaction marker after failed "
                            "marker write; wedging store: "
                         << cleared;
    }
    return marked;
  }
  fi.CrashPoint("kv/compact/after_marker");

  // Restores the pre-compaction view after a mid-compaction failure: the
  // partial output is deleted, the old segments (untouched so far) become
  // current again, and the marker is cleared.
  auto restore_old_view = [&](Status cause) -> Status {
    if (active_fd_ >= 0) {
      ::close(active_fd_);
      active_fd_ = -1;
    }
    for (uint64_t id : segment_ids_) {
      if (id < new_id) continue;
      std::error_code ec;
      fs::remove(SegmentFileName(id), ec);
    }
    segment_ids_ = old_ids;
    Status reopen = OpenActiveSegment();
    if (!reopen.ok()) {
      wedged_ = true;
      SCHEMR_LOG(kError) << "cannot reopen old active segment after failed "
                            "compaction; wedging store: "
                         << reopen;
      return reopen;
    }
    Status cleared = RemoveCompactionMarker();
    if (!cleared.ok()) {
      // A stale marker would discard future segments at the next open;
      // refuse writes so no such segment can come into existence.
      wedged_ = true;
      SCHEMR_LOG(kError) << "cannot clear compaction marker after failed "
                            "compaction; wedging store: "
                         << cleared;
    }
    return cause;
  };

  // 2. Write all live records into the new segment(s).
  segment_ids_.push_back(new_id);
  Status opened = OpenActiveSegment();
  if (!opened.ok()) return restore_old_view(opened);
  std::unordered_map<std::string, Location> new_index;
  for (const auto& [key, old_loc] : index_) {
    auto kv = ReadRecordAt(old_loc);
    if (!kv.ok()) return restore_old_view(kv.status());
    Location loc;
    Status appended = AppendRecord(kTypePut, key, kv->second, &loc);
    if (!appended.ok()) return restore_old_view(appended);
    new_index[key] = loc;
  }
  if (fi.Fsync("kv/compact/fsync", active_fd_) != 0) {
    return restore_old_view(ErrnoStatus("fsync after compaction"));
  }

  // 3. Commit: swap the in-memory view, then clear the marker. A crash
  //    before the clear rolls the whole compaction back on reopen; a
  //    crash after it replays old + new segments in id order, which the
  //    newer output records win.
  index_ = std::move(new_index);
  dead_records_ = 0;
  std::vector<uint64_t> kept;
  for (uint64_t id : segment_ids_) {
    if (id >= new_id) kept.push_back(id);
  }
  segment_ids_ = std::move(kept);
  fi.CrashPoint("kv/compact/before_clear_marker");
  Status cleared = RemoveCompactionMarker();
  if (!cleared.ok()) {
    // Data is intact (old + new on disk), but a stale marker would
    // discard the output at the next open; stop writes here.
    wedged_ = true;
    SCHEMR_LOG(kError) << "cannot clear compaction marker; wedging store: "
                       << cleared;
    return cleared;
  }
  fi.CrashPoint("kv/compact/after_clear_marker");

  // 4. Old segments are garbage now; reclaim them.
  for (uint64_t id : old_ids) {
    fi.CrashPoint("kv/compact/delete_old");
    std::error_code ec;
    fs::remove(SegmentFileName(id), ec);
    if (ec) {
      SCHEMR_LOG(kWarning) << "cannot remove old segment " << id << ": "
                           << ec.message();
    }
  }
  return Status::OK();
}

Status KvStore::Flush() {
  if (active_fd_ >= 0 &&
      FaultInjector::Global().Fsync("kv/flush/fsync", active_fd_) != 0) {
    return ErrnoStatus("fsync");
  }
  return Status::OK();
}

KvStoreStats KvStore::GetStats() const {
  KvStoreStats stats;
  stats.live_keys = index_.size();
  stats.segment_count = segment_ids_.size();
  stats.dead_records = dead_records_;
  for (uint64_t id : segment_ids_) {
    std::error_code ec;
    auto size = fs::file_size(SegmentFileName(id), ec);
    if (!ec) stats.total_bytes += size;
  }
  const StoreMetrics& metrics = StoreMetrics::Get();
  metrics.live_keys->Set(static_cast<double>(stats.live_keys));
  metrics.segment_count->Set(static_cast<double>(stats.segment_count));
  metrics.total_bytes->Set(static_cast<double>(stats.total_bytes));
  metrics.dead_records->Set(static_cast<double>(stats.dead_records));
  return stats;
}

}  // namespace schemr
