// The offline text indexer (paper Fig. 5): flattens schemas from the
// repository into documents and builds/updates the inverted index. In the
// paper this runs "at scheduled intervals"; here it is invoked explicitly
// (RebuildFromRepository) or incrementally (IndexSchema / RemoveSchema).

#ifndef SCHEMR_INDEX_INDEXER_H_
#define SCHEMR_INDEX_INDEXER_H_

#include <string>

#include "index/document.h"
#include "index/inverted_index.h"
#include "repo/schema_repository.h"
#include "schema/schema.h"

namespace schemr {

/// Flattens one schema into an index document: title = schema name,
/// summary = description + element documentation, body = one text per
/// element carrying the element name (entities contribute their name;
/// attributes contribute "entityName attrName" so local context lands in
/// adjacent positions).
Document FlattenSchema(const Schema& schema);

/// Statistics of one indexing run.
struct IndexerStats {
  size_t schemas_indexed = 0;
  size_t schemas_removed = 0;
  double elapsed_seconds = 0.0;
};

/// Builds and maintains an InvertedIndex from a SchemaRepository.
class Indexer {
 public:
  explicit Indexer(AnalyzerOptions analyzer_options = {})
      : index_(analyzer_options) {}

  /// Drops the current index and re-indexes every schema in `repo`.
  Result<IndexerStats> RebuildFromRepository(const SchemaRepository& repo);

  /// Incremental update for one schema (replaces any previous version).
  Status IndexSchema(const Schema& schema);

  /// Incremental removal.
  Status RemoveSchema(SchemaId id);

  /// Synchronizes with the repository: indexes new/changed ids, removes
  /// vanished ids, and vacuums tombstones. This is the "scheduled
  /// interval" entry point.
  Result<IndexerStats> Refresh(const SchemaRepository& repo);

  const InvertedIndex& index() const { return index_; }
  InvertedIndex& mutable_index() { return index_; }

  /// Persists / restores the index segment.
  Status Save(const std::string& path) const { return index_.Save(path); }
  Status LoadFrom(const std::string& path);

 private:
  InvertedIndex index_;
};

}  // namespace schemr

#endif  // SCHEMR_INDEX_INDEXER_H_
