#include "index/versioned_index.h"

#include <utility>

#include "util/fault_injection.h"

namespace schemr {

VersionedIndex::VersionedIndex(AnalyzerOptions analyzer_options)
    : current_(std::make_shared<const InvertedIndex>(analyzer_options)) {}

VersionedIndex::VersionedIndex(InvertedIndex seed)
    : current_(std::make_shared<const InvertedIndex>(std::move(seed))) {}

std::shared_ptr<const InvertedIndex> VersionedIndex::Snapshot() const {
  return current_.load();
}

Status VersionedIndex::Apply(
    const std::function<Status(InvertedIndex*)>& mutation) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // Clone outside any reader's view: the clone has no readers, so the
  // mutation below cannot race with in-flight searches on the old
  // snapshot.
  auto next = std::make_shared<InvertedIndex>(*current_.load());
  SCHEMR_RETURN_IF_ERROR(mutation(next.get()));
  FaultInjector::Global().Perturb("index/snapshot/swap");
  current_.store(std::move(next));
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status VersionedIndex::AddDocument(const Document& doc) {
  return Apply([&doc](InvertedIndex* index) { return index->AddDocument(doc); });
}

Status VersionedIndex::RemoveDocument(uint64_t external_id) {
  return Apply([external_id](InvertedIndex* index) {
    return index->RemoveDocument(external_id);
  });
}

void VersionedIndex::Vacuum() {
  (void)Apply([](InvertedIndex* index) {
    index->Vacuum();
    return Status::OK();
  });
}

}  // namespace schemr
