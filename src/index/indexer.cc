#include "index/indexer.h"

#include <unordered_set>

#include "util/timer.h"

namespace schemr {

Document FlattenSchema(const Schema& schema) {
  Document doc;
  doc.external_id = schema.id();
  doc.title = schema.name();
  doc.summary = schema.description();
  for (const Element& element : schema.elements()) {
    if (!element.documentation.empty()) {
      doc.summary += ' ';
      doc.summary += element.documentation;
    }
  }
  doc.body.reserve(schema.size());
  for (ElementId id = 0; id < schema.size(); ++id) {
    const Element& element = schema.element(id);
    if (element.kind == ElementKind::kEntity) {
      doc.body.push_back(element.name);
    } else {
      // Attributes carry their entity's name so that entity context sits
      // in adjacent positions (proximity data).
      ElementId entity = schema.EntityOf(id);
      if (entity != kNoElement) {
        doc.body.push_back(schema.element(entity).name + " " + element.name);
      } else {
        doc.body.push_back(element.name);
      }
    }
  }
  return doc;
}

Result<IndexerStats> Indexer::RebuildFromRepository(
    const SchemaRepository& repo) {
  Timer timer;
  index_ = InvertedIndex(index_.analyzer().options());
  IndexerStats stats;
  Status st = repo.ForEach([this, &stats](const Schema& schema) {
    SCHEMR_RETURN_IF_ERROR(index_.AddDocument(FlattenSchema(schema)));
    ++stats.schemas_indexed;
    return Status::OK();
  });
  SCHEMR_RETURN_IF_ERROR(st);
  stats.elapsed_seconds = timer.ElapsedSeconds();
  return stats;
}

Status Indexer::IndexSchema(const Schema& schema) {
  if (schema.id() == kNoSchema) {
    return Status::InvalidArgument("schema has no id");
  }
  if (index_.ContainsDocument(schema.id())) {
    SCHEMR_RETURN_IF_ERROR(index_.RemoveDocument(schema.id()));
  }
  return index_.AddDocument(FlattenSchema(schema));
}

Status Indexer::RemoveSchema(SchemaId id) { return index_.RemoveDocument(id); }

Result<IndexerStats> Indexer::Refresh(const SchemaRepository& repo) {
  Timer timer;
  IndexerStats stats;
  std::unordered_set<uint64_t> repo_ids;
  for (SchemaId id : repo.Ids()) repo_ids.insert(id);

  // Remove vanished documents.
  std::vector<uint64_t> to_remove;
  for (uint32_t ordinal = 0; ordinal < index_.TotalDocSlots(); ++ordinal) {
    const DocInfo& doc = index_.doc_info(ordinal);
    if (!doc.deleted && !repo_ids.count(doc.external_id)) {
      to_remove.push_back(doc.external_id);
    }
  }
  for (uint64_t id : to_remove) {
    SCHEMR_RETURN_IF_ERROR(index_.RemoveDocument(id));
    ++stats.schemas_removed;
  }

  // Index schemas the index does not know yet. (Content changes are
  // handled by callers via IndexSchema; the repository does not version.)
  for (SchemaId id : repo.Ids()) {
    if (index_.ContainsDocument(id)) continue;
    SCHEMR_ASSIGN_OR_RETURN(Schema schema, repo.Get(id));
    SCHEMR_RETURN_IF_ERROR(index_.AddDocument(FlattenSchema(schema)));
    ++stats.schemas_indexed;
  }

  if (stats.schemas_removed > 0) index_.Vacuum();
  stats.elapsed_seconds = timer.ElapsedSeconds();
  return stats;
}

Status Indexer::LoadFrom(const std::string& path) {
  SCHEMR_ASSIGN_OR_RETURN(InvertedIndex loaded, InvertedIndex::Load(path));
  index_ = std::move(loaded);
  return Status::OK();
}

}  // namespace schemr
