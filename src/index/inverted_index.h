// In-memory inverted index with on-disk persistence.
//
// "Our inverted index stores a term dictionary of frequency data,
// proximity data, and normalization factors, providing a fast and scalable
// filter for relevant candidate schemas." (paper Sec. 2)
//
// The term dictionary maps (field, term) to a posting list; each posting
// carries the in-document term frequency and token positions (proximity
// data). Per-document, per-field token counts provide the length
// normalization factors. Documents are addressed internally by dense
// ordinals; external ids (SchemaIds) are kept alongside. Deletion marks a
// tombstone bit that searches skip; Vacuum() (called by the offline
// indexer between scheduled rebuilds) rewrites the index without them.

#ifndef SCHEMR_INDEX_INVERTED_INDEX_H_
#define SCHEMR_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/document.h"
#include "text/analyzer.h"
#include "util/status.h"

namespace schemr {

/// One document's occurrence of a term in one field.
struct Posting {
  uint32_t doc = 0;  ///< internal ordinal
  uint32_t tf = 0;   ///< term frequency in the field
  std::vector<uint32_t> positions;
};

/// Per-document stored metadata.
struct DocInfo {
  uint64_t external_id = 0;
  std::string title;
  std::array<uint32_t, kNumFields> field_lengths = {0, 0, 0};
  bool deleted = false;
};

/// The index. Not thread-safe for concurrent mutation; concurrent reads
/// are safe once building is done.
class InvertedIndex {
 public:
  explicit InvertedIndex(AnalyzerOptions analyzer_options = {})
      : analyzer_(analyzer_options) {}

  /// Analyzes and adds one document. Duplicate external ids are rejected
  /// with AlreadyExists (remove first to replace).
  Status AddDocument(const Document& doc);

  /// Tombstones the document with this external id. NotFound if absent.
  Status RemoveDocument(uint64_t external_id);

  /// True if present and not deleted.
  bool ContainsDocument(uint64_t external_id) const;

  /// Live document count.
  size_t NumDocs() const { return live_docs_; }
  /// Total documents including tombstones (internal ordinal space).
  size_t TotalDocSlots() const { return docs_.size(); }
  /// Distinct (field, term) entries.
  size_t NumTerms() const { return postings_.size(); }

  /// Posting list for a term in a field, or nullptr if unseen. The term
  /// must already be analyzer-normalized (see analyzer()).
  const std::vector<Posting>* GetPostings(Field field,
                                          std::string_view term) const;

  /// Document frequency: number of documents (including tombstoned; callers
  /// compare against NumDocs) containing the term in the field.
  size_t DocFreq(Field field, std::string_view term) const;

  const DocInfo& doc_info(uint32_t ordinal) const { return docs_[ordinal]; }

  const Analyzer& analyzer() const { return analyzer_; }

  /// Rewrites the index dropping tombstoned documents (reassigns
  /// ordinals).
  void Vacuum();

  /// Serializes the whole index to `path` ("segment file"): varint
  /// delta-encoded postings with a CRC32 footer.
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save. The analyzer options are
  /// restored from the file so query analysis matches index analysis.
  static Result<InvertedIndex> Load(const std::string& path);

 private:
  friend class IndexCodec;

  void IndexText(uint32_t ordinal, Field field, std::string_view text,
                 uint32_t* position_cursor);

  static std::string TermKey(Field field, std::string_view term);

  Analyzer analyzer_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<DocInfo> docs_;
  std::unordered_map<uint64_t, uint32_t> external_to_ordinal_;
  size_t live_docs_ = 0;
};

}  // namespace schemr

#endif  // SCHEMR_INDEX_INVERTED_INDEX_H_
