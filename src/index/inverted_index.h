// In-memory inverted index with on-disk persistence.
//
// "Our inverted index stores a term dictionary of frequency data,
// proximity data, and normalization factors, providing a fast and scalable
// filter for relevant candidate schemas." (paper Sec. 2)
//
// The term dictionary maps (field, term) to a posting list; each posting
// carries the in-document term frequency and token positions (proximity
// data). Per-document, per-field token counts provide the length
// normalization factors. Documents are addressed internally by dense
// ordinals; external ids (SchemaIds) are kept alongside. Deletion marks a
// tombstone bit that searches skip; Vacuum() (called by the offline
// indexer between scheduled rebuilds) rewrites the index without them.

#ifndef SCHEMR_INDEX_INVERTED_INDEX_H_
#define SCHEMR_INDEX_INVERTED_INDEX_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "index/document.h"
#include "text/analyzer.h"
#include "util/status.h"

namespace schemr {

/// One document's occurrence of a term in one field.
struct Posting {
  uint32_t doc = 0;  ///< internal ordinal
  uint32_t tf = 0;   ///< term frequency in the field
  std::vector<uint32_t> positions;
};

/// Per-document stored metadata.
struct DocInfo {
  uint64_t external_id = 0;
  std::string title;
  std::array<uint32_t, kNumFields> field_lengths = {0, 0, 0};
  bool deleted = false;
};

/// The index.
///
/// Thread-safety contract (exact, not aspirational): an InvertedIndex has
/// no internal synchronization. Concurrent reads are safe only while no
/// mutator (AddDocument / RemoveDocument / Vacuum) is running; a mutation
/// concurrent with any read is a data race. For live ingest alongside
/// serving, do not mutate a shared instance — use VersionedIndex
/// (index/versioned_index.h), which applies mutations copy-on-write and
/// atomically publishes immutable snapshots, so readers pre-swap see the
/// old index and readers post-swap see the new one, never a mix.
///
/// Readers declare themselves with a ReadScope; in debug builds the
/// mutators assert that no read epoch is active, catching the
/// unsynchronized search-while-ingest misuse at its source.
class InvertedIndex {
 public:
  explicit InvertedIndex(AnalyzerOptions analyzer_options = {})
      : analyzer_(analyzer_options) {}

  // Copies and moves transfer the corpus but never an active read epoch:
  // the new instance starts with zero readers (std::atomic is neither
  // copyable nor movable, so these are spelled out).
  InvertedIndex(const InvertedIndex& other)
      : analyzer_(other.analyzer_),
        postings_(other.postings_),
        docs_(other.docs_),
        external_to_ordinal_(other.external_to_ordinal_),
        live_docs_(other.live_docs_) {}
  InvertedIndex(InvertedIndex&& other) noexcept
      : analyzer_(std::move(other.analyzer_)),
        postings_(std::move(other.postings_)),
        docs_(std::move(other.docs_)),
        external_to_ordinal_(std::move(other.external_to_ordinal_)),
        live_docs_(other.live_docs_) {}
  InvertedIndex& operator=(const InvertedIndex& other) {
    if (this != &other) {
      assert(active_readers_.load(std::memory_order_acquire) == 0 &&
             "InvertedIndex overwritten during an active read epoch");
      analyzer_ = other.analyzer_;
      postings_ = other.postings_;
      docs_ = other.docs_;
      external_to_ordinal_ = other.external_to_ordinal_;
      live_docs_ = other.live_docs_;
    }
    return *this;
  }
  InvertedIndex& operator=(InvertedIndex&& other) noexcept {
    if (this != &other) {
      assert(active_readers_.load(std::memory_order_acquire) == 0 &&
             "InvertedIndex overwritten during an active read epoch");
      analyzer_ = std::move(other.analyzer_);
      postings_ = std::move(other.postings_);
      docs_ = std::move(other.docs_);
      external_to_ordinal_ = std::move(other.external_to_ordinal_);
      live_docs_ = other.live_docs_;
    }
    return *this;
  }

  /// RAII read-epoch marker. Readers (the searcher, tests) hold one for
  /// the duration of their traversal; mutators assert (debug builds) that
  /// none is active. This is a misuse detector, not a lock — it makes the
  /// documented contract observable instead of silently racy.
  class ReadScope {
   public:
    explicit ReadScope(const InvertedIndex* index) : index_(index) {
      index_->active_readers_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~ReadScope() {
      index_->active_readers_.fetch_sub(1, std::memory_order_acq_rel);
    }
    ReadScope(const ReadScope&) = delete;
    ReadScope& operator=(const ReadScope&) = delete;

   private:
    const InvertedIndex* index_;
  };

  /// Read epochs currently open (diagnostics and tests).
  int32_t active_readers() const {
    return active_readers_.load(std::memory_order_acquire);
  }

  /// Analyzes and adds one document. Duplicate external ids are rejected
  /// with AlreadyExists (remove first to replace).
  Status AddDocument(const Document& doc);

  /// Tombstones the document with this external id. NotFound if absent.
  Status RemoveDocument(uint64_t external_id);

  /// True if present and not deleted.
  bool ContainsDocument(uint64_t external_id) const;

  /// Live document count.
  size_t NumDocs() const { return live_docs_; }
  /// Total documents including tombstones (internal ordinal space).
  size_t TotalDocSlots() const { return docs_.size(); }
  /// Distinct (field, term) entries.
  size_t NumTerms() const { return postings_.size(); }

  /// Posting list for a term in a field, or nullptr if unseen. The term
  /// must already be analyzer-normalized (see analyzer()).
  const std::vector<Posting>* GetPostings(Field field,
                                          std::string_view term) const;

  /// Document frequency: number of documents (including tombstoned; callers
  /// compare against NumDocs) containing the term in the field.
  size_t DocFreq(Field field, std::string_view term) const;

  const DocInfo& doc_info(uint32_t ordinal) const { return docs_[ordinal]; }

  const Analyzer& analyzer() const { return analyzer_; }

  /// Rewrites the index dropping tombstoned documents (reassigns
  /// ordinals).
  void Vacuum();

  /// Serializes the whole index to `path` ("segment file"): varint
  /// delta-encoded postings with a CRC32 footer.
  Status Save(const std::string& path) const;

  /// Loads an index previously written by Save. The analyzer options are
  /// restored from the file so query analysis matches index analysis.
  static Result<InvertedIndex> Load(const std::string& path);

 private:
  friend class IndexCodec;

  void IndexText(uint32_t ordinal, Field field, std::string_view text,
                 uint32_t* position_cursor);

  static std::string TermKey(Field field, std::string_view term);

  Analyzer analyzer_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::vector<DocInfo> docs_;
  std::unordered_map<uint64_t, uint32_t> external_to_ordinal_;
  size_t live_docs_ = 0;
  /// Open ReadScopes; mutators assert this is zero in debug builds.
  mutable std::atomic<int32_t> active_readers_{0};
};

}  // namespace schemr

#endif  // SCHEMR_INDEX_INVERTED_INDEX_H_
