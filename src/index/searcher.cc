#include "index/searcher.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/timer.h"

namespace schemr {

namespace {

/// Per-document accumulator while scanning posting lists.
struct Accumulator {
  double score = 0.0;
  uint32_t matched_terms = 0;
  uint32_t last_term_index = UINT32_MAX;  // to count distinct terms once
  std::vector<uint32_t> body_positions;   // for optional proximity boost
};

/// Accumulators live in a flat vector indexed by doc ordinal -- the scan
/// is a plain array write instead of a hash probe per posting -- with a
/// touched-list so only the docs a query actually hit are visited and
/// reset afterwards (the vector itself is reused across searches on the
/// same thread; body_positions keeps its capacity too).
struct ScratchSpace {
  std::vector<Accumulator> accumulators;
  std::vector<uint32_t> touched;
};

ScratchSpace& Scratch(size_t doc_slots) {
  static thread_local ScratchSpace scratch;
  if (scratch.accumulators.size() < doc_slots) {
    scratch.accumulators.resize(doc_slots);
  }
  scratch.touched.clear();
  return scratch;
}

/// Work counters are accumulated in plain locals during the scan and
/// flushed with one atomic add each per search.
struct SearcherMetrics {
  Counter* searches;
  Counter* terms_looked_up;
  Counter* terms_found;
  Counter* postings_scanned;
  Counter* docs_scored;
  Histogram* seconds;

  static const SearcherMetrics& Get() {
    static const SearcherMetrics* metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new SearcherMetrics{
          r.GetCounter("schemr_index_searches_total",
                       "TF/IDF searches executed."),
          r.GetCounter("schemr_index_terms_looked_up_total",
                       "Term-dictionary probes (term x field)."),
          r.GetCounter("schemr_index_terms_found_total",
                       "Dictionary probes that found a posting list."),
          r.GetCounter("schemr_index_postings_scanned_total",
                       "Postings iterated while scoring."),
          r.GetCounter("schemr_index_docs_scored_total",
                       "Distinct documents scored per search, summed."),
          r.GetHistogram("schemr_index_search_seconds",
                         "TF/IDF search latency."),
      };
    }();
    return *metrics;
  }
};

}  // namespace

std::vector<ScoredDoc> Searcher::Search(std::string_view query_text,
                                        const SearchOptions& options) const {
  return SearchTerms(index_->analyzer().AnalyzeToStrings(query_text), options);
}

std::vector<ScoredDoc> Searcher::SearchTerms(
    const std::vector<std::string>& terms,
    const SearchOptions& options) const {
  // Declare the read epoch so an unsynchronized concurrent mutation trips
  // the index's debug assertion instead of racing silently.
  InvertedIndex::ReadScope read_scope(index_);
  const SearcherMetrics& metrics = SearcherMetrics::Get();
  metrics.searches->Increment();
  std::vector<ScoredDoc> results;
  if (terms.empty() || index_->NumDocs() == 0) return results;

  Timer timer;
  uint64_t terms_looked_up = 0;
  uint64_t terms_found = 0;
  uint64_t postings_scanned = 0;

  const double num_docs = static_cast<double>(index_->NumDocs());
  ScratchSpace& scratch = Scratch(index_->TotalDocSlots());
  std::vector<Accumulator>& accumulators = scratch.accumulators;
  std::vector<uint32_t>& touched = scratch.touched;

  // Deduplicate query terms but keep multiplicity as a per-term weight, so
  // "patient patient height" weighs `patient` twice (as summing
  // independently per term would). The weights sit in a vector parallel to
  // unique_terms, keeping the posting scan free of dictionary lookups.
  std::unordered_map<std::string, uint32_t> term_index_of;
  std::vector<std::string> unique_terms;
  std::vector<double> term_weights;
  for (const std::string& term : terms) {
    auto [it, inserted] = term_index_of.emplace(term, unique_terms.size());
    if (inserted) {
      unique_terms.push_back(term);
      term_weights.push_back(1.0);
    } else {
      term_weights[it->second] += 1.0;
    }
  }

  for (uint32_t term_index = 0; term_index < unique_terms.size();
       ++term_index) {
    const std::string& term = unique_terms[term_index];
    const double term_weight = term_weights[term_index];
    for (size_t f = 0; f < kNumFields; ++f) {
      Field field = static_cast<Field>(f);
      ++terms_looked_up;
      const std::vector<Posting>* postings = index_->GetPostings(field, term);
      if (postings == nullptr) continue;
      ++terms_found;
      postings_scanned += postings->size();
      const double df = static_cast<double>(postings->size());
      const double idf = 1.0 + std::log(num_docs / (df + 1.0));
      for (const Posting& posting : *postings) {
        const DocInfo& doc = index_->doc_info(posting.doc);
        if (doc.deleted) continue;
        const uint32_t field_len = doc.field_lengths[f];
        if (field_len == 0) continue;
        const double norm = 1.0 / std::sqrt(static_cast<double>(field_len));
        const double tf = std::sqrt(static_cast<double>(posting.tf));
        Accumulator& acc = accumulators[posting.doc];
        if (acc.last_term_index == UINT32_MAX) touched.push_back(posting.doc);
        acc.score +=
            term_weight * tf * idf * idf * options.field_boosts[f] * norm;
        if (acc.last_term_index != term_index) {
          acc.last_term_index = term_index;
          ++acc.matched_terms;
        }
        if (options.proximity_boost > 0.0 && field == Field::kBody) {
          acc.body_positions.insert(acc.body_positions.end(),
                                    posting.positions.begin(),
                                    posting.positions.end());
        }
      }
    }
  }

  const double num_query_terms = static_cast<double>(unique_terms.size());
  results.reserve(touched.size());
  for (uint32_t ordinal : touched) {
    Accumulator& acc = accumulators[ordinal];
    double score = acc.score;
    if (options.use_coordination_factor) {
      score *= static_cast<double>(acc.matched_terms) / num_query_terms;
    }
    if (options.proximity_boost > 0.0 && acc.matched_terms > 1 &&
        acc.body_positions.size() > 1) {
      // Reward tight position spans of matched terms in the body: a span
      // equal to the number of matches is perfect adjacency.
      std::sort(acc.body_positions.begin(), acc.body_positions.end());
      double span = static_cast<double>(acc.body_positions.back() -
                                        acc.body_positions.front() + 1);
      double tightness =
          static_cast<double>(acc.body_positions.size()) / span;
      score *= 1.0 + options.proximity_boost * std::min(1.0, tightness);
    }
    const DocInfo& doc = index_->doc_info(ordinal);
    results.push_back(
        ScoredDoc{doc.external_id, score, acc.matched_terms, doc.title});
    // Sparse reset: the flat vector must read as untouched next search.
    acc.score = 0.0;
    acc.matched_terms = 0;
    acc.last_term_index = UINT32_MAX;
    acc.body_positions.clear();
  }

  // Top-n by score, ties broken by external id for determinism.
  auto better = [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.external_id < b.external_id;
  };
  if (results.size() > options.top_n) {
    std::partial_sort(results.begin(), results.begin() + options.top_n,
                      results.end(), better);
    results.resize(options.top_n);
  } else {
    std::sort(results.begin(), results.end(), better);
  }

  metrics.terms_looked_up->Increment(terms_looked_up);
  metrics.terms_found->Increment(terms_found);
  metrics.postings_scanned->Increment(postings_scanned);
  metrics.docs_scored->Increment(touched.size());
  metrics.seconds->Observe(timer.ElapsedSeconds());
  return results;
}

}  // namespace schemr
