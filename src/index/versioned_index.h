// Snapshot-isolated publication wrapper around InvertedIndex.
//
// A VersionedIndex holds the current index behind a swappable
// std::shared_ptr<const InvertedIndex> (AtomicSharedPtr: a micro-mutex
// held only for the pointer copy — see util/atomic_shared_ptr.h).
// Readers call Snapshot() and search a consistent point-in-time index
// for as long as they hold the pointer; writers clone the current index
// (copy-on-write), mutate the private clone, and publish it with one
// pointer swap. Neither side ever waits for more than that pointer
// copy, and no reader can observe a torn (half-mutated) index.
// Retirement is reference counting: the old snapshot is freed when its
// last reader drops it.
//
// Cost model: every published mutation pays a full deep copy of the
// index, so this wrapper targets the serving workload of the paper's
// architecture — interactive search traffic with incremental ingest —
// not bulk loading. Batch builds should fill a plain InvertedIndex (or
// use Apply with a multi-document mutation) and publish once.
//
// Writers serialize on an internal mutex; concurrent callers of the
// mutators are safe.

#ifndef SCHEMR_INDEX_VERSIONED_INDEX_H_
#define SCHEMR_INDEX_VERSIONED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "index/document.h"
#include "index/inverted_index.h"
#include "util/atomic_shared_ptr.h"
#include "util/status.h"

namespace schemr {

class VersionedIndex {
 public:
  explicit VersionedIndex(AnalyzerOptions analyzer_options = {});

  /// Adopts an already-built index as the first published snapshot.
  explicit VersionedIndex(InvertedIndex seed);

  /// The current immutable snapshot (never null). Searches run against
  /// one snapshot for their whole lifetime; re-acquire to observe later
  /// commits.
  std::shared_ptr<const InvertedIndex> Snapshot() const;

  /// Monotone publication counter; bumps on every successful mutation.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  // --- copy-on-write mutators (each publishes one new snapshot) -----------

  Status AddDocument(const Document& doc);
  Status RemoveDocument(uint64_t external_id);
  void Vacuum();

  /// Generic commit: clones the current snapshot, runs `mutation` on the
  /// clone, and publishes it only if the mutation returns OK (a failed
  /// mutation publishes nothing — readers never see its partial effects).
  /// Batch several documents into one Apply to amortize the clone.
  Status Apply(const std::function<Status(InvertedIndex*)>& mutation);

 private:
  mutable std::mutex writer_mutex_;
  AtomicSharedPtr<const InvertedIndex> current_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace schemr

#endif  // SCHEMR_INDEX_VERSIONED_INDEX_H_
