#include "index/inverted_index.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/varint.h"

namespace schemr {

namespace {
constexpr std::string_view kMagic = "SIX1";
}

std::string InvertedIndex::TermKey(Field field, std::string_view term) {
  std::string key;
  key.reserve(term.size() + 1);
  key.push_back(static_cast<char>(field));
  key.append(term);
  return key;
}

void InvertedIndex::IndexText(uint32_t ordinal, Field field,
                              std::string_view text,
                              uint32_t* position_cursor) {
  std::vector<Token> tokens = analyzer_.Analyze(text);
  for (const Token& token : tokens) {
    uint32_t position = *position_cursor + token.position;
    std::string key = TermKey(field, token.text);
    std::vector<Posting>& list = postings_[key];
    if (list.empty() || list.back().doc != ordinal) {
      list.push_back(Posting{ordinal, 0, {}});
    }
    Posting& posting = list.back();
    ++posting.tf;
    posting.positions.push_back(position);
  }
  // Advance the cursor past this text (with a gap of 1 so the last token of
  // one element and the first of the next are not adjacent).
  uint32_t span = 0;
  for (const Token& token : tokens) span = std::max(span, token.position + 1);
  if (tokens.empty()) {
    // Even empty texts advance by the raw token count so positions stay
    // monotone; estimate from tokenization without filtering.
    span = static_cast<uint32_t>(Tokenize(text).size());
  }
  *position_cursor += span + 1;
  docs_[ordinal].field_lengths[static_cast<size_t>(field)] +=
      static_cast<uint32_t>(tokens.size());
}

Status InvertedIndex::AddDocument(const Document& doc) {
  assert(active_readers_.load(std::memory_order_acquire) == 0 &&
         "AddDocument during an active read epoch; mutate through "
         "VersionedIndex for search-while-ingest");
  static Counter* docs_added = MetricsRegistry::Global().GetCounter(
      "schemr_index_docs_added_total", "Documents added to inverted indexes.");
  auto it = external_to_ordinal_.find(doc.external_id);
  if (it != external_to_ordinal_.end() && !docs_[it->second].deleted) {
    return Status::AlreadyExists("document " +
                                 std::to_string(doc.external_id));
  }
  docs_added->Increment();
  // A tombstoned predecessor keeps its (skipped) slot until Vacuum; the
  // external id now maps to the fresh document.
  uint32_t ordinal = static_cast<uint32_t>(docs_.size());
  docs_.push_back(DocInfo{doc.external_id, doc.title, {0, 0, 0}, false});
  external_to_ordinal_[doc.external_id] = ordinal;
  ++live_docs_;

  uint32_t cursor = 0;
  IndexText(ordinal, Field::kTitle, doc.title, &cursor);
  cursor = 0;
  IndexText(ordinal, Field::kSummary, doc.summary, &cursor);
  cursor = 0;
  for (const std::string& element_text : doc.body) {
    IndexText(ordinal, Field::kBody, element_text, &cursor);
  }
  return Status::OK();
}

Status InvertedIndex::RemoveDocument(uint64_t external_id) {
  assert(active_readers_.load(std::memory_order_acquire) == 0 &&
         "RemoveDocument during an active read epoch; mutate through "
         "VersionedIndex for search-while-ingest");
  static Counter* docs_removed = MetricsRegistry::Global().GetCounter(
      "schemr_index_docs_removed_total",
      "Documents tombstoned in inverted indexes.");
  auto it = external_to_ordinal_.find(external_id);
  if (it == external_to_ordinal_.end() || docs_[it->second].deleted) {
    return Status::NotFound("document " + std::to_string(external_id));
  }
  docs_[it->second].deleted = true;
  --live_docs_;
  docs_removed->Increment();
  return Status::OK();
}

bool InvertedIndex::ContainsDocument(uint64_t external_id) const {
  auto it = external_to_ordinal_.find(external_id);
  return it != external_to_ordinal_.end() && !docs_[it->second].deleted;
}

const std::vector<Posting>* InvertedIndex::GetPostings(
    Field field, std::string_view term) const {
  auto it = postings_.find(TermKey(field, term));
  return it == postings_.end() ? nullptr : &it->second;
}

size_t InvertedIndex::DocFreq(Field field, std::string_view term) const {
  const std::vector<Posting>* list = GetPostings(field, term);
  return list == nullptr ? 0 : list->size();
}

void InvertedIndex::Vacuum() {
  assert(active_readers_.load(std::memory_order_acquire) == 0 &&
         "Vacuum during an active read epoch; mutate through "
         "VersionedIndex for search-while-ingest");
  // Map old ordinals to new ones, dropping tombstones.
  std::vector<uint32_t> remap(docs_.size(), UINT32_MAX);
  std::vector<DocInfo> new_docs;
  new_docs.reserve(live_docs_);
  for (uint32_t i = 0; i < docs_.size(); ++i) {
    if (docs_[i].deleted) continue;
    remap[i] = static_cast<uint32_t>(new_docs.size());
    new_docs.push_back(std::move(docs_[i]));
  }
  for (auto& [key, list] : postings_) {
    std::vector<Posting> kept;
    kept.reserve(list.size());
    for (Posting& p : list) {
      if (remap[p.doc] == UINT32_MAX) continue;
      p.doc = remap[p.doc];
      kept.push_back(std::move(p));
    }
    list = std::move(kept);
  }
  // Drop now-empty terms.
  for (auto it = postings_.begin(); it != postings_.end();) {
    if (it->second.empty()) {
      it = postings_.erase(it);
    } else {
      ++it;
    }
  }
  docs_ = std::move(new_docs);
  external_to_ordinal_.clear();
  for (uint32_t i = 0; i < docs_.size(); ++i) {
    external_to_ordinal_[docs_[i].external_id] = i;
  }
  live_docs_ = docs_.size();
}

Status InvertedIndex::Save(const std::string& path) const {
  std::string out;
  out.append(kMagic);

  // Analyzer options, so a loaded index analyzes queries identically.
  const AnalyzerOptions& ao = analyzer_.options();
  out.push_back(static_cast<char>(ao.lowercase));
  out.push_back(static_cast<char>(ao.remove_stopwords));
  out.push_back(static_cast<char>(ao.stem));
  PutVarint64(&out, ao.min_token_length);

  PutVarint64(&out, docs_.size());
  for (const DocInfo& doc : docs_) {
    PutVarint64(&out, doc.external_id);
    PutLengthPrefixed(&out, doc.title);
    for (uint32_t len : doc.field_lengths) PutVarint32(&out, len);
    out.push_back(static_cast<char>(doc.deleted));
  }

  // Terms in sorted order for deterministic files.
  std::map<std::string_view, const std::vector<Posting>*> sorted;
  for (const auto& [key, list] : postings_) sorted[key] = &list;
  PutVarint64(&out, sorted.size());
  for (const auto& [key, list] : sorted) {
    PutLengthPrefixed(&out, key);
    PutVarint64(&out, list->size());
    uint32_t prev_doc = 0;
    for (const Posting& p : *list) {
      PutVarint32(&out, p.doc - prev_doc);  // delta (first is absolute)
      prev_doc = p.doc;
      PutVarint32(&out, p.tf);
      PutVarint64(&out, p.positions.size());
      uint32_t prev_pos = 0;
      for (uint32_t pos : p.positions) {
        PutVarint32(&out, pos - prev_pos);
        prev_pos = pos;
      }
    }
  }

  // CRC footer over everything after the magic.
  uint32_t crc = Crc32(std::string_view(out).substr(kMagic.size()));
  PutFixed32(&out, Crc32Mask(crc));

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IOError("cannot write index file " + path);
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  file.close();
  if (!file) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<InvertedIndex> InvertedIndex::Load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open index file " + path);
  std::string contents((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  file.close();

  std::string_view data(contents);
  if (data.size() < kMagic.size() + 4 ||
      data.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("bad index magic in " + path);
  }
  data.remove_prefix(kMagic.size());

  // Verify the footer CRC before parsing anything else.
  std::string_view body = data.substr(0, data.size() - 4);
  std::string_view footer = data.substr(data.size() - 4);
  uint32_t masked_crc = 0;
  SCHEMR_RETURN_IF_ERROR(GetFixed32(&footer, &masked_crc));
  if (Crc32Unmask(masked_crc) != Crc32(body)) {
    return Status::Corruption("index checksum mismatch in " + path);
  }
  data = body;

  if (data.size() < 4) return Status::Corruption("truncated index header");
  AnalyzerOptions ao;
  ao.lowercase = data[0] != 0;
  ao.remove_stopwords = data[1] != 0;
  ao.stem = data[2] != 0;
  data.remove_prefix(3);
  uint64_t min_len = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &min_len));
  ao.min_token_length = static_cast<size_t>(min_len);

  InvertedIndex index(ao);
  uint64_t num_docs = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &num_docs));
  if (num_docs > data.size()) {
    return Status::Corruption("doc count exceeds payload");
  }
  index.docs_.reserve(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    DocInfo doc;
    SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &doc.external_id));
    std::string_view title;
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &title));
    doc.title = std::string(title);
    for (auto& len : doc.field_lengths) {
      SCHEMR_RETURN_IF_ERROR(GetVarint32(&data, &len));
    }
    if (data.empty()) return Status::Corruption("truncated doc info");
    doc.deleted = data.front() != 0;
    data.remove_prefix(1);
    // Duplicate external ids are legal only when at most one copy is
    // live (a tombstoned predecessor kept its slot); the mapping must
    // point at the live copy.
    auto existing = index.external_to_ordinal_.find(doc.external_id);
    if (existing != index.external_to_ordinal_.end()) {
      if (!doc.deleted && !index.docs_[existing->second].deleted) {
        return Status::Corruption("duplicate live external id in index");
      }
      if (!doc.deleted) {
        existing->second = static_cast<uint32_t>(index.docs_.size());
      }
    } else {
      index.external_to_ordinal_[doc.external_id] =
          static_cast<uint32_t>(index.docs_.size());
    }
    if (!doc.deleted) ++index.live_docs_;
    index.docs_.push_back(std::move(doc));
  }

  uint64_t num_terms = 0;
  SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &num_terms));
  if (num_terms > data.size()) {
    return Status::Corruption("term count exceeds payload");
  }
  for (uint64_t t = 0; t < num_terms; ++t) {
    std::string_view key;
    SCHEMR_RETURN_IF_ERROR(GetLengthPrefixed(&data, &key));
    if (key.empty() || static_cast<uint8_t>(key[0]) >= kNumFields) {
      return Status::Corruption("bad term key");
    }
    uint64_t num_postings = 0;
    SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &num_postings));
    if (num_postings > data.size()) {
      return Status::Corruption("posting count exceeds payload");
    }
    std::vector<Posting> list;
    list.reserve(num_postings);
    uint32_t doc = 0;
    for (uint64_t p = 0; p < num_postings; ++p) {
      Posting posting;
      uint32_t delta = 0;
      SCHEMR_RETURN_IF_ERROR(GetVarint32(&data, &delta));
      doc = (p == 0) ? delta : doc + delta;
      if (doc >= index.docs_.size()) {
        return Status::Corruption("posting doc ordinal out of range");
      }
      posting.doc = doc;
      SCHEMR_RETURN_IF_ERROR(GetVarint32(&data, &posting.tf));
      uint64_t num_positions = 0;
      SCHEMR_RETURN_IF_ERROR(GetVarint64(&data, &num_positions));
      if (num_positions > data.size()) {
        return Status::Corruption("position count exceeds payload");
      }
      posting.positions.reserve(num_positions);
      uint32_t pos = 0;
      for (uint64_t q = 0; q < num_positions; ++q) {
        uint32_t pos_delta = 0;
        SCHEMR_RETURN_IF_ERROR(GetVarint32(&data, &pos_delta));
        pos = (q == 0) ? pos_delta : pos + pos_delta;
        posting.positions.push_back(pos);
      }
      list.push_back(std::move(posting));
    }
    index.postings_[std::string(key)] = std::move(list);
  }
  if (!data.empty()) {
    return Status::Corruption("trailing bytes in index file");
  }
  return index;
}

}  // namespace schemr
