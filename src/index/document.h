// The document model of the schema index.
//
// "Each schema in the index is represented as a document, for which we
// store a title, a summary, an ID, and a flattened representation of each
// element in the schema." (paper Sec. 2, Candidate Extraction)

#ifndef SCHEMR_INDEX_DOCUMENT_H_
#define SCHEMR_INDEX_DOCUMENT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace schemr {

/// Indexed fields of a schema document.
enum class Field : uint8_t {
  kTitle = 0,    ///< schema name
  kSummary = 1,  ///< schema description + element documentation
  kBody = 2,     ///< flattened element names (one text per element)
};

inline constexpr size_t kNumFields = 3;

/// Default per-field score boosts: a hit on the schema name is worth more
/// than a hit on one of many element names.
inline constexpr std::array<double, kNumFields> kDefaultFieldBoosts = {
    2.0,  // title
    1.0,  // summary
    1.5,  // body
};

/// A schema flattened for indexing. `body` holds one string per element
/// (names joined with their path context), preserving element order so
/// positions approximate structural proximity.
struct Document {
  uint64_t external_id = 0;  ///< SchemaId in the repository
  std::string title;
  std::string summary;
  std::vector<std::string> body;
};

}  // namespace schemr

#endif  // SCHEMR_INDEX_DOCUMENT_H_
