// TF/IDF search over the inverted index -- Schemr's candidate-extraction
// phase.
//
// "We use a variant of standard TF/IDF to obtain an initial coarse-grain
// matching. To preserve recall, the candidate extraction algorithm need
// not match all search terms; rather, match scores are computed
// independently for each search term and summed ... A coordination factor,
// defined as the number of terms matched divided by the number of terms in
// the query, is multiplied into the coarse-grain score." (paper Sec. 2)
//
// Scoring follows the classic Lucene formulation:
//   score(q, d) = coord(q, d) · Σ_t  tf(t, d_f)^½ · idf(t, f)² ·
//                 boost(f) · norm(d_f)
// with idf(t, f) = 1 + ln(N / (df(t, f) + 1)) and
// norm(d_f) = 1 / sqrt(length of field f in d).

#ifndef SCHEMR_INDEX_SEARCHER_H_
#define SCHEMR_INDEX_SEARCHER_H_

#include <string>
#include <vector>

#include "index/inverted_index.h"

namespace schemr {

/// One coarse-grain hit.
struct ScoredDoc {
  uint64_t external_id = 0;
  double score = 0.0;
  /// How many distinct query terms this document matched (any field).
  uint32_t matched_terms = 0;
  std::string title;
};

struct SearchOptions {
  size_t top_n = 10;
  bool use_coordination_factor = true;
  std::array<double, kNumFields> field_boosts = kDefaultFieldBoosts;
  /// Extra multiplicative reward for documents where matched query terms
  /// appear close together (proximity data). 0 disables.
  double proximity_boost = 0.0;
};

/// Stateless search entry points over one index.
class Searcher {
 public:
  explicit Searcher(const InvertedIndex* index) : index_(index) {}

  /// Analyzes free text with the index's analyzer, then searches.
  std::vector<ScoredDoc> Search(std::string_view query_text,
                                const SearchOptions& options = {}) const;

  /// Searches with pre-analyzed terms (the candidate extractor flattens
  /// query graphs itself).
  std::vector<ScoredDoc> SearchTerms(const std::vector<std::string>& terms,
                                     const SearchOptions& options = {}) const;

 private:
  const InvertedIndex* index_;
};

}  // namespace schemr

#endif  // SCHEMR_INDEX_SEARCHER_H_
