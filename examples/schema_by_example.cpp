// Search by example with an XSD fragment, and a look inside the match
// engine.
//
// Demonstrates the second query format of the paper ("uploading a DDL or
// XSD"): a hierarchical XSD fragment queries a mixed corpus; for the top
// hit the example prints the per-matcher similarity matrices (name,
// context, type, structure) and writes tree/radial SVG and DOT renderings
// to disk -- the artifacts a GUI would display.
//
// Usage: schema_by_example [output_prefix]   (default: by_example)

#include <cstdio>
#include <fstream>

#include "core/query_parser.h"
#include "eval/harness.h"
#include "parse/xsd_importer.h"
#include "viz/dot_writer.h"
#include "viz/layout.h"
#include "viz/svg_writer.h"

namespace {

constexpr const char* kXsdFragment = R"xml(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="observation">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="site_name" type="xs:string"/>
        <xs:element name="species" type="xs:string"/>
        <xs:element name="count" type="xs:int"/>
        <xs:element name="observed_at" type="xs:dateTime"/>
      </xs:sequence>
      <xs:attribute name="observer" type="xs:string"/>
    </xs:complexType>
  </xs:element>
</xs:schema>
)xml";

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), contents.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix = argc > 1 ? argv[1] : "by_example";

  schemr::CorpusOptions corpus_options;
  corpus_options.num_schemas = 600;
  corpus_options.seed = 11;
  auto fixture = schemr::CorpusFixture::Build(corpus_options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }

  // Build the query graph from the XSD alone: pure search-by-example.
  auto query = schemr::ParseQuery("", kXsdFragment);
  if (!query.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("query graph: %s\n", query->ToString().c_str());

  schemr::SearchEngine engine(fixture->repository.get(), &fixture->index());
  auto results = engine.Search(*query);
  if (!results.ok() || results->empty()) {
    std::fprintf(stderr, "search failed or empty\n");
    return 1;
  }
  std::printf("\ntop results for the XSD fragment:\n");
  int rank = 1;
  for (const schemr::SearchResult& r : *results) {
    std::printf("  %d. %-26s score=%.3f tightness=%.3f matches=%zu\n",
                rank++, r.name.c_str(), r.score, r.tightness, r.num_matches);
  }

  // Inspect the ensemble on the best hit.
  const schemr::SearchResult& top = results->front();
  auto top_schema = fixture->repository->Get(top.schema_id);
  if (!top_schema.ok()) return 1;
  schemr::MatcherEnsemble ensemble = schemr::MatcherEnsemble::Default();
  schemr::EnsembleResult ensemble_result =
      ensemble.Match(query->AsSchema(), *top_schema);
  std::printf("\nper-matcher mean similarity vs '%s':\n",
              top_schema->name().c_str());
  for (size_t m = 0; m < ensemble_result.matcher_names.size(); ++m) {
    std::printf("  %-10s %.3f\n", ensemble_result.matcher_names[m].c_str(),
                ensemble_result.per_matcher[m].Mean());
  }
  std::printf("  %-10s %.3f\n", "combined", ensemble_result.combined.Mean());

  // Render the hit in both layouts plus DOT.
  std::unordered_map<schemr::ElementId, double> scores;
  for (const schemr::MatchedElement& m : top.matched_elements) {
    scores[m.element] = m.score;
  }
  schemr::SchemaGraphView tree_view =
      schemr::BuildGraphView(*top_schema, scores);
  schemr::ApplyTreeLayout(&tree_view);
  WriteFile(prefix + "_tree.svg", schemr::WriteSvg(tree_view));

  schemr::SchemaGraphView radial_view =
      schemr::BuildGraphView(*top_schema, scores);
  schemr::ApplyRadialLayout(&radial_view);
  WriteFile(prefix + "_radial.svg", schemr::WriteSvg(radial_view));

  WriteFile(prefix + ".dot", schemr::WriteDot(tree_view));
  return 0;
}
