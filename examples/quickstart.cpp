// Quickstart: the full Schemr pipeline in one file.
//
// Builds a small persistent schema repository, runs the offline text
// indexer, executes a keyword search through the three-phase engine, and
// prints the ranked results table. Finally fetches the GraphML rendering
// of the best hit -- exactly the request flow of the paper's architecture
// diagram (Fig. 5).
//
// Usage: quickstart [repository_dir]   (default: ./quickstart_repo)

#include <cstdio>
#include <string>

#include "index/indexer.h"
#include "parse/ddl_parser.h"
#include "repo/schema_repository.h"
#include "service/schemr_service.h"

namespace {

constexpr const char* kClinicDdl = R"sql(
CREATE TABLE patient (
  patient_id BIGINT PRIMARY KEY,
  first_name VARCHAR(80) NOT NULL,
  last_name VARCHAR(80) NOT NULL,
  gender VARCHAR(10),
  date_of_birth DATE,
  height DOUBLE,
  weight DOUBLE
);
CREATE TABLE doctor (
  doctor_id BIGINT PRIMARY KEY,
  full_name VARCHAR(120),
  specialty VARCHAR(60)
);
CREATE TABLE "case" (
  case_id BIGINT PRIMARY KEY,
  patient_id BIGINT REFERENCES patient (patient_id),
  doctor_id BIGINT REFERENCES doctor (doctor_id),
  diagnosis VARCHAR(200),
  visit_date DATE
);
)sql";

constexpr const char* kShopDdl = R"sql(
CREATE TABLE customer (
  customer_id BIGINT PRIMARY KEY,
  first_name VARCHAR(80),
  last_name VARCHAR(80),
  email VARCHAR(120)
);
CREATE TABLE orders (
  order_id BIGINT PRIMARY KEY,
  customer_id BIGINT REFERENCES customer,
  order_date TIMESTAMP,
  total_amount DECIMAL
);
)sql";

constexpr const char* kSurveyDdl = R"sql(
CREATE TABLE site (
  site_id BIGINT PRIMARY KEY,
  site_name VARCHAR(100),
  latitude DOUBLE,
  longitude DOUBLE
);
CREATE TABLE observation (
  observation_id BIGINT PRIMARY KEY,
  site_id BIGINT REFERENCES site,
  species VARCHAR(120),
  observed_at TIMESTAMP,
  head_count INTEGER
);
)sql";

bool Check(const schemr::Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo_dir = argc > 1 ? argv[1] : "./quickstart_repo";

  // 1. Open (or create) the schema repository.
  auto repo_result = schemr::SchemaRepository::Open(repo_dir);
  if (!Check(repo_result.status(), "opening repository")) return 1;
  auto& repo = *repo_result.value();

  // 2. Import a few DDL schemas (idempotent-ish: skip if non-empty).
  if (repo.Size() == 0) {
    struct Import {
      const char* name;
      const char* ddl;
      const char* description;
    };
    const Import imports[] = {
        {"rural_clinic", kClinicDdl, "patient visit tracking for a clinic"},
        {"web_shop", kShopDdl, "customers and orders of a small shop"},
        {"wildlife_survey", kSurveyDdl, "species observations at field sites"},
    };
    for (const Import& import : imports) {
      auto parsed = schemr::ParseDdl(import.ddl, import.name);
      if (!Check(parsed.status(), "parsing DDL")) return 1;
      parsed.value().set_description(import.description);
      auto inserted = repo.Insert(std::move(parsed).value());
      if (!Check(inserted.status(), "inserting schema")) return 1;
      std::printf("imported '%s' as schema %llu\n", import.name,
                  static_cast<unsigned long long>(*inserted));
    }
  }

  // 3. Offline text indexer (Fig. 5): flatten the repository into the
  //    document index.
  schemr::Indexer indexer;
  auto stats = indexer.RebuildFromRepository(repo);
  if (!Check(stats.status(), "indexing")) return 1;
  std::printf("indexed %zu schemas in %.1f ms\n", stats->schemas_indexed,
              stats->elapsed_seconds * 1e3);

  // 4. Search: keywords as the paper's running example.
  schemr::SchemrService service(&repo, &indexer.index());
  schemr::SearchRequest request;
  request.keywords = "patient height gender diagnosis";
  auto results = service.Search(request);
  if (!Check(results.status(), "search")) return 1;

  std::printf("\nquery: %s\n", request.keywords.c_str());
  std::printf("%-4s %-18s %-7s %-8s %-9s %-10s %s\n", "#", "name", "score",
              "matches", "entities", "attributes", "description");
  int rank = 1;
  for (const schemr::SearchResult& r : *results) {
    std::printf("%-4d %-18s %-7.3f %-8zu %-9zu %-10zu %s\n", rank++,
                r.name.c_str(), r.score, r.num_matches, r.num_entities,
                r.num_attributes, r.description.c_str());
  }
  if (results->empty()) {
    std::fprintf(stderr, "no results -- unexpected for the demo corpus\n");
    return 1;
  }

  // 5. Visualization request for the top hit (GraphML wire format).
  schemr::VisualizationRequest viz;
  viz.schema_id = results->front().schema_id;
  viz.scores = results->front().matched_elements;
  auto graphml = service.GetSchemaGraphMl(viz);
  if (!Check(graphml.status(), "visualization")) return 1;
  std::printf("\nGraphML for top result (%zu bytes):\n%.400s...\n",
              graphml->size(), graphml->c_str());
  return 0;
}
