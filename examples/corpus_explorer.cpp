// Web-table corpus preparation and exploration (paper Sec. Applications).
//
// Reproduces the corpus pipeline: generate a raw synthetic "crawl" of web
// tables, apply the paper's filter (drop non-alphabetic headers,
// singleton schemas, and schemas with ≤3 elements), load the survivors
// into a repository, index them, and run a few exploratory searches --
// demonstrating schema search over web-extracted one-table schemas rather
// than curated relational designs.
//
// Usage: corpus_explorer [num_raw_tables]   (default 20000)

#include <cstdio>
#include <cstdlib>

#include "core/search_engine.h"
#include "corpus/web_tables.h"
#include "index/indexer.h"
#include "repo/schema_repository.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  size_t num_tables = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  schemr::WebTableGenOptions gen_options;
  gen_options.num_tables = num_tables;
  schemr::Timer timer;
  std::vector<schemr::RawWebTable> raw =
      schemr::GenerateRawWebTables(gen_options);
  std::printf("generated %zu raw web tables in %.1f ms\n", raw.size(),
              timer.ElapsedMillis());

  timer.Reset();
  schemr::WebTableFilterStats stats;
  std::vector<schemr::Schema> schemas = schemr::FilterWebTables(raw, &stats);
  std::printf(
      "filter: input=%zu  non-alphabetic=%zu  trivial(<=3)=%zu  "
      "singleton=%zu  duplicates=%zu  kept=%zu  (%.1f ms)\n",
      stats.input, stats.dropped_non_alphabetic, stats.dropped_trivial,
      stats.dropped_singleton, stats.duplicates_collapsed, stats.kept,
      timer.ElapsedMillis());

  auto repo = schemr::SchemaRepository::OpenInMemory();
  for (schemr::Schema& schema : schemas) {
    auto inserted = repo->Insert(std::move(schema));
    if (!inserted.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   inserted.status().ToString().c_str());
      return 1;
    }
  }

  schemr::Indexer indexer;
  auto index_stats = indexer.RebuildFromRepository(*repo);
  if (!index_stats.ok()) {
    std::fprintf(stderr, "indexing failed: %s\n",
                 index_stats.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu schemas in %.1f ms (%zu distinct terms)\n\n",
              index_stats->schemas_indexed,
              index_stats->elapsed_seconds * 1e3,
              indexer.index().NumTerms());

  schemr::SearchEngine engine(repo.get(), &indexer.index());
  const char* queries[] = {
      "patient gender diagnosis",
      "species site observation count",
      "customer order total amount",
      "student course grade",
      "account balance transaction",
  };
  for (const char* keywords : queries) {
    timer.Reset();
    auto results = engine.SearchKeywords(keywords);
    double elapsed_ms = timer.ElapsedMillis();
    if (!results.ok()) {
      std::fprintf(stderr, "search failed: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    std::printf("query \"%s\" (%.1f ms):\n", keywords, elapsed_ms);
    int rank = 1;
    for (const schemr::SearchResult& r : *results) {
      if (rank > 3) break;
      std::printf("  %d. %-28s score=%.3f matches=%zu attrs=%zu\n", rank++,
                  r.name.c_str(), r.score, r.num_matches, r.num_attributes);
    }
    if (results->empty()) std::printf("  (no results)\n");
  }
  return 0;
}
