// The paper's example scenario (Sec. 1, Figs. 1, 2 and 4).
//
// "A database administrator begins by designing a new table ... she
// performs a search for existing data models by using the keywords
// patient, height, gender, diagnosis. Additionally, she specifies a
// partially designed schema."
//
// This example generates a mixed-domain corpus (so health schemas compete
// against retail/education/etc.), runs that exact query -- keywords plus a
// DDL fragment -- and writes the two-panel GUI as a static HTML page with
// tree and radial visualizations of the top hits, node colors encoding
// element kind and match strength.
//
// Usage: health_clinic [output.html]   (default: health_clinic_results.html)

#include <cstdio>
#include <fstream>

#include "eval/harness.h"
#include "service/schemr_service.h"

int main(int argc, char** argv) {
  std::string output_path =
      argc > 1 ? argv[1] : "health_clinic_results.html";

  // A corpus of 800 schemas across all domains; dozens will derive from
  // the health concepts.
  schemr::CorpusOptions corpus_options;
  corpus_options.num_schemas = 800;
  corpus_options.seed = 2009;  // SIGMOD 2009
  auto fixture = schemr::CorpusFixture::Build(corpus_options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "corpus build failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  std::printf("corpus: %zu schemas indexed (%zu terms)\n",
              fixture->index().NumDocs(), fixture->index().NumTerms());

  schemr::SchemrService service(fixture->repository.get(),
                                &fixture->index());

  // The query of the paper: keywords + a partially designed schema (the
  // query graph of Fig. 1 -- a fragment tree plus keyword one-node trees).
  schemr::SearchRequest request;
  request.keywords = "patient height gender diagnosis";
  request.fragment = R"sql(
CREATE TABLE patient (
  patient_id BIGINT PRIMARY KEY,
  height DOUBLE,
  gender VARCHAR(10)
);
)sql";
  request.top_k = 8;

  auto results = service.Search(request);
  if (!results.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  std::printf("\nquery: \"%s\" + patient(height, gender) fragment\n",
              request.keywords.c_str());
  std::printf("%-4s %-24s %-7s %-9s %-8s %-9s %-10s\n", "#", "name", "score",
              "tightness", "matches", "entities", "attributes");
  int rank = 1;
  for (const schemr::SearchResult& r : *results) {
    std::printf("%-4d %-24s %-7.3f %-9.3f %-8zu %-9zu %-10zu\n", rank++,
                r.name.c_str(), r.score, r.tightness, r.num_matches,
                r.num_entities, r.num_attributes);
  }

  // Render the GUI substitute: results table + side-by-side tree/radial
  // panels with similarity-colored nodes (Fig. 2).
  auto html = service.RenderHtmlReport(request, /*max_panels=*/4);
  if (!html.ok()) {
    std::fprintf(stderr, "report failed: %s\n",
                 html.status().ToString().c_str());
    return 1;
  }
  std::ofstream out(output_path);
  out << *html;
  out.close();
  std::printf("\nwrote %s (%zu bytes)\n", output_path.c_str(), html->size());

  // Drill-in (double-click in the GUI): re-root the top schema's view at
  // its best anchor entity and fetch the GraphML the client would parse.
  if (!results->empty() &&
      results->front().best_anchor != schemr::kNoElement) {
    schemr::VisualizationRequest viz;
    viz.schema_id = results->front().schema_id;
    viz.root = results->front().best_anchor;
    viz.scores = results->front().matched_elements;
    auto graphml = service.GetSchemaGraphMl(viz);
    if (graphml.ok()) {
      std::printf("drill-in GraphML on anchor entity: %zu bytes\n",
                  graphml->size());
    }
  }
  return 0;
}
