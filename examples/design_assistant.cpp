// Search-driven schema design (paper Applications section).
//
// "Integrating Schemr with a schema editor would allow for a new model
// development process, in which search results are iteratively used to
// augment a schema. In this process, we can also capture implicit
// semantic mappings between schema elements, information on schema
// re-use, and the provenance of new schema entities."
//
// This example plays that loop end to end: a designer's partial DDL draft
// queries a corpus; the top result yields (a) a captured element mapping,
// (b) ranked extension suggestions; the designer "accepts" the best
// suggestions, growing the draft; reuse is recorded as a usage event and
// a rating, which boosts the reused schema in the next search.

#include <cstdio>

#include "core/composer.h"
#include "core/query_parser.h"
#include "eval/harness.h"
#include "match/mapping.h"
#include "parse/ddl_writer.h"

int main() {
  schemr::CorpusOptions corpus_options;
  corpus_options.num_schemas = 500;
  corpus_options.seed = 77;
  auto fixture = schemr::CorpusFixture::Build(corpus_options);
  if (!fixture.ok()) {
    std::fprintf(stderr, "corpus failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }

  // The designer's partial draft (the paper's clinic scenario).
  const char* draft_ddl =
      "CREATE TABLE patient (\n"
      "  patient_id BIGINT PRIMARY KEY,\n"
      "  height DOUBLE,\n"
      "  gender VARCHAR(10)\n"
      ");";
  auto query = schemr::ParseQuery("", draft_ddl);
  if (!query.ok()) return 1;
  std::printf("draft schema:\n%s\n", draft_ddl);

  schemr::SearchEngine engine(fixture->repository.get(), &fixture->index());
  auto results = engine.Search(*query);
  if (!results.ok() || results->empty()) {
    std::fprintf(stderr, "search failed or empty\n");
    return 1;
  }
  const schemr::SearchResult& top = results->front();
  std::printf("best existing model: '%s' (score %.3f, %zu matches)\n\n",
              top.name.c_str(), top.score, top.num_matches);

  auto top_schema = fixture->repository->Get(top.schema_id);
  if (!top_schema.ok()) return 1;

  // (a) Capture the implicit semantic mapping.
  schemr::MatcherEnsemble ensemble = schemr::MatcherEnsemble::Default();
  schemr::SimilarityMatrix combined =
      ensemble.MatchCombined(query->AsSchema(), *top_schema);
  schemr::MappingOptions mapping_options;
  mapping_options.min_score = 0.4;
  auto mapping = schemr::ExtractMapping(combined, mapping_options);
  std::printf("captured element mapping (draft -> %s):\n%s\n",
              top_schema->name().c_str(),
              schemr::FormatMapping(mapping, query->AsSchema(), *top_schema)
                  .c_str());

  // (b) Extension suggestions from the uncovered parts of the result.
  auto suggestions = schemr::SuggestExtensions(*top_schema, combined,
                                               top.best_anchor);
  std::printf("suggested additions:\n");
  for (const schemr::ExtensionSuggestion& s : suggestions) {
    std::printf("  %-24s %-9s conf=%.2f  (from %s)\n", s.name.c_str(),
                schemr::DataTypeName(s.type), s.confidence,
                s.source_path.c_str());
  }

  // Accept the top three suggestions into the draft.
  schemr::Schema draft = query->AsSchema();
  auto entity = draft.FindByName("patient", schemr::ElementKind::kEntity);
  if (!entity) return 1;
  size_t accepted = 0;
  for (const schemr::ExtensionSuggestion& s : suggestions) {
    if (accepted == 3) break;
    if (schemr::ApplySuggestion(&draft, *entity, s).ok()) ++accepted;
  }
  draft.set_name("patient");  // the grown draft, exportable as DDL
  std::printf("\ndraft after accepting %zu suggestions:\n%s\n", accepted,
              schemr::WriteDdl(draft).c_str());

  // (c) Record reuse: usage + a rating; community signal boosts the
  // schema in subsequent searches.
  (void)fixture->repository->RecordUsage(top.schema_id);
  (void)fixture->repository->AddRating(top.schema_id, {"designer", 5});
  (void)fixture->repository->AddComment(
      top.schema_id,
      {"designer", "reused as the basis for our new patient table", 1});

  schemr::SearchEngineOptions boosted;
  boosted.annotation_boost = 0.3;
  auto boosted_results =
      engine.SearchKeywords("patient height gender", boosted);
  if (boosted_results.ok() && !boosted_results->empty()) {
    std::printf("after recording reuse, '%s' ranks #1 of %zu for "
                "'patient height gender' (boosted score %.3f)\n",
                (*boosted_results)[0].name.c_str(), boosted_results->size(),
                (*boosted_results)[0].score);
  }
  return 0;
}
