// Load generator for the schemr search front end (EXPERIMENTS E18).
//
// Drives POST /search on a live `schemr serve --search-port` instance
// with the replay workload XML, in one of two modes:
//
//   * closed loop (--mode closed): N connections (--connections) issue
//     requests back to back — throughput is whatever the server sustains,
//     and latency is the classic closed-loop number (it cannot exceed
//     concurrency / service time).
//   * open loop (--mode open): arrivals are scheduled at a fixed rate
//     (--qps) regardless of completions, and each request's latency is
//     measured from its *scheduled* arrival, so queueing delay shows up
//     in the percentiles instead of being hidden by coordinated omission.
//
// Output is one flat JSON object on stdout (ParseBenchJson-compatible,
// same convention as /statusz and bench_gate): qps achieved, latency
// percentiles, and the ok / shed / error / net-error split. Exit status
// is 0 when at least one request succeeded, 1 otherwise.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/replay.h"
#include "service/http_server.h"
#include "service/schemr_service.h"
#include "util/timer.h"

namespace {

using schemr::HttpCall;
using schemr::HttpCallOptions;
using schemr::HttpReply;
using schemr::Result;
using schemr::SearchRequest;
using schemr::Timer;
using schemr::WorkloadEntry;

/// One backend endpoint. Multi-target runs (repeated --target) drive a
/// replica fleet directly, bypassing the coordinator, so per-replica
/// latency and error behaviour stays observable from the outside.
struct Target {
  std::string host = "127.0.0.1";
  int port = 0;
};

struct Args {
  std::vector<Target> targets;
  std::string workload_path;
  std::string mode = "closed";
  size_t connections = 4;
  double qps = 100.0;
  double duration_seconds = 5.0;
  double deadline_ms = 0.0;
  double timeout_seconds = 5.0;
  int retries = 0;  ///< extra attempts on connect-failure / 503+Retry-After
  uint64_t seed = 1;
};

struct Tally {
  std::mutex mutex;
  std::vector<double> latencies_ms;  ///< successful requests only
  uint64_t ok = 0;
  uint64_t shed = 0;         ///< 503 responses
  uint64_t http_error = 0;   ///< complete non-200/non-503 responses
  uint64_t net_error = 0;    ///< no complete response at all
  uint64_t attempts = 0;     ///< total attempts incl. retries
  uint64_t late = 0;         ///< open loop: arrivals the client ran behind on
  /// Echoed X-Schemr-Request-Id of the slowest 200 — the first id worth
  /// feeding to `schemr trace` after a run.
  double slowest_ms = 0.0;
  std::string slowest_request_id;
  /// Echoed ids of failed replies (bounded sample), joinable the same way.
  std::vector<std::string> error_request_ids;
};

constexpr size_t kMaxErrorIdSamples = 8;

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

void RecordReply(Tally* tally, const Result<HttpReply>& reply,
                 double latency_ms) {
  std::lock_guard<std::mutex> lock(tally->mutex);
  if (!reply.ok()) {
    ++tally->net_error;
    return;
  }
  tally->attempts += static_cast<uint64_t>(reply->attempts - 1);
  std::string request_id;
  if (const auto echoed = reply->headers.find("x-schemr-request-id");
      echoed != reply->headers.end()) {
    request_id = echoed->second;
  }
  if (reply->status == 200) {
    ++tally->ok;
    tally->latencies_ms.push_back(latency_ms);
    if (!request_id.empty() && latency_ms > tally->slowest_ms) {
      tally->slowest_ms = latency_ms;
      tally->slowest_request_id = request_id;
    }
  } else if (reply->status == 503) {
    ++tally->shed;
  } else {
    ++tally->http_error;
    if (!request_id.empty() &&
        tally->error_request_ids.size() < kMaxErrorIdSamples) {
      tally->error_request_ids.push_back(request_id);
    }
  }
}

/// Pre-renders each workload entry as the POST /search body once — the
/// load loop should measure the server, not XML serialization.
std::vector<std::string> RenderBodies(const std::vector<WorkloadEntry>& work) {
  std::vector<std::string> bodies;
  bodies.reserve(work.size());
  for (const WorkloadEntry& entry : work) {
    SearchRequest request;
    request.keywords = entry.keywords;
    request.fragment = entry.fragment;
    request.top_k = entry.top_k;
    request.candidate_pool = entry.candidate_pool;
    bodies.push_back(schemr::SearchRequestToXml(request));
  }
  return bodies;
}

HttpCallOptions CallOptions(const Args& args, uint64_t worker_seed) {
  HttpCallOptions options;
  options.method = "POST";
  options.attempt_timeout_seconds = args.timeout_seconds;
  options.max_attempts = 1 + std::max(0, args.retries);
  options.jitter_seed = worker_seed;
  if (args.deadline_ms > 0.0) {
    char value[32];
    std::snprintf(value, sizeof(value), "%.0f", args.deadline_ms);
    options.headers.emplace_back("X-Schemr-Deadline-Ms", value);
  }
  return options;
}

void RunClosed(const Args& args, const std::vector<std::string>& bodies,
               std::vector<Tally>* tallies) {
  std::atomic<uint64_t> next{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(args.connections);
  for (size_t w = 0; w < args.connections; ++w) {
    workers.emplace_back([&, w] {
      // Round-robin worker→target assignment: with T targets and N
      // connections, target t serves ceil/floor(N/T) closed loops.
      const Target& target = args.targets[w % args.targets.size()];
      Tally* tally = &(*tallies)[w % args.targets.size()];
      const HttpCallOptions options = CallOptions(args, args.seed + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t n = next.fetch_add(1, std::memory_order_relaxed);
        const std::string& body = bodies[n % bodies.size()];
        HttpCallOptions attempt = options;
        attempt.body = body;
        const Timer timer;
        Result<HttpReply> reply =
            HttpCall(target.host, target.port, "/search", attempt);
        RecordReply(tally, reply, timer.ElapsedMillis());
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(args.duration_seconds * 1e3)));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& worker : workers) worker.join();
}

void RunOpen(const Args& args, const std::vector<std::string>& bodies,
             std::vector<Tally>* tallies) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const uint64_t total = static_cast<uint64_t>(args.duration_seconds * args.qps);
  std::atomic<uint64_t> next_arrival{0};
  std::vector<std::thread> workers;
  workers.reserve(args.connections);
  for (size_t w = 0; w < args.connections; ++w) {
    workers.emplace_back([&, w] {
      const Target& target = args.targets[w % args.targets.size()];
      Tally* tally = &(*tallies)[w % args.targets.size()];
      const HttpCallOptions options = CallOptions(args, args.seed + w);
      for (;;) {
        const uint64_t n =
            next_arrival.fetch_add(1, std::memory_order_relaxed);
        if (n >= total) return;
        // The n-th request is due at start + n/qps, whether or not
        // earlier ones have finished — that is what makes the loop open.
        const Clock::time_point due =
            start + std::chrono::microseconds(
                        static_cast<int64_t>(1e6 * static_cast<double>(n) /
                                             args.qps));
        const Clock::time_point now = Clock::now();
        if (due > now) {
          std::this_thread::sleep_until(due);
        } else if (now - due > std::chrono::milliseconds(10)) {
          // All workers are busy past this arrival's slot: the client
          // itself is the bottleneck. Counted, because silently absorbing
          // it would undercount queueing exactly when it matters.
          std::lock_guard<std::mutex> lock(tally->mutex);
          ++tally->late;
        }
        const std::string& body = bodies[n % bodies.size()];
        HttpCallOptions attempt = options;
        attempt.body = body;
        Result<HttpReply> reply =
            HttpCall(target.host, target.port, "/search", attempt);
        // Latency from the scheduled arrival, not the actual send:
        // coordinated-omission-honest.
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - due)
                .count();
        RecordReply(tally, reply, latency_ms);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <host:port> <workload.xml|audit-dir> [options]\n"
      "  --target host:port   additional backend; workers are assigned\n"
      "                       round-robin across all targets and the JSON\n"
      "                       output gains a per-target breakdown\n"
      "  --mode closed|open   closed: back-to-back per connection (default)\n"
      "                       open: fixed-rate arrivals, latency from the\n"
      "                       scheduled arrival time\n"
      "  --connections N      worker connections (default 4)\n"
      "  --qps X              open-loop arrival rate (default 100)\n"
      "  --duration S         seconds to run (default 5)\n"
      "  --deadline-ms N      X-Schemr-Deadline-Ms header per request\n"
      "  --timeout S          per-attempt client timeout (default 5)\n"
      "  --retries N          extra attempts on connect-failure or\n"
      "                       503+Retry-After (default 0)\n"
      "  --seed S             jitter/backoff seed (default 1)\n",
      argv0);
  return 2;
}

bool ParseTarget(const std::string& spec, Target* out) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) return false;
  out->host = spec.substr(0, colon);
  out->port = std::atoi(spec.c_str() + colon + 1);
  return out->port > 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  Args args;
  Target first;
  if (!ParseTarget(argv[1], &first)) return Usage(argv[0]);
  args.targets.push_back(first);
  args.workload_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--target") {
      Target extra;
      if (!ParseTarget(value(), &extra)) return Usage(argv[0]);
      args.targets.push_back(extra);
    } else if (flag == "--mode") {
      args.mode = value();
    } else if (flag == "--connections") {
      args.connections = static_cast<size_t>(std::atoi(value()));
    } else if (flag == "--qps") {
      args.qps = std::atof(value());
    } else if (flag == "--duration") {
      args.duration_seconds = std::atof(value());
    } else if (flag == "--deadline-ms") {
      args.deadline_ms = std::atof(value());
    } else if (flag == "--timeout") {
      args.timeout_seconds = std::atof(value());
    } else if (flag == "--retries") {
      args.retries = std::atoi(value());
    } else if (flag == "--seed") {
      args.seed = static_cast<uint64_t>(std::atoll(value()));
    } else {
      return Usage(argv[0]);
    }
  }
  if (args.connections == 0 ||
      (args.mode != "closed" && args.mode != "open") ||
      (args.mode == "open" && args.qps <= 0.0)) {
    return Usage(argv[0]);
  }
  if (args.connections < args.targets.size()) {
    std::fprintf(stderr,
                 "loadgen: %zu connections < %zu targets; some targets "
                 "would receive no load\n",
                 args.connections, args.targets.size());
    return 2;
  }

  auto workload = schemr::LoadWorkload(args.workload_path);
  if (!workload.ok()) {
    std::fprintf(stderr, "loadgen: cannot load workload: %s\n",
                 workload.status().message().c_str());
    return 1;
  }
  const std::vector<std::string> bodies = RenderBodies(*workload);

  // One tally per target: workers write only their own slot, and the
  // aggregate is summed afterwards, so multi-target runs cost no extra
  // synchronization.
  std::vector<Tally> tallies(args.targets.size());
  const Timer wall;
  if (args.mode == "closed") {
    RunClosed(args, bodies, &tallies);
  } else {
    RunOpen(args, bodies, &tallies);
  }
  const double elapsed = wall.ElapsedSeconds();

  Tally total;
  std::vector<double> all_latencies;
  for (Tally& tally : tallies) {
    total.ok += tally.ok;
    total.shed += tally.shed;
    total.http_error += tally.http_error;
    total.net_error += tally.net_error;
    total.attempts += tally.attempts;
    total.late += tally.late;
    if (tally.slowest_ms > total.slowest_ms) {
      total.slowest_ms = tally.slowest_ms;
      total.slowest_request_id = tally.slowest_request_id;
    }
    for (const std::string& id : tally.error_request_ids) {
      if (total.error_request_ids.size() < kMaxErrorIdSamples) {
        total.error_request_ids.push_back(id);
      }
    }
    all_latencies.insert(all_latencies.end(), tally.latencies_ms.begin(),
                         tally.latencies_ms.end());
  }
  const uint64_t issued =
      total.ok + total.shed + total.http_error + total.net_error;
  const double qps = elapsed > 0.0
                         ? static_cast<double>(total.ok) / elapsed
                         : 0.0;
  std::printf(
      "{\"mode\": \"%s\", \"connections\": %zu, \"targets\": %zu, "
      "\"duration_seconds\": %.3f, "
      "\"requests\": %llu, \"ok\": %llu, \"shed\": %llu, "
      "\"http_errors\": %llu, \"net_errors\": %llu, \"retried\": %llu, "
      "\"late_arrivals\": %llu, "
      "\"qps\": %.2f, \"shed_rate\": %.4f, "
      "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f",
      args.mode.c_str(), args.connections, args.targets.size(), elapsed,
      static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.http_error),
      static_cast<unsigned long long>(total.net_error),
      static_cast<unsigned long long>(total.attempts),
      static_cast<unsigned long long>(total.late), qps,
      issued > 0 ? static_cast<double>(total.shed) /
                       static_cast<double>(issued)
                 : 0.0,
      Percentile(&all_latencies, 0.50), Percentile(&all_latencies, 0.95),
      Percentile(&all_latencies, 0.99));
  // Request-id tags (ids are [A-Za-z0-9-], safe to print unescaped):
  // the slowest success and a bounded sample of failures, ready to hand
  // to `schemr trace`.
  std::printf(", \"slowest_request_id\": \"%s\"",
              total.slowest_request_id.c_str());
  std::printf(", \"error_request_ids\": \"");
  for (size_t i = 0; i < total.error_request_ids.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : " ",
                total.error_request_ids[i].c_str());
  }
  std::printf("\"");
  // Per-target breakdown (flat keys, same convention as /statusz), only
  // when there is more than one target — the single-target JSON shape
  // stays exactly what existing consumers parse.
  if (args.targets.size() > 1) {
    for (size_t t = 0; t < args.targets.size(); ++t) {
      Tally& tally = tallies[t];
      const uint64_t target_issued =
          tally.ok + tally.shed + tally.http_error + tally.net_error;
      std::printf(
          ", \"target%zu.endpoint\": \"%s:%d\", "
          "\"target%zu.requests\": %llu, \"target%zu.ok\": %llu, "
          "\"target%zu.shed\": %llu, \"target%zu.http_errors\": %llu, "
          "\"target%zu.net_errors\": %llu, "
          "\"target%zu.p50_ms\": %.3f, \"target%zu.p99_ms\": %.3f",
          t, args.targets[t].host.c_str(), args.targets[t].port, t,
          static_cast<unsigned long long>(target_issued), t,
          static_cast<unsigned long long>(tally.ok), t,
          static_cast<unsigned long long>(tally.shed), t,
          static_cast<unsigned long long>(tally.http_error), t,
          static_cast<unsigned long long>(tally.net_error), t,
          Percentile(&tally.latencies_ms, 0.50), t,
          Percentile(&tally.latencies_ms, 0.99));
    }
  }
  std::printf("}\n");
  return total.ok > 0 ? 0 : 1;
}
