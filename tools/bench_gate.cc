// bench_gate: CI comparator for BENCH_replay.json reports.
//
//   bench_gate <baseline.json> <current.json>
//              [--latency-tolerance X]    allowed fractional regression
//                                         per latency percentile (0.10)
//              [--scale-baseline S]       multiply baseline latencies by S
//                                         before comparing (<1 tightens —
//                                         the CI negative test; >1 loosens
//                                         for cross-machine baselines)
//              [--max-digest-mismatches N]
//              [--qps-tolerance X]        allowed fractional throughput
//                                         drop vs baseline qps (0.75)
//
// Exit 0 when the current report is within tolerance of the baseline,
// 1 on any violation (each printed on stderr), 2 on usage/parse errors.
// Digest mismatches are the hard failure: latency shifts with hardware,
// ranking determinism must not.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/replay.h"

namespace schemr {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_gate <baseline.json> <current.json>\n"
               "  [--latency-tolerance X] [--scale-baseline S]"
               " [--max-digest-mismatches N] [--qps-tolerance X]\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string baseline_path = argv[1];
  const std::string current_path = argv[2];
  GateOptions options;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--latency-tolerance" && i + 1 < argc) {
      options.latency_tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--scale-baseline" && i + 1 < argc) {
      options.baseline_scale = std::strtod(argv[++i], nullptr);
    } else if (arg == "--max-digest-mismatches" && i + 1 < argc) {
      options.max_digest_mismatches = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--qps-tolerance" && i + 1 < argc) {
      options.qps_tolerance = std::strtod(argv[++i], nullptr);
    } else {
      return Usage();
    }
  }

  auto baseline = ReadFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_gate: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto current = ReadFile(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "bench_gate: %s\n",
                 current.status().ToString().c_str());
    return 2;
  }
  auto gate = CompareBenchReports(*baseline, *current, options);
  if (!gate.ok()) {
    std::fprintf(stderr, "bench_gate: %s\n", gate.status().ToString().c_str());
    return 2;
  }
  for (const std::string& violation : gate->violations) {
    std::fprintf(stderr, "bench_gate: %s\n", violation.c_str());
  }
  std::fprintf(stderr, "bench_gate: %s (baseline %s, tolerance +%.0f%%, "
               "scale %.2f)\n",
               gate->pass ? "PASS" : "FAIL", baseline_path.c_str(),
               options.latency_tolerance * 100.0, options.baseline_scale);
  return gate->pass ? 0 : 1;
}

}  // namespace
}  // namespace schemr

int main(int argc, char** argv) { return schemr::Run(argc, argv); }
