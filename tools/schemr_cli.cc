// schemr: command-line interface to a Schemr repository.
//
// The paper positions Schemr as deployable "as a standalone tool for
// organizations to search and share schemas". This CLI is that
// deployment: a persistent repository directory, DDL/XSD import/export,
// the offline indexer with a saved segment, the three-phase search, the
// visualization endpoints, and the collaboration commands.
//
//   schemr import <repo> <file.sql|file.xsd> [name]
//   schemr list <repo>
//   schemr show <repo> <id>
//   schemr index <repo>
//   schemr search <repo> <keywords...> [--fragment <file>] [--top N]
//                 [--offset N] [--boost] [--explain]
//   schemr stats <repo> [keywords...] [--json]
//   schemr viz <repo> <id> [--layout tree|radial] [--format graphml|svg|dot]
//   schemr export <repo> <id> [--format ddl|xsd]
//   schemr comment <repo> <id> <author> <text...>
//   schemr rate <repo> <id> <author> <stars>
//   schemr comments <repo> <id>
//
// `--explain` prints the per-phase span breakdown after the results table;
// `stats` runs a sample search workload and dumps the metrics registry
// (Prometheus text format, or JSON with --json).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/query_parser.h"
#include "index/indexer.h"
#include "obs/log_bridge.h"
#include "parse/ddl_parser.h"
#include "parse/ddl_writer.h"
#include "parse/xsd_importer.h"
#include "parse/xsd_writer.h"
#include "service/schemr_service.h"
#include "util/string_util.h"
#include "viz/dot_writer.h"

namespace schemr {
namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "schemr: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: schemr <command> <repo_dir> [args]\n"
      "  import <repo> <file.sql|file.xsd> [name]   add a schema\n"
      "  list <repo>                                list schemas\n"
      "  show <repo> <id>                           print one schema\n"
      "  index <repo>                               (re)build the segment\n"
      "  search <repo> <keywords...> [--fragment f] [--top N] [--offset N]"
      " [--boost] [--explain]\n"
      "  stats <repo> [keywords...] [--json]           run a sample search,"
      " dump metrics\n"
      "  viz <repo> <id> [--layout tree|radial] [--format graphml|svg|dot]\n"
      "  export <repo> <id> [--format ddl|xsd]\n"
      "  comment <repo> <id> <author> <text...>     leave a comment\n"
      "  rate <repo> <id> <author> <stars>          rate 1..5\n"
      "  comments <repo> <id>                       show comments/ratings\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string SegmentPath(const std::string& repo_dir) {
  return repo_dir + "/segment.idx";
}

/// Loads the saved index segment if present, otherwise rebuilds from the
/// repository (and saves, so the next invocation is fast).
Result<Indexer> LoadOrBuildIndex(const SchemaRepository& repo,
                                 const std::string& repo_dir) {
  Indexer indexer;
  if (indexer.LoadFrom(SegmentPath(repo_dir)).ok()) {
    // Catch up with any imports since the segment was written.
    SCHEMR_RETURN_IF_ERROR(indexer.Refresh(repo).status());
    return indexer;
  }
  SCHEMR_RETURN_IF_ERROR(indexer.RebuildFromRepository(repo).status());
  (void)indexer.Save(SegmentPath(repo_dir));
  return indexer;
}

int CmdImport(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string path = argv[0];
  auto contents = ReadFile(path);
  if (!contents.ok()) return Fail(contents.status(), "reading input");
  // Name defaults to the file stem.
  std::string name = argc >= 2 ? argv[1] : path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);

  Result<Schema> schema = EndsWith(path, ".xsd")
                              ? ParseXsd(*contents, name)
                              : ParseDdl(*contents, name);
  if (!schema.ok()) return Fail(schema.status(), "parsing schema");
  auto id = repo->Insert(std::move(schema).value());
  if (!id.ok()) return Fail(id.status(), "inserting schema");
  std::printf("imported '%s' as schema %llu\n", name.c_str(),
              static_cast<unsigned long long>(*id));
  return 0;
}

int CmdList(SchemaRepository* repo) {
  auto summaries = repo->ListAll();
  if (!summaries.ok()) return Fail(summaries.status(), "listing");
  std::printf("%-6s %-28s %-9s %-11s %s\n", "id", "name", "entities",
              "attributes", "description");
  for (const SchemaSummary& s : *summaries) {
    std::printf("%-6llu %-28s %-9zu %-11zu %s\n",
                static_cast<unsigned long long>(s.id), s.name.c_str(),
                s.num_entities, s.num_attributes, s.description.c_str());
  }
  return 0;
}

int CmdShow(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 1) return Usage();
  auto schema = repo->Get(std::strtoull(argv[0], nullptr, 10));
  if (!schema.ok()) return Fail(schema.status(), "fetching schema");
  std::printf("%s", schema->ToString().c_str());
  return 0;
}

int CmdIndex(SchemaRepository* repo, const std::string& repo_dir) {
  Indexer indexer;
  auto stats = indexer.RebuildFromRepository(*repo);
  if (!stats.ok()) return Fail(stats.status(), "indexing");
  Status saved = indexer.Save(SegmentPath(repo_dir));
  if (!saved.ok()) return Fail(saved, "saving segment");
  std::printf("indexed %zu schemas (%zu terms) in %.1f ms → %s\n",
              stats->schemas_indexed, indexer.index().NumTerms(),
              stats->elapsed_seconds * 1e3, SegmentPath(repo_dir).c_str());
  return 0;
}

int CmdSearch(SchemaRepository* repo, const std::string& repo_dir, int argc,
              char** argv) {
  std::string keywords;
  std::string fragment;
  bool explain = false;
  SearchEngineOptions options;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fragment" && i + 1 < argc) {
      auto contents = ReadFile(argv[++i]);
      if (!contents.ok()) return Fail(contents.status(), "reading fragment");
      fragment = *contents;
    } else if (arg == "--top" && i + 1 < argc) {
      options.top_k = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--offset" && i + 1 < argc) {
      options.offset = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--boost") {
      options.annotation_boost = 0.3;
    } else if (arg == "--explain") {
      explain = true;
    } else {
      if (!keywords.empty()) keywords += ' ';
      keywords += arg;
    }
  }
  auto indexer = LoadOrBuildIndex(*repo, repo_dir);
  if (!indexer.ok()) return Fail(indexer.status(), "loading index");
  SearchEngine engine(repo, &indexer->index());
  auto query = ParseQuery(keywords, fragment);
  if (!query.ok()) return Fail(query.status(), "parsing query");
  SearchTrace trace;
  if (explain) options.trace = &trace;
  auto results = engine.Search(*query, options);
  if (!results.ok()) return Fail(results.status(), "searching");

  std::printf("%-4s %-6s %-28s %-7s %-9s %-8s %-9s %-10s\n", "#", "id",
              "name", "score", "tightness", "matches", "entities",
              "attributes");
  size_t rank = options.offset + 1;
  for (const SearchResult& r : *results) {
    std::printf("%-4zu %-6llu %-28s %-7.3f %-9.3f %-8zu %-9zu %-10zu\n",
                rank++, static_cast<unsigned long long>(r.schema_id),
                r.name.c_str(), r.score, r.tightness, r.num_matches,
                r.num_entities, r.num_attributes);
  }
  if (results->empty()) std::printf("(no results)\n");
  if (explain) {
    std::printf("\nexplain:\n%s", trace.ToString().c_str());
  }
  return 0;
}

/// Runs a sample search workload (given keywords, or the names of the
/// first few schemas when none are given), then dumps the process metrics
/// registry so phase latencies and index/store counters are non-zero.
int CmdStats(SchemaRepository* repo, const std::string& repo_dir, int argc,
             char** argv) {
  std::string keywords;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else {
      if (!keywords.empty()) keywords += ' ';
      keywords += arg;
    }
  }
  auto indexer = LoadOrBuildIndex(*repo, repo_dir);
  if (!indexer.ok()) return Fail(indexer.status(), "loading index");
  SchemrService service(repo, &indexer->index());

  if (keywords.empty()) {
    auto summaries = repo->ListAll();
    if (!summaries.ok()) return Fail(summaries.status(), "listing");
    size_t taken = 0;
    for (const SchemaSummary& s : *summaries) {
      if (taken++ == 3) break;
      if (!keywords.empty()) keywords += ' ';
      keywords += s.name;
    }
  }
  if (!keywords.empty()) {
    SearchRequest request;
    request.keywords = keywords;
    auto results = service.Search(request);
    if (!results.ok()) return Fail(results.status(), "searching");
    std::fprintf(stderr, "# sample search \"%s\": %zu results\n",
                 keywords.c_str(), results->size());
  }
  (void)repo->GetStoreStats();  // refresh schemr_store_* gauges

  std::fputs(json ? service.MetricsJson().c_str()
                  : service.MetricsText().c_str(),
             stdout);
  return 0;
}

int CmdViz(SchemaRepository* repo, const std::string& repo_dir, int argc,
           char** argv) {
  if (argc < 1) return Usage();
  VisualizationRequest request;
  request.schema_id = std::strtoull(argv[0], nullptr, 10);
  std::string format = "graphml";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--layout" && i + 1 < argc) {
      request.layout = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    }
  }
  auto indexer = LoadOrBuildIndex(*repo, repo_dir);
  if (!indexer.ok()) return Fail(indexer.status(), "loading index");
  SchemrService service(repo, &indexer->index());

  Result<std::string> rendered = Status::InvalidArgument("unknown format");
  if (format == "graphml") {
    rendered = service.GetSchemaGraphMl(request);
  } else if (format == "svg") {
    rendered = service.GetSchemaSvg(request);
  } else if (format == "dot") {
    auto schema = repo->Get(request.schema_id);
    if (!schema.ok()) return Fail(schema.status(), "fetching schema");
    rendered = WriteDot(BuildGraphView(*schema));
  }
  if (!rendered.ok()) return Fail(rendered.status(), "rendering");
  std::fputs(rendered->c_str(), stdout);
  return 0;
}

int CmdExport(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 1) return Usage();
  auto schema = repo->Get(std::strtoull(argv[0], nullptr, 10));
  if (!schema.ok()) return Fail(schema.status(), "fetching schema");
  std::string format = "ddl";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--format" && i + 1 < argc) {
      format = argv[++i];
    }
  }
  if (format == "xsd") {
    std::fputs(WriteXsd(*schema).c_str(), stdout);
  } else {
    std::fputs(WriteDdl(*schema).c_str(), stdout);
  }
  return 0;
}

int CmdComment(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 3) return Usage();
  SchemaId id = std::strtoull(argv[0], nullptr, 10);
  std::string text;
  for (int i = 2; i < argc; ++i) {
    if (!text.empty()) text += ' ';
    text += argv[i];
  }
  Status st = repo->AddComment(id, {argv[1], text, 0});
  if (!st.ok()) return Fail(st, "adding comment");
  (void)repo->RecordUsage(id);
  std::printf("comment added to schema %llu\n",
              static_cast<unsigned long long>(id));
  return 0;
}

int CmdRate(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 3) return Usage();
  SchemaId id = std::strtoull(argv[0], nullptr, 10);
  Status st = repo->AddRating(
      id, {argv[1], static_cast<uint8_t>(std::strtoul(argv[2], nullptr, 10))});
  if (!st.ok()) return Fail(st, "rating");
  auto summary = repo->GetRatingSummary(id);
  std::printf("schema %llu now rated %.1f (%zu ratings)\n",
              static_cast<unsigned long long>(id), summary->average,
              summary->num_ratings);
  return 0;
}

int CmdComments(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 1) return Usage();
  SchemaId id = std::strtoull(argv[0], nullptr, 10);
  auto summary = repo->GetRatingSummary(id);
  auto usage = repo->GetUsageCount(id);
  if (summary.ok() && usage.ok()) {
    std::printf("rating: %.1f (%zu ratings), used %llu times\n",
                summary->average, summary->num_ratings,
                static_cast<unsigned long long>(*usage));
  }
  auto comments = repo->GetComments(id);
  if (!comments.ok()) return Fail(comments.status(), "fetching comments");
  for (const SchemaComment& c : *comments) {
    std::printf("  [%s] %s\n", c.author.c_str(), c.text.c_str());
  }
  if (comments->empty()) std::printf("  (no comments)\n");
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  // Library warnings surface in the `stats` output too.
  InstallMetricsLogSink();
  std::string command = argv[1];
  std::string repo_dir = argv[2];
  auto repo = SchemaRepository::Open(repo_dir);
  if (!repo.ok()) return Fail(repo.status(), "opening repository");
  SchemaRepository* r = repo->get();
  int rest_argc = argc - 3;
  char** rest = argv + 3;

  if (command == "import") return CmdImport(r, rest_argc, rest);
  if (command == "list") return CmdList(r);
  if (command == "show") return CmdShow(r, rest_argc, rest);
  if (command == "index") return CmdIndex(r, repo_dir);
  if (command == "search") return CmdSearch(r, repo_dir, rest_argc, rest);
  if (command == "stats") return CmdStats(r, repo_dir, rest_argc, rest);
  if (command == "viz") return CmdViz(r, repo_dir, rest_argc, rest);
  if (command == "export") return CmdExport(r, rest_argc, rest);
  if (command == "comment") return CmdComment(r, rest_argc, rest);
  if (command == "rate") return CmdRate(r, rest_argc, rest);
  if (command == "comments") return CmdComments(r, rest_argc, rest);
  return Usage();
}

}  // namespace
}  // namespace schemr

int main(int argc, char** argv) { return schemr::Run(argc, argv); }
