// schemr: command-line interface to a Schemr repository.
//
// The paper positions Schemr as deployable "as a standalone tool for
// organizations to search and share schemas". This CLI is that
// deployment: a persistent repository directory, DDL/XSD import/export,
// the offline indexer with a saved segment, the three-phase search, the
// visualization endpoints, and the collaboration commands.
//
//   schemr import <repo> <file.sql|file.xsd> [name]
//   schemr list <repo>
//   schemr show <repo> <id>
//   schemr index <repo>
//   schemr search <repo> <keywords...> [--fragment <file>] [--top N]
//                 [--offset N] [--boost] [--explain]
//   schemr stats <repo> [keywords...] [--json]
//   schemr viz <repo> <id> [--layout tree|radial] [--format graphml|svg|dot]
//   schemr export <repo> <id> [--format ddl|xsd]
//   schemr comment <repo> <id> <author> <text...>
//   schemr rate <repo> <id> <author> <stars>
//   schemr comments <repo> <id>
//
// `--explain` prints the per-phase span breakdown after the results table;
// `stats` runs a sample search workload and dumps the metrics registry
// (Prometheus text format, or JSON with --json).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/query_parser.h"
#include "core/result_cache.h"
#include "core/serving_corpus.h"
#include "corpus/query_workload.h"
#include "corpus/schema_generator.h"
#include "index/indexer.h"
#include "obs/audit_log.h"
#include "obs/exposition.h"
#include "obs/log_bridge.h"
#include "obs/metrics.h"
#include "obs/replay.h"
#include "service/fleet.h"
#include "service/http_introspection.h"
#include "service/request_id.h"
#include "parse/ddl_parser.h"
#include "parse/ddl_writer.h"
#include "parse/xsd_importer.h"
#include "parse/xsd_writer.h"
#include "service/schemr_service.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "viz/dot_writer.h"

namespace schemr {
namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "schemr: %s: %s\n", what, status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: schemr <command> <repo_dir> [args]\n"
      "  import <repo> <file.sql|file.xsd> [name]   add a schema\n"
      "  list <repo>                                list schemas\n"
      "  show <repo> <id>                           print one schema\n"
      "  index <repo>                               (re)build the segment\n"
      "  search <repo> <keywords...> [--fragment f] [--top N] [--offset N]"
      " [--boost] [--explain]\n"
      "         [--prefilter T]   T in (0,1): approximate signature screen\n"
      "  stats <repo> [keywords...] [--json]           run a sample search,"
      " dump metrics\n"
      "  viz <repo> <id> [--layout tree|radial] [--format graphml|svg|dot]\n"
      "  export <repo> <id> [--format ddl|xsd]\n"
      "  comment <repo> <id> <author> <text...>     leave a comment\n"
      "  rate <repo> <id> <author> <stars>          rate 1..5\n"
      "  comments <repo> <id>                       show comments/ratings\n"
      "  audit <repo> tail|top|slow [--limit N] [--follow] [--poll-ms N]"
      " [--max-polls N]\n"
      "         inspect the query audit log (--follow tails incrementally)\n"
      "  serve <repo> [--port N] [--search-port N] [--workers N] [--cache N]"
      " [--duration S] [--warmup N]\n"
      "         serve with the HTTP introspection plane (and, with\n"
      "         --search-port, the POST /search front end) enabled\n"
      "  fleet <repo> [--replicas N] [--port N] [--workers N]"
      " [--duration S] [--no-hedge] [--sample-every N]\n"
      "         serve via N supervised replica processes behind the\n"
      "         failover coordinator (SIGHUP = rolling restart)\n"
      "  top <host:port> [--interval S] [--iterations N]   live /statusz"
      " dashboard\n"
      "  trace <host:port> <request-id>             stitch one request's\n"
      "         coordinator hop journal and replica traces into a timeline\n"
      "  checkmetrics <file|->                      validate Prometheus"
      " exposition text\n"
      "  checkjson <file|-> [--require key]...      validate flat JSON"
      " (e.g. /statusz)\n"
      "  replay <workload> --repo <dir> [--threads N] [--repeat N]"
      " [--engine-threads N] [--prefilter T]\n"
      "         [--out f.json] [--baseline f.json] [--tolerance X]"
      " [--qps-tolerance X]\n"
      "         [--record f.xml]                        replay a workload\n"
      "  seed <repo> [--schemas N] [--seed S] [--workload f.xml]"
      " [--queries M]\n"
      "         generate a synthetic corpus (and optional workload)\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string SegmentPath(const std::string& repo_dir) {
  return repo_dir + "/segment.idx";
}

std::string AuditDir(const std::string& repo_dir) {
  return repo_dir + "/audit";
}

std::string SignaturePath(const std::string& repo_dir) {
  return repo_dir + "/signatures.sig";
}

/// Builds the match-feature catalog over the repository's current view,
/// adopting signatures persisted at SignaturePath() when they still match
/// this corpus, and writing back whatever had to be (re)built so the next
/// invocation loads instead of computing. The catalog is advisory — any
/// failure here just means searches take the legacy per-candidate path —
/// so errors surface through `stats`, not a Status.
std::shared_ptr<const MatchFeatureCatalog> LoadOrBuildCatalog(
    const SchemaRepository& repo, const std::string& repo_dir,
    CatalogBuildStats* stats) {
  CatalogBuilder builder;
  std::shared_ptr<const RepositoryView> view = repo.View();
  Status added = view->ForEach([&](const Schema& schema) {
    builder.Add(schema);
    return Status::OK();
  });
  if (!added.ok()) return nullptr;  // undecodable view: legacy path only
  StoredSignatures stored;
  bool have_stored = false;
  if (auto loaded = LoadSignatures(SignaturePath(repo_dir)); loaded.ok()) {
    stored = std::move(*loaded);
    have_stored = true;
  }
  std::shared_ptr<const MatchFeatureCatalog> catalog =
      builder.Build(have_stored ? &stored : nullptr, stats);
  if (stats == nullptr || stats->signatures_built > 0 ||
      stats->corrupt_records > 0) {
    Status saved = SaveSignatures(SignaturePath(repo_dir), *catalog);
    (void)saved;
  }
  return catalog;
}

/// Pins one snapshot pairing this index with this schema view (and the
/// match-feature catalog, when one was built): the unit every CLI search
/// and replay runs against.
std::shared_ptr<const CorpusSnapshot> PinSnapshot(
    const SchemaRepository& repo, Indexer&& indexer,
    std::shared_ptr<const MatchFeatureCatalog> catalog) {
  auto holder = std::make_shared<Indexer>(std::move(indexer));
  auto snapshot = std::make_shared<CorpusSnapshot>();
  snapshot->version = repo.version();
  snapshot->index =
      std::shared_ptr<const InvertedIndex>(holder, &holder->index());
  snapshot->schemas = repo.View();
  snapshot->match_features = std::move(catalog);
  return snapshot;
}

/// How LoadOrBuildIndex got its index: opening the persisted segment
/// (cheap; Refresh catches up on imports) or a full rebuild. The two
/// paths are timed separately so `stats` can report which one a
/// deployment is actually paying for.
struct IndexLoadTiming {
  bool rebuilt = false;
  double open_seconds = 0.0;     ///< LoadFrom + Refresh (segment path)
  double rebuild_seconds = 0.0;  ///< RebuildFromRepository + Save
};

/// Loads the saved index segment if present, otherwise rebuilds from the
/// repository (and saves, so the next invocation is fast).
Result<Indexer> LoadOrBuildIndex(const SchemaRepository& repo,
                                 const std::string& repo_dir,
                                 IndexLoadTiming* timing = nullptr) {
  Indexer indexer;
  Timer timer;
  if (indexer.LoadFrom(SegmentPath(repo_dir)).ok()) {
    // Catch up with any imports since the segment was written.
    SCHEMR_RETURN_IF_ERROR(indexer.Refresh(repo).status());
    if (timing != nullptr) timing->open_seconds = timer.ElapsedSeconds();
    return indexer;
  }
  timer.Reset();
  SCHEMR_RETURN_IF_ERROR(indexer.RebuildFromRepository(repo).status());
  (void)indexer.Save(SegmentPath(repo_dir));
  if (timing != nullptr) {
    timing->rebuilt = true;
    timing->rebuild_seconds = timer.ElapsedSeconds();
  }
  return indexer;
}

int CmdImport(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 1) return Usage();
  std::string path = argv[0];
  auto contents = ReadFile(path);
  if (!contents.ok()) return Fail(contents.status(), "reading input");
  // Name defaults to the file stem.
  std::string name = argc >= 2 ? argv[1] : path;
  size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);

  Result<Schema> schema = EndsWith(path, ".xsd")
                              ? ParseXsd(*contents, name)
                              : ParseDdl(*contents, name);
  if (!schema.ok()) return Fail(schema.status(), "parsing schema");
  auto id = repo->Insert(std::move(schema).value());
  if (!id.ok()) return Fail(id.status(), "inserting schema");
  std::printf("imported '%s' as schema %llu\n", name.c_str(),
              static_cast<unsigned long long>(*id));
  return 0;
}

int CmdList(SchemaRepository* repo) {
  auto summaries = repo->ListAll();
  if (!summaries.ok()) return Fail(summaries.status(), "listing");
  std::printf("%-6s %-28s %-9s %-11s %s\n", "id", "name", "entities",
              "attributes", "description");
  for (const SchemaSummary& s : *summaries) {
    std::printf("%-6llu %-28s %-9zu %-11zu %s\n",
                static_cast<unsigned long long>(s.id), s.name.c_str(),
                s.num_entities, s.num_attributes, s.description.c_str());
  }
  return 0;
}

int CmdShow(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 1) return Usage();
  auto schema = repo->Get(std::strtoull(argv[0], nullptr, 10));
  if (!schema.ok()) return Fail(schema.status(), "fetching schema");
  std::printf("%s", schema->ToString().c_str());
  return 0;
}

int CmdIndex(SchemaRepository* repo, const std::string& repo_dir) {
  Indexer indexer;
  auto stats = indexer.RebuildFromRepository(*repo);
  if (!stats.ok()) return Fail(stats.status(), "indexing");
  Status saved = indexer.Save(SegmentPath(repo_dir));
  if (!saved.ok()) return Fail(saved, "saving segment");
  std::printf("indexed %zu schemas (%zu terms) in %.1f ms → %s\n",
              stats->schemas_indexed, indexer.index().NumTerms(),
              stats->elapsed_seconds * 1e3, SegmentPath(repo_dir).c_str());
  return 0;
}

int CmdSearch(SchemaRepository* repo, const std::string& repo_dir, int argc,
              char** argv) {
  std::string keywords;
  std::string fragment;
  bool explain = false;
  double prefilter = 0.0;
  SearchEngineOptions options;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fragment" && i + 1 < argc) {
      auto contents = ReadFile(argv[++i]);
      if (!contents.ok()) return Fail(contents.status(), "reading fragment");
      fragment = *contents;
    } else if (arg == "--top" && i + 1 < argc) {
      options.top_k = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--offset" && i + 1 < argc) {
      options.offset = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--boost") {
      options.annotation_boost = 0.3;
    } else if (arg == "--prefilter" && i + 1 < argc) {
      prefilter = std::strtod(argv[++i], nullptr);
    } else if (arg == "--explain") {
      explain = true;
    } else {
      if (!keywords.empty()) keywords += ' ';
      keywords += arg;
    }
  }
  auto indexer = LoadOrBuildIndex(*repo, repo_dir);
  if (!indexer.ok()) return Fail(indexer.status(), "loading index");
  auto catalog = LoadOrBuildCatalog(*repo, repo_dir, nullptr);
  SchemrService service(repo,
                        PinSnapshot(*repo, std::move(*indexer), catalog));
  // Every CLI search lands in the repo's audit log (inspect with
  // `schemr audit`); failure to open it is not search-fatal.
  (void)service.EnableAudit(AuditDir(repo_dir));
  SearchTrace trace;
  if (explain) options.trace = &trace;
  SearchRequest request;
  request.keywords = keywords;
  request.fragment = fragment;
  request.prefilter = prefilter;
  request.top_k = options.top_k;
  request.candidate_pool = std::max<size_t>(options.top_k + options.offset,
                                            SearchRequest{}.candidate_pool);
  auto results = service.Search(request, options);
  if (!results.ok()) return Fail(results.status(), "searching");

  std::printf("%-4s %-6s %-28s %-7s %-9s %-8s %-9s %-10s\n", "#", "id",
              "name", "score", "tightness", "matches", "entities",
              "attributes");
  size_t rank = options.offset + 1;
  for (const SearchResult& r : *results) {
    std::printf("%-4zu %-6llu %-28s %-7.3f %-9.3f %-8zu %-9zu %-10zu\n",
                rank++, static_cast<unsigned long long>(r.schema_id),
                r.name.c_str(), r.score, r.tightness, r.num_matches,
                r.num_entities, r.num_attributes);
  }
  if (results->empty()) std::printf("(no results)\n");
  if (explain) {
    std::printf("\nexplain:\n%s", trace.ToString().c_str());
  }
  return 0;
}

/// Runs a sample search workload (given keywords, or the names of the
/// first few schemas when none are given), then dumps the process metrics
/// registry so phase latencies and index/store counters are non-zero.
int CmdStats(SchemaRepository* repo, const std::string& repo_dir, int argc,
             char** argv) {
  std::string keywords;
  bool json = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else {
      if (!keywords.empty()) keywords += ' ';
      keywords += arg;
    }
  }
  IndexLoadTiming timing;
  auto indexer = LoadOrBuildIndex(*repo, repo_dir, &timing);
  if (!indexer.ok()) return Fail(indexer.status(), "loading index");
  // Open-vs-rebuild cost split, as gauges (scraped) and on stderr: the
  // segment path should be milliseconds; paying a rebuild on every stats
  // call means the persisted segment is missing or stale.
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry
      .GetGauge("schemr_index_open_seconds",
                "Time spent opening the persisted index segment (0 when "
                "the index was rebuilt instead).")
      ->Set(timing.open_seconds);
  registry
      .GetGauge("schemr_index_rebuild_seconds",
                "Time spent rebuilding the index from the repository (0 "
                "when the persisted segment was used).")
      ->Set(timing.rebuild_seconds);
  if (timing.rebuilt) {
    std::fprintf(stderr, "# index: no usable segment, rebuilt in %.1f ms\n",
                 timing.rebuild_seconds * 1e3);
  } else {
    std::fprintf(stderr, "# index: opened persisted segment in %.1f ms\n",
                 timing.open_seconds * 1e3);
  }
  // Signature catalog build/load cost, reported right next to the
  // index-open line: the two together are the full cost of standing up a
  // searchable snapshot. Loaded signatures should dominate after the
  // first run; paying builds every time means signatures.sig is missing
  // or the corpus churned.
  CatalogBuildStats catalog_stats;
  auto catalog = LoadOrBuildCatalog(*repo, repo_dir, &catalog_stats);
  registry
      .GetGauge("schemr_signature_catalog_seconds",
                "Time spent building the match-feature catalog (features "
                "+ signatures) for the last CLI invocation.")
      ->Set(catalog_stats.seconds);
  std::fprintf(stderr,
               "# signatures: %zu schemas (%zu loaded, %zu built, %zu "
               "corrupt) in %.1f ms\n",
               catalog_stats.schemas, catalog_stats.signatures_loaded,
               catalog_stats.signatures_built, catalog_stats.corrupt_records,
               catalog_stats.seconds * 1e3);
  SchemrService service(repo,
                        PinSnapshot(*repo, std::move(*indexer), catalog));
  (void)service.EnableAudit(AuditDir(repo_dir));
  // A small result cache so the derived cache gauges (hit ratio,
  // entries, capacity) appear in the dump. The pinned snapshot gives the
  // cache a stable corpus version to key on, so the sample search below
  // actually exercises it.
  service.EnableResultCache(64);

  if (keywords.empty()) {
    auto summaries = repo->ListAll();
    if (!summaries.ok()) return Fail(summaries.status(), "listing");
    size_t taken = 0;
    for (const SchemaSummary& s : *summaries) {
      if (taken++ == 3) break;
      if (!keywords.empty()) keywords += ' ';
      keywords += s.name;
    }
  }
  if (!keywords.empty()) {
    SearchRequest request;
    request.keywords = keywords;
    auto results = service.Search(request);
    if (!results.ok()) return Fail(results.status(), "searching");
    std::fprintf(stderr, "# sample search \"%s\": %zu results\n",
                 keywords.c_str(), results->size());
  }
  (void)repo->GetStoreStats();  // refresh schemr_store_* gauges
  if (std::shared_ptr<ResultCache> cache = service.engine().result_cache();
      cache != nullptr) {
    const ResultCacheStats cache_stats = cache->Stats();
    const uint64_t lookups = cache_stats.hits + cache_stats.misses;
    std::fprintf(stderr,
                 "# result cache: %zu/%zu entries, %llu hits / %llu lookups"
                 " (ratio %.2f)\n",
                 cache_stats.entries, cache->capacity(),
                 static_cast<unsigned long long>(cache_stats.hits),
                 static_cast<unsigned long long>(lookups),
                 lookups == 0 ? 0.0
                              : static_cast<double>(cache_stats.hits) /
                                    static_cast<double>(lookups));
  }

  std::fputs(json ? service.MetricsJson().c_str()
                  : service.MetricsText().c_str(),
             stdout);
  return 0;
}

int CmdViz(SchemaRepository* repo, const std::string& repo_dir, int argc,
           char** argv) {
  if (argc < 1) return Usage();
  VisualizationRequest request;
  request.schema_id = std::strtoull(argv[0], nullptr, 10);
  std::string format = "graphml";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--layout" && i + 1 < argc) {
      request.layout = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    }
  }
  auto indexer = LoadOrBuildIndex(*repo, repo_dir);
  if (!indexer.ok()) return Fail(indexer.status(), "loading index");
  SchemrService service(repo, &indexer->index());

  Result<std::string> rendered = Status::InvalidArgument("unknown format");
  if (format == "graphml") {
    rendered = service.GetSchemaGraphMl(request);
  } else if (format == "svg") {
    rendered = service.GetSchemaSvg(request);
  } else if (format == "dot") {
    auto schema = repo->Get(request.schema_id);
    if (!schema.ok()) return Fail(schema.status(), "fetching schema");
    rendered = WriteDot(BuildGraphView(*schema));
  }
  if (!rendered.ok()) return Fail(rendered.status(), "rendering");
  std::fputs(rendered->c_str(), stdout);
  return 0;
}

int CmdExport(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 1) return Usage();
  auto schema = repo->Get(std::strtoull(argv[0], nullptr, 10));
  if (!schema.ok()) return Fail(schema.status(), "fetching schema");
  std::string format = "ddl";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--format" && i + 1 < argc) {
      format = argv[++i];
    }
  }
  if (format == "xsd") {
    std::fputs(WriteXsd(*schema).c_str(), stdout);
  } else {
    std::fputs(WriteDdl(*schema).c_str(), stdout);
  }
  return 0;
}

int CmdComment(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 3) return Usage();
  SchemaId id = std::strtoull(argv[0], nullptr, 10);
  std::string text;
  for (int i = 2; i < argc; ++i) {
    if (!text.empty()) text += ' ';
    text += argv[i];
  }
  Status st = repo->AddComment(id, {argv[1], text, 0});
  if (!st.ok()) return Fail(st, "adding comment");
  (void)repo->RecordUsage(id);
  std::printf("comment added to schema %llu\n",
              static_cast<unsigned long long>(id));
  return 0;
}

int CmdRate(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 3) return Usage();
  SchemaId id = std::strtoull(argv[0], nullptr, 10);
  Status st = repo->AddRating(
      id, {argv[1], static_cast<uint8_t>(std::strtoul(argv[2], nullptr, 10))});
  if (!st.ok()) return Fail(st, "rating");
  auto summary = repo->GetRatingSummary(id);
  std::printf("schema %llu now rated %.1f (%zu ratings)\n",
              static_cast<unsigned long long>(id), summary->average,
              summary->num_ratings);
  return 0;
}

int CmdComments(SchemaRepository* repo, int argc, char** argv) {
  if (argc < 1) return Usage();
  SchemaId id = std::strtoull(argv[0], nullptr, 10);
  auto summary = repo->GetRatingSummary(id);
  auto usage = repo->GetUsageCount(id);
  if (summary.ok() && usage.ok()) {
    std::printf("rating: %.1f (%zu ratings), used %llu times\n",
                summary->average, summary->num_ratings,
                static_cast<unsigned long long>(*usage));
  }
  auto comments = repo->GetComments(id);
  if (!comments.ok()) return Fail(comments.status(), "fetching comments");
  for (const SchemaComment& c : *comments) {
    std::printf("  [%s] %s\n", c.author.c_str(), c.text.c_str());
  }
  if (comments->empty()) std::printf("  (no comments)\n");
  return 0;
}

void PrintAuditRecord(const AuditRecord& r) {
  char when[32] = "-";
  const time_t seconds = static_cast<time_t>(r.timestamp_micros / 1000000);
  struct tm tm_buf;
  if (seconds > 0 && localtime_r(&seconds, &tm_buf) != nullptr) {
    std::strftime(when, sizeof(when), "%Y-%m-%d %H:%M:%S", &tm_buf);
  }
  std::printf("%-19s %-15s fp=%016llx %8.1fms [p1 %5.1f p2 %5.1f p3 %5.1f]"
              " n=%-3u digest=%016llx",
              when, AuditOutcomeName(r.outcome),
              static_cast<unsigned long long>(r.fingerprint),
              r.total_micros / 1e3, r.phase1_micros / 1e3,
              r.phase2_micros / 1e3, r.phase3_micros / 1e3, r.result_count,
              static_cast<unsigned long long>(r.result_digest));
  if (!r.request_id.empty()) std::printf(" id=%s", r.request_id.c_str());
  if (r.has_query_text) {
    std::printf("  \"%s\"%s", r.keywords.c_str(),
                r.fragment.empty() ? "" : " +fragment");
  }
  std::printf("\n");
}

volatile std::sig_atomic_t g_interrupted = 0;
void OnInterrupt(int) { g_interrupted = 1; }
volatile std::sig_atomic_t g_rolling_restart = 0;
void OnHangup(int) { g_rolling_restart = 1; }

/// `audit tail --follow`: prints the last `limit` records, then polls the
/// log with an offset cursor — each poll reads only the bytes appended
/// since the previous one, instead of re-reading whole segments.
int FollowAuditLog(const std::string& dir, size_t limit, int poll_ms,
                   size_t max_polls) {
  std::signal(SIGINT, OnInterrupt);
  AuditCursor cursor;
  auto initial = ReadAuditLogFrom(dir, &cursor);
  if (!initial.ok()) return Fail(initial.status(), "reading audit log");
  const std::vector<AuditRecord>& records = initial->records;
  const size_t start = records.size() > limit ? records.size() - limit : 0;
  for (size_t i = start; i < records.size(); ++i) {
    PrintAuditRecord(records[i]);
  }
  std::fflush(stdout);
  for (size_t polls = 0; max_polls == 0 || polls < max_polls; ++polls) {
    if (g_interrupted) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    auto more = ReadAuditLogFrom(dir, &cursor);
    if (!more.ok()) continue;  // log may rotate/vanish between polls
    for (const AuditRecord& r : more->records) PrintAuditRecord(r);
    if (!more->records.empty()) std::fflush(stdout);
  }
  return 0;
}

int CmdAudit(const std::string& repo_dir, int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string mode = argv[0];
  size_t limit = 20;
  bool follow = false;
  int poll_ms = 500;
  size_t max_polls = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--limit" && i + 1 < argc) {
      limit = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--poll-ms" && i + 1 < argc) {
      poll_ms = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (poll_ms < 1) poll_ms = 1;
    } else if (arg == "--max-polls" && i + 1 < argc) {
      max_polls = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (follow) {
    if (mode != "tail") {
      std::fprintf(stderr, "schemr audit: --follow only applies to tail\n");
      return 2;
    }
    return FollowAuditLog(AuditDir(repo_dir), limit, poll_ms, max_polls);
  }
  auto report = ReadAuditLog(AuditDir(repo_dir));
  if (!report.ok()) return Fail(report.status(), "reading audit log");
  if (report->skipped_records > 0 || report->torn_tail) {
    std::fprintf(stderr,
                 "# audit: salvaged around %zu damaged records (%llu bytes"
                 "%s)\n",
                 report->skipped_records,
                 static_cast<unsigned long long>(report->skipped_bytes),
                 report->torn_tail ? ", torn tail" : "");
  }
  const std::vector<AuditRecord>& records = report->records;

  if (mode == "tail") {
    const size_t start = records.size() > limit ? records.size() - limit : 0;
    for (size_t i = start; i < records.size(); ++i) {
      PrintAuditRecord(records[i]);
    }
  } else if (mode == "slow") {
    // Persisted slow records are the ones that retained query text with a
    // healthy outcome (shed/error records keep text for debugging, not
    // because they were slow).
    std::vector<const AuditRecord*> slow;
    for (const AuditRecord& r : records) {
      if (r.has_query_text && (r.outcome == AuditOutcome::kOk ||
                               r.outcome == AuditOutcome::kDegraded)) {
        slow.push_back(&r);
      }
    }
    std::sort(slow.begin(), slow.end(),
              [](const AuditRecord* a, const AuditRecord* b) {
                return a->total_micros > b->total_micros;
              });
    if (slow.size() > limit) slow.resize(limit);
    for (const AuditRecord* r : slow) PrintAuditRecord(*r);
    if (slow.empty()) std::printf("(no slow queries recorded)\n");
  } else if (mode == "top") {
    struct Aggregate {
      size_t count = 0;
      size_t degraded = 0;
      size_t shed = 0;
      uint64_t total_micros = 0;
      uint64_t max_micros = 0;
      const AuditRecord* sample = nullptr;
    };
    std::map<uint64_t, Aggregate> by_fingerprint;
    for (const AuditRecord& r : records) {
      Aggregate& agg = by_fingerprint[r.fingerprint];
      ++agg.count;
      if (r.outcome == AuditOutcome::kDegraded) ++agg.degraded;
      if (IsShedOutcome(r.outcome)) ++agg.shed;
      agg.total_micros += r.total_micros;
      agg.max_micros = std::max(agg.max_micros, r.total_micros);
      if (r.has_query_text) agg.sample = &r;
    }
    std::vector<std::pair<uint64_t, const Aggregate*>> ranked;
    for (const auto& [fp, agg] : by_fingerprint) ranked.emplace_back(fp, &agg);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                return a.second->count > b.second->count;
              });
    if (ranked.size() > limit) ranked.resize(limit);
    std::printf("%-18s %-6s %-9s %-5s %-10s %-10s %s\n", "fingerprint",
                "count", "degraded", "shed", "avg_ms", "max_ms", "sample");
    for (const auto& [fp, agg] : ranked) {
      std::printf("%016llx   %-6zu %-9zu %-5zu %-10.1f %-10.1f %s\n",
                  static_cast<unsigned long long>(fp), agg->count,
                  agg->degraded, agg->shed,
                  agg->total_micros / 1e3 / static_cast<double>(agg->count),
                  agg->max_micros / 1e3,
                  agg->sample != nullptr ? agg->sample->keywords.c_str()
                                         : "-");
    }
  } else {
    return Usage();
  }
  std::fprintf(stderr, "# audit: %zu records in %zu segments\n",
               records.size(), report->segments_read);
  return 0;
}

int CmdSeed(SchemaRepository* repo, const std::string& repo_dir, int argc,
            char** argv) {
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 200;
  QueryWorkloadOptions workload_options;
  std::string workload_path;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--schemas" && i + 1 < argc) {
      corpus_options.num_schemas = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      corpus_options.seed = std::strtoull(argv[++i], nullptr, 10);
      workload_options.seed = corpus_options.seed + 57;
    } else if (arg == "--workload" && i + 1 < argc) {
      workload_path = argv[++i];
    } else if (arg == "--queries" && i + 1 < argc) {
      workload_options.num_queries = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  Timer timer;
  std::vector<GeneratedSchema> corpus = GenerateCorpus(corpus_options);
  for (GeneratedSchema& generated : corpus) {
    auto id = repo->Insert(std::move(generated.schema));
    if (!id.ok()) return Fail(id.status(), "inserting generated schema");
  }
  std::printf("seeded %zu schemas in %.1f ms\n", corpus.size(),
              timer.ElapsedMillis());
  if (int rc = CmdIndex(repo, repo_dir); rc != 0) return rc;
  if (!workload_path.empty()) {
    workload_options.fragment_prob = 0.3;
    std::vector<WorkloadQuery> queries =
        GenerateQueryWorkload(workload_options);
    std::vector<WorkloadEntry> entries;
    entries.reserve(queries.size());
    for (WorkloadQuery& q : queries) {
      WorkloadEntry entry;
      entry.keywords = std::move(q.keywords);
      entry.fragment = std::move(q.ddl_fragment);
      entries.push_back(std::move(entry));
    }
    Status saved = SaveWorkload(workload_path, entries);
    if (!saved.ok()) return Fail(saved, "writing workload");
    std::printf("wrote %zu queries to %s\n", entries.size(),
                workload_path.c_str());
  }
  return 0;
}

/// `schemr replay <workload> --repo <dir> ...` — argument order differs
/// from the other commands (the workload, not the repo, is the subject),
/// so Run() special-cases it before the common repository open.
int CmdReplay(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string workload_path = argv[0];
  std::string repo_dir;
  std::string out_path;
  std::string baseline_path;
  std::string record_path;
  ReplayOptions replay_options;
  GateOptions gate_options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--repo" && i + 1 < argc) {
      repo_dir = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      replay_options.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--repeat" && i + 1 < argc) {
      replay_options.repeat = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--engine-threads" && i + 1 < argc) {
      replay_options.engine_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--prefilter" && i + 1 < argc) {
      replay_options.force_prefilter = std::strtod(argv[++i], nullptr);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--record" && i + 1 < argc) {
      record_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      gate_options.latency_tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--qps-tolerance" && i + 1 < argc) {
      gate_options.qps_tolerance = std::strtod(argv[++i], nullptr);
    } else {
      return Usage();
    }
  }
  if (repo_dir.empty()) {
    std::fprintf(stderr, "schemr replay: --repo <dir> is required\n");
    return 2;
  }

  auto repo = SchemaRepository::Open(repo_dir);
  if (!repo.ok()) return Fail(repo.status(), "opening repository");
  auto indexer = LoadOrBuildIndex(**repo, repo_dir);
  if (!indexer.ok()) return Fail(indexer.status(), "loading index");

  // Pin one snapshot for the whole run: the pairing of this index, this
  // schema view, and this feature catalog is what makes the digests
  // reproducible.
  CatalogBuildStats catalog_stats;
  auto catalog = LoadOrBuildCatalog(**repo, repo_dir, &catalog_stats);
  std::fprintf(stderr,
               "# signatures: %zu schemas (%zu loaded, %zu built, %zu "
               "corrupt) in %.1f ms\n",
               catalog_stats.schemas, catalog_stats.signatures_loaded,
               catalog_stats.signatures_built, catalog_stats.corrupt_records,
               catalog_stats.seconds * 1e3);
  auto snapshot = PinSnapshot(**repo, std::move(*indexer), catalog);

  size_t skipped = 0;
  auto workload = LoadWorkload(workload_path, &skipped);
  if (!workload.ok()) return Fail(workload.status(), "loading workload");
  if (skipped > 0) {
    std::fprintf(stderr,
                 "# replay: %zu audit records had no query text, skipped\n",
                 skipped);
  }

  auto report = ReplayWorkload(snapshot, *workload, replay_options);
  if (!report.ok()) return Fail(report.status(), "replaying");

  std::fprintf(stderr,
               "# replay: %zu entries x%zu on %zu threads: %.1f qps, "
               "p50 %.2fms p95 %.2fms p99 %.2fms, %zu errors, %zu degraded, "
               "%zu digest mismatches\n",
               report->entries, report->repeat, report->threads, report->qps,
               report->total.p50 * 1e3, report->total.p95 * 1e3,
               report->total.p99 * 1e3, report->errors, report->degraded,
               report->digest_mismatches);

  const std::string json = ReplayReportToJson(*report);
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) return Fail(Status::IOError("cannot write " + out_path),
                          "writing report");
    out << json;
  }

  if (!record_path.empty()) {
    // Stamp this run's digests into the workload so the next replay (or
    // machine) verifies against them. A forced pre-filter threshold is
    // stamped too: these digests were produced under that screen, and a
    // workload that opts into approximate mode must say so.
    std::vector<WorkloadEntry> recorded = *workload;
    for (size_t i = 0; i < recorded.size(); ++i) {
      recorded[i].expected_digest = report->digests[i];
      if (replay_options.force_prefilter > 0.0) {
        recorded[i].prefilter = replay_options.force_prefilter;
      }
    }
    Status saved = SaveWorkload(record_path, recorded);
    if (!saved.ok()) return Fail(saved, "recording workload");
    std::fprintf(stderr, "# replay: recorded digests to %s\n",
                 record_path.c_str());
  }

  int rc = report->digest_mismatches > 0 ? 1 : 0;
  if (!baseline_path.empty()) {
    auto baseline = ReadFile(baseline_path);
    if (!baseline.ok()) return Fail(baseline.status(), "reading baseline");
    auto gate = CompareBenchReports(*baseline, json, gate_options);
    if (!gate.ok()) return Fail(gate.status(), "gating");
    for (const std::string& violation : gate->violations) {
      std::fprintf(stderr, "GATE: %s\n", violation.c_str());
    }
    if (!gate->pass) rc = 1;
    std::fprintf(stderr, "# gate vs %s: %s\n", baseline_path.c_str(),
                 gate->pass ? "PASS" : "FAIL");
  }
  return rc;
}

/// `schemr serve <repo>`: brings up the full serving stack — serving
/// corpus, worker pool, admission control, result cache, and the HTTP
/// introspection plane — then idles until SIGINT/SIGTERM or --duration.
/// The CI smoke job drives this; operators get the same entry point.
int CmdServe(const std::string& repo_dir, int argc, char** argv) {
  ServingOptions serving;
  serving.introspection_port = 0;  // ephemeral unless --port pins one
  serving.result_cache_capacity = 256;
  double duration = 0.0;  // 0 = until interrupted
  size_t warmup = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      serving.introspection_port =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--search-port" && i + 1 < argc) {
      serving.search_port =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--workers" && i + 1 < argc) {
      serving.executor.num_workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cache" && i + 1 < argc) {
      serving.result_cache_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--duration" && i + 1 < argc) {
      duration = std::strtod(argv[++i], nullptr);
    } else if (arg == "--warmup" && i + 1 < argc) {
      warmup = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--sample-every" && i + 1 < argc) {
      serving.trace_retention.sample_every_n =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      return Usage();
    }
  }
  auto repo = SchemaRepository::Open(repo_dir);
  if (!repo.ok()) return Fail(repo.status(), "opening repository");
  std::vector<std::string> warmup_names;
  if (warmup > 0) {
    if (auto summaries = (*repo)->ListAll(); summaries.ok()) {
      for (const SchemaSummary& s : *summaries) {
        warmup_names.push_back(s.name);
        if (warmup_names.size() == 8) break;
      }
    }
  }
  auto corpus = ServingCorpus::Create(std::move(*repo));
  if (!corpus.ok()) return Fail(corpus.status(), "building serving corpus");
  SchemrService service(corpus->get());
  (void)service.EnableAudit(AuditDir(repo_dir));
  Status started = service.StartServing(serving);
  if (!started.ok()) return Fail(started, "starting service");
  std::printf("introspection: http://127.0.0.1:%d (corpus v%llu, %zu docs)\n",
              service.introspection()->port(),
              static_cast<unsigned long long>((*corpus)->version()),
              (*corpus)->Snapshot()->index->NumDocs());
  if (service.search_server() != nullptr) {
    std::printf("search: http://127.0.0.1:%d/search\n",
                service.search_server()->port());
  }
  std::fflush(stdout);
  // Warm-up traffic so the windows, traces, and cache counters are live
  // for whoever scrapes us. Each query runs twice: miss, then cache hit.
  for (size_t i = 0; i < warmup && !warmup_names.empty(); ++i) {
    SearchRequest request;
    request.keywords = warmup_names[i % warmup_names.size()];
    (void)service.HandleSearchXml(request);
    (void)service.HandleSearchXml(request);
  }
  std::signal(SIGINT, OnInterrupt);
  std::signal(SIGTERM, OnInterrupt);
  Timer timer;
  while (!g_interrupted &&
         (duration <= 0.0 || timer.ElapsedSeconds() < duration)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  Status drained = service.Shutdown(5.0);
  std::fprintf(stderr, "# serve: drain %s\n", drained.ToString().c_str());
  return drained.ok() ? 0 : 1;
}

/// `schemr fleet <repo>`: spawns N `schemr serve` replicas (each over
/// its own corpus copy) behind the in-process failover coordinator,
/// then supervises them: dead replicas are respawned in place, and
/// SIGHUP triggers a rolling drain-and-restart that never drops the
/// ready count below N−1. SIGINT/SIGTERM drain the whole fleet.
int CmdFleet(const std::string& repo_dir, int argc, char** argv) {
  FleetOptions fleet_options;
  fleet_options.repo_dir = repo_dir;
  CoordinatorOptions coord_options;
  coord_options.http.port = 0;
  double duration = 0.0;  // 0 = until interrupted
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--replicas" && i + 1 < argc) {
      fleet_options.replicas =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--port" && i + 1 < argc) {
      coord_options.http.port =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--workers" && i + 1 < argc) {
      fleet_options.serve_workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--duration" && i + 1 < argc) {
      duration = std::strtod(argv[++i], nullptr);
    } else if (arg == "--sample-every" && i + 1 < argc) {
      // One flag pins sampling across the whole tier: the replicas'
      // trace retention AND the coordinator's hop-journal retention.
      fleet_options.serve_sample_every =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      coord_options.trace_retention.sample_every_n =
          fleet_options.serve_sample_every;
    } else if (arg == "--no-hedge") {
      coord_options.hedge = false;
    } else {
      return Usage();
    }
  }
  // Replicas exec this very binary: /proc/self/exe survives relative
  // argv[0] and $PATH lookups.
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) {
    return Fail(Status::IOError("cannot resolve /proc/self/exe"),
                "locating the schemr binary");
  }
  fleet_options.binary_path.assign(exe, static_cast<size_t>(n));

  Fleet fleet(fleet_options, coord_options);
  Status started = fleet.Start();
  if (!started.ok()) return Fail(started, "starting fleet");
  std::printf("coordinator: http://127.0.0.1:%d/search (%d replicas)\n",
              fleet.coordinator().port(), fleet.replicas());
  for (int i = 0; i < fleet.replicas(); ++i) {
    const BackendConfig config = fleet.ReplicaConfig(i);
    std::printf("%s: pid %d search :%d introspection :%d\n",
                config.name.c_str(), static_cast<int>(fleet.ReplicaPid(i)),
                config.search_port, config.introspection_port);
  }
  std::fflush(stdout);
  std::signal(SIGINT, OnInterrupt);
  std::signal(SIGTERM, OnInterrupt);
  std::signal(SIGHUP, OnHangup);
  Timer timer;
  while (!g_interrupted &&
         (duration <= 0.0 || timer.ElapsedSeconds() < duration)) {
    if (g_rolling_restart) {
      g_rolling_restart = 0;
      std::fprintf(stderr, "# fleet: rolling restart begin\n");
      Status rolled = fleet.RollingRestart();
      std::fprintf(stderr, "# fleet: rolling restart %s\n",
                   rolled.ToString().c_str());
    }
    fleet.SupervisePass();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  fleet.Shutdown();
  std::fprintf(stderr, "# fleet: drain OK\n");
  return 0;
}

/// `schemr top <host:port>`: polls /statusz and renders a one-screen
/// dashboard (a terminal `top` for a serving schemr process).
int CmdTop(const std::string& target, int argc, char** argv) {
  double interval = 2.0;
  size_t iterations = 0;  // 0 = until interrupted
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--interval" && i + 1 < argc) {
      interval = std::strtod(argv[++i], nullptr);
    } else if (arg == "--iterations" && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }
  const size_t colon = target.rfind(':');
  const std::string host =
      colon == std::string::npos || colon == 0 ? std::string("127.0.0.1")
                                               : target.substr(0, colon);
  const int port = static_cast<int>(std::strtol(
      colon == std::string::npos ? target.c_str()
                                 : target.c_str() + colon + 1,
      nullptr, 10));
  if (port <= 0) {
    std::fprintf(stderr, "schemr top: expected <host:port>, got '%s'\n",
                 target.c_str());
    return 2;
  }
  std::signal(SIGINT, OnInterrupt);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  for (size_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (g_interrupted) break;
    auto body = HttpGet(host, port, "/statusz");
    if (!body.ok()) return Fail(body.status(), "fetching /statusz");
    auto parsed = ParseBenchJson(*body);
    if (!parsed.ok()) return Fail(parsed.status(), "parsing /statusz");
    auto get = [&parsed](const char* key) {
      auto it = parsed->find(key);
      return it == parsed->end() ? 0.0 : it->second;
    };
    if (tty) std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home
    std::printf("schemr @ %s:%d  up %.0fs  %s%s\n", host.c_str(), port,
                get("uptime_seconds"),
                get("serving") != 0.0 ? "SERVING" : "DOWN",
                get("admission.draining") != 0.0 ? " (draining)" : "");
    std::printf(
        "corpus   v%-6.0f docs %-8.0f terms %-8.0f\n",
        get("corpus.snapshot_version"), get("corpus.index_docs"),
        get("corpus.index_terms"));
    std::printf(
        "executor %0.f/%0.f queued, %.0f running on %.0f workers%s\n",
        get("executor.queue_depth"), get("executor.queue_capacity"),
        get("executor.running"), get("executor.workers"),
        get("executor.wedged") != 0.0 ? "  WEDGED" : "");
    std::printf(
        "cache    %.0f/%.0f entries, hit ratio %.2f\n",
        get("result_cache.entries"), get("result_cache.capacity"),
        get("result_cache.hit_ratio"));
    std::printf(
        "sigs     %.0f schemas, %.0f prefilter-rejected, %.0f builds"
        " (%.1f ms total)\n",
        get("signatures.catalog_schemas"),
        get("signatures.prefilter_rejected_total"),
        get("signatures.build_count"),
        get("signatures.build_seconds_total") * 1e3);
    std::printf(
        "traces   %.0f offered, %.0f sampled, %.0f retained (1/%0.f)\n",
        get("traces.offered"), get("traces.sampled"), get("traces.retained"),
        get("traces.sample_every_n"));
    if (get("http.port") != 0.0) {
      std::printf(
          "http     :%.0f  %.0f conns (%.0f active), %.0f shed, %.0f"
          " timeouts, %.0f/%.0f B in/out%s\n",
          get("http.port"), get("http.connections"), get("http.active"),
          get("http.shed"), get("http.timeouts"), get("http.bytes_read"),
          get("http.bytes_written"),
          get("http.draining") != 0.0 ? "  DRAINING" : "");
    }
    if (get("pool.backends") != 0.0) {
      std::printf(
          "pool     %.0f backends (%.0f routable), hedge after %.1f ms,"
          " %.0f failovers, %.0f hedges (%.0f won)\n",
          get("pool.backends"), get("pool.routable"),
          get("pool.hedge_delay_ms"), get("coord.failovers"),
          get("coord.hedges"), get("coord.hedges_won"));
      std::printf(
          "fleet    %.0f scraped  %.0f reqs  %.1f qps  p50 %.2f  p95 %.2f"
          "  p99 %.2f ms\n",
          get("fleet.replicas_scraped"), get("fleet.requests"),
          get("fleet.qps"), get("fleet.p50_ms"), get("fleet.p95_ms"),
          get("fleet.p99_ms"));
      for (int r = 0; r < static_cast<int>(get("pool.backends")); ++r) {
        const std::string prefix = "replica" + std::to_string(r);
        auto field = [&](const char* name) {
          return get((prefix + "." + name).c_str());
        };
        std::printf(
            "%-8s :%-6.0f %s%s %.0f in-flight, %.0f reqs, %.0f failures\n",
            prefix.c_str(), field("search_port"),
            field("routable") != 0.0 ? "routable" : "out",
            field("draining") != 0.0 ? " (draining)" : "",
            field("in_flight"), field("requests"), field("failures"));
      }
    }
    std::printf("%-8s %10s %10s %10s %10s %10s\n", "window", "qps", "p50_ms",
                "p99_ms", "err/s", "shed/s");
    for (const char* window : {"window_1m", "window_5m", "window_15m"}) {
      const std::string prefix(window);
      auto field = [&](const char* name) {
        return get((prefix + "." + name).c_str());
      };
      std::printf("%-8s %10.1f %10.2f %10.2f %10.2f %10.2f\n", window,
                  field("qps"), field("p50_ms"), field("p99_ms"),
                  field("errors_per_second"), field("shed_per_second"));
    }
    std::fflush(stdout);
    if (iterations != 0 && i + 1 == iterations) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(interval * 1e3)));
  }
  return 0;
}

/// Extracts and unescapes the JSON string value for `"key": "..."` from
/// one /tracez trace line. This targets the emitter's own fixed dialect
/// (one trace object per line, AppendJsonEscaped strings), not general
/// JSON.
bool ExtractTraceField(const std::string& line, const std::string& key,
                       std::string* value) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  value->clear();
  for (size_t i = at + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < line.size()) {
      const char escaped = line[++i];
      switch (escaped) {
        case 'n':
          value->push_back('\n');
          break;
        case 'r':
          value->push_back('\r');
          break;
        case 't':
          value->push_back('\t');
          break;
        case 'u':
          if (i + 4 < line.size()) {
            value->push_back(static_cast<char>(std::strtoul(
                line.substr(i + 1, 4).c_str(), nullptr, 16)));
            i += 4;
          }
          break;
        default:
          value->push_back(escaped);
          break;
      }
      continue;
    }
    value->push_back(c);
  }
  return false;  // unterminated string: treat as no match
}

/// Prints every /tracez record at host:port joinable to request `id`
/// (exact at the coordinator, hop-suffixed at replicas). Returns the
/// match count, or -1 when the endpoint is unreachable — a dead replica
/// degrades the timeline, it does not abort it.
int PrintTracezMatches(const std::string& who, const std::string& host,
                       int port, const std::string& id) {
  auto body = HttpGet(host, port, "/tracez", 2.0);
  if (!body.ok()) {
    std::printf("%-12s unreachable: %s\n", who.c_str(),
                body.status().ToString().c_str());
    return -1;
  }
  int matches = 0;
  std::stringstream lines(*body);
  std::string line;
  while (std::getline(lines, line)) {
    std::string recorded;
    if (!ExtractTraceField(line, "request_id", &recorded)) continue;
    if (!RequestIdMatches(id, recorded)) continue;
    std::string outcome;
    std::string spans;
    (void)ExtractTraceField(line, "outcome", &outcome);
    (void)ExtractTraceField(line, "spans", &spans);
    std::printf("%-12s id=%s outcome=%s\n", who.c_str(), recorded.c_str(),
                outcome.c_str());
    std::stringstream span_lines(spans);
    std::string span;
    while (std::getline(span_lines, span)) {
      std::printf("    %s\n", span.c_str());
    }
    ++matches;
  }
  return matches;
}

/// `schemr trace <host:port> <request-id>`: stitches one request's
/// cross-process story — the coordinator's hop journal plus every
/// replica trace carrying a hop-suffixed form of the id — into a single
/// timeline. Replicas are discovered through the coordinator's /statusz
/// (replicaN.introspection_port); pointing this at a plain `schemr
/// serve` process simply searches that process's own /tracez.
int CmdTrace(const std::string& target, int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string id = argv[0];
  const size_t colon = target.rfind(':');
  const std::string host =
      colon == std::string::npos || colon == 0 ? std::string("127.0.0.1")
                                               : target.substr(0, colon);
  const int port = static_cast<int>(std::strtol(
      colon == std::string::npos ? target.c_str()
                                 : target.c_str() + colon + 1,
      nullptr, 10));
  if (port <= 0) {
    std::fprintf(stderr, "schemr trace: expected <host:port>, got '%s'\n",
                 target.c_str());
    return 2;
  }
  if (!IsValidRequestId(id)) {
    std::fprintf(stderr, "schemr trace: '%s' is not a request id\n",
                 id.c_str());
    return 2;
  }
  int found = 0;
  const int coordinator_matches =
      PrintTracezMatches("coordinator", host, port, id);
  if (coordinator_matches > 0) found += coordinator_matches;
  auto statusz = HttpGet(host, port, "/statusz", 2.0);
  if (statusz.ok()) {
    if (auto parsed = ParseBenchJson(*statusz); parsed.ok()) {
      const auto backends = parsed->find("pool.backends");
      const int n =
          backends == parsed->end() ? 0 : static_cast<int>(backends->second);
      for (int r = 0; r < n; ++r) {
        const std::string name = "replica" + std::to_string(r);
        const auto it = parsed->find(name + ".introspection_port");
        const int replica_port =
            it == parsed->end() ? 0 : static_cast<int>(it->second);
        if (replica_port <= 0) {
          std::printf("%-12s no introspection port published\n",
                      name.c_str());
          continue;
        }
        const int matches = PrintTracezMatches(name, host, replica_port, id);
        if (matches > 0) found += matches;
      }
    }
  }
  if (found == 0) {
    std::fprintf(stderr,
                 "schemr trace: no records for id %s (retention rings are "
                 "bounded; old requests age out)\n",
                 id.c_str());
    return 1;
  }
  return 0;
}

Result<std::string> ReadFileOrStdin(const std::string& path) {
  if (path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  return ReadFile(path);
}

/// `schemr checkmetrics <file|->`: Prometheus exposition conformance
/// check for CI (no scraper dependency in the container).
int CmdCheckMetrics(const std::string& path) {
  auto text = ReadFileOrStdin(path);
  if (!text.ok()) return Fail(text.status(), "reading exposition text");
  Status checked = CheckPrometheusText(*text);
  if (!checked.ok()) return Fail(checked, "checking exposition text");
  size_t families = 0;
  size_t pos = 0;
  while ((pos = text->find("# TYPE ", pos)) != std::string::npos) {
    ++families;
    pos += 7;
  }
  if (families == 0) {
    std::fprintf(stderr, "schemr checkmetrics: no metric families\n");
    return 1;
  }
  std::printf("ok: %zu metric families\n", families);
  return 0;
}

/// `schemr checkjson <file|-> [--require key]...`: flat-JSON validation
/// (the /statusz contract) for CI.
int CmdCheckJson(const std::string& path, int argc, char** argv) {
  auto text = ReadFileOrStdin(path);
  if (!text.ok()) return Fail(text.status(), "reading JSON");
  auto parsed = ParseBenchJson(*text);
  if (!parsed.ok()) return Fail(parsed.status(), "parsing JSON");
  if (parsed->empty()) {
    std::fprintf(stderr, "schemr checkjson: no numeric fields\n");
    return 1;
  }
  int rc = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--require" && i + 1 < argc) {
      const std::string key = argv[++i];
      if (parsed->count(key) == 0) {
        std::fprintf(stderr, "schemr checkjson: missing required key %s\n",
                     key.c_str());
        rc = 1;
      }
    }
  }
  if (rc == 0) std::printf("ok: %zu numeric fields\n", parsed->size());
  return rc;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  // Library warnings surface in the `stats` output too.
  InstallMetricsLogSink();
  std::string command = argv[1];
  if (command == "replay") return CmdReplay(argc - 2, argv + 2);
  std::string repo_dir = argv[2];
  if (command == "audit") return CmdAudit(repo_dir, argc - 3, argv + 3);
  if (command == "serve") return CmdServe(repo_dir, argc - 3, argv + 3);
  if (command == "fleet") return CmdFleet(repo_dir, argc - 3, argv + 3);
  if (command == "top") return CmdTop(argv[2], argc - 3, argv + 3);
  if (command == "trace") return CmdTrace(argv[2], argc - 3, argv + 3);
  if (command == "checkmetrics") return CmdCheckMetrics(argv[2]);
  if (command == "checkjson") return CmdCheckJson(argv[2], argc - 3, argv + 3);
  auto repo = SchemaRepository::Open(repo_dir);
  if (!repo.ok()) return Fail(repo.status(), "opening repository");
  SchemaRepository* r = repo->get();
  int rest_argc = argc - 3;
  char** rest = argv + 3;

  if (command == "import") return CmdImport(r, rest_argc, rest);
  if (command == "list") return CmdList(r);
  if (command == "show") return CmdShow(r, rest_argc, rest);
  if (command == "index") return CmdIndex(r, repo_dir);
  if (command == "search") return CmdSearch(r, repo_dir, rest_argc, rest);
  if (command == "stats") return CmdStats(r, repo_dir, rest_argc, rest);
  if (command == "viz") return CmdViz(r, repo_dir, rest_argc, rest);
  if (command == "export") return CmdExport(r, rest_argc, rest);
  if (command == "comment") return CmdComment(r, rest_argc, rest);
  if (command == "rate") return CmdRate(r, rest_argc, rest);
  if (command == "comments") return CmdComments(r, rest_argc, rest);
  if (command == "seed") return CmdSeed(r, repo_dir, rest_argc, rest);
  return Usage();
}

}  // namespace
}  // namespace schemr

int main(int argc, char** argv) { return schemr::Run(argc, argv); }
