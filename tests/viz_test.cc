// Tests for the visualization library: graph views (depth cap, drill-in),
// tree/radial layouts, color encoding, and the GraphML/DOT/SVG/HTML
// writers. GraphML output is validated by parsing it back with the
// project's own XML parser.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "parse/xml_parser.h"
#include "schema/schema_builder.h"
#include "viz/color.h"
#include "viz/dot_writer.h"
#include "viz/graph_view.h"
#include "viz/graphml_reader.h"
#include "viz/graphml_writer.h"
#include "viz/html_report.h"
#include "viz/layout.h"
#include "viz/svg_writer.h"

namespace schemr {
namespace {

Schema MakeDeepSchema() {
  // root → l1 → l2 → l3 → l4 chain plus a wide entity.
  Schema schema("deep");
  ElementId root = schema.AddEntity("root");
  ElementId l1 = schema.AddEntity("l1", root);
  ElementId l2 = schema.AddEntity("l2", l1);
  ElementId l3 = schema.AddEntity("l3", l2);
  schema.AddAttribute("l4_attr", l3);
  schema.AddAttribute("shallow", root);
  return schema;
}

Schema MakeFkSchema() {
  return SchemaBuilder("fk")
      .Entity("parent")
      .Attribute("id", DataType::kInt64)
      .PrimaryKey()
      .Entity("child")
      .Attribute("parent_id", DataType::kInt64)
      .References("parent")
      .Build();
}

// --- graph view -------------------------------------------------------------------

TEST(GraphViewTest, DepthCapCollapsesNodes) {
  Schema schema = MakeDeepSchema();
  GraphViewOptions options;
  options.max_depth = 3;  // the paper's default cap
  SchemaGraphView view = BuildGraphView(schema, {}, options);
  // root(0) l1(1) l2(2) l3(3, collapsed) shallow(1); l4_attr hidden.
  EXPECT_EQ(view.nodes.size(), 5u);
  size_t l3 = view.NodeIndexOf(*schema.FindByName("l3"));
  ASSERT_NE(l3, SIZE_MAX);
  EXPECT_TRUE(view.nodes[l3].collapsed);
  EXPECT_EQ(view.NodeIndexOf(*schema.FindByName("l4_attr")), SIZE_MAX);
}

TEST(GraphViewTest, DrillInReRoots) {
  Schema schema = MakeDeepSchema();
  GraphViewOptions options;
  options.root = *schema.FindByName("l2");
  options.max_depth = 3;
  SchemaGraphView view = BuildGraphView(schema, {}, options);
  // Only l2's subtree: l2, l3, l4_attr.
  EXPECT_EQ(view.nodes.size(), 3u);
  EXPECT_EQ(view.nodes[0].element, *schema.FindByName("l2"));
  EXPECT_EQ(view.nodes[0].depth, 0u);  // re-rooted depths
  EXPECT_NE(view.NodeIndexOf(*schema.FindByName("l4_attr")), SIZE_MAX);
}

TEST(GraphViewTest, SimilarityScoresAttached) {
  Schema schema = MakeFkSchema();
  ElementId pid = *schema.FindByName("parent_id");
  SchemaGraphView view = BuildGraphView(schema, {{pid, 0.75}});
  size_t node = view.NodeIndexOf(pid);
  ASSERT_NE(node, SIZE_MAX);
  EXPECT_DOUBLE_EQ(view.nodes[node].similarity, 0.75);
  // Unscored nodes default to 0.
  EXPECT_DOUBLE_EQ(view.nodes[view.NodeIndexOf(0)].similarity, 0.0);
}

TEST(GraphViewTest, ForeignKeyEdgesIncluded) {
  Schema schema = MakeFkSchema();
  SchemaGraphView view = BuildGraphView(schema);
  size_t fk_edges = 0, tree_edges = 0;
  for (const VizEdge& edge : view.edges) {
    (edge.is_foreign_key ? fk_edges : tree_edges)++;
  }
  EXPECT_EQ(fk_edges, 1u);
  EXPECT_EQ(tree_edges, 2u);  // parent→id and child→parent_id

  GraphViewOptions no_fk;
  no_fk.include_foreign_keys = false;
  SchemaGraphView without = BuildGraphView(schema, {}, no_fk);
  for (const VizEdge& edge : without.edges) {
    EXPECT_FALSE(edge.is_foreign_key);
  }
}

// --- layouts ------------------------------------------------------------------------

TEST(TreeLayoutTest, DepthsMapToLevelsAndNoSameLevelOverlap) {
  Schema schema = MakeDeepSchema();
  SchemaGraphView view = BuildGraphView(schema, {}, {});
  ApplyTreeLayout(&view);
  // y grows with depth.
  for (const VizNode& node : view.nodes) {
    EXPECT_DOUBLE_EQ(node.y, 40.0 + 80.0 * static_cast<double>(node.depth));
  }
  // No two nodes of the same depth share x.
  std::set<std::pair<size_t, long>> seen;
  for (const VizNode& node : view.nodes) {
    auto key = std::make_pair(node.depth, std::lround(node.x * 10));
    EXPECT_TRUE(seen.insert(key).second)
        << "overlap at depth " << node.depth << " x=" << node.x;
  }
}

TEST(TreeLayoutTest, ParentCentersOverChildren) {
  Schema schema;
  ElementId root = schema.AddEntity("root");
  ElementId a = schema.AddAttribute("a", root);
  ElementId b = schema.AddAttribute("b", root);
  SchemaGraphView view = BuildGraphView(schema);
  ApplyTreeLayout(&view);
  double xa = view.nodes[view.NodeIndexOf(a)].x;
  double xb = view.nodes[view.NodeIndexOf(b)].x;
  double xr = view.nodes[view.NodeIndexOf(root)].x;
  EXPECT_NEAR(xr, (xa + xb) / 2.0, 1e-9);
}

TEST(RadialLayoutTest, DepthMapsToRadius) {
  Schema schema = MakeDeepSchema();
  SchemaGraphView view = BuildGraphView(schema);
  ApplyRadialLayout(&view);
  // Single root sits at the center; deeper nodes sit on larger rings.
  const VizNode& root = view.nodes[view.NodeIndexOf(0)];
  double cx = root.x, cy = root.y;
  for (const VizNode& node : view.nodes) {
    double r = std::hypot(node.x - cx, node.y - cy);
    EXPECT_NEAR(r, 80.0 * static_cast<double>(node.depth), 1e-6)
        << node.label;
  }
}

TEST(RadialLayoutTest, MultipleRootsSpread) {
  Schema schema = SchemaBuilder("multi")
                      .Entity("a")
                      .Attribute("x")
                      .Entity("b")
                      .Attribute("y")
                      .Build();
  SchemaGraphView view = BuildGraphView(schema);
  ApplyRadialLayout(&view);
  auto a = view.nodes[view.NodeIndexOf(0)];
  auto b = view.nodes[view.NodeIndexOf(2)];
  EXPECT_GT(std::hypot(a.x - b.x, a.y - b.y), 1.0);
}

TEST(LayoutTest, BoundsContainAllNodes) {
  Schema schema = MakeDeepSchema();
  SchemaGraphView view = BuildGraphView(schema);
  ApplyTreeLayout(&view);
  BoundingBox box = ComputeBounds(view);
  for (const VizNode& node : view.nodes) {
    EXPECT_GE(node.x, box.min_x);
    EXPECT_LE(node.x, box.max_x);
    EXPECT_GE(node.y, box.min_y);
    EXPECT_LE(node.y, box.max_y);
  }
  EXPECT_GE(box.width(), 0.0);
  EXPECT_GE(box.height(), 0.0);
}

TEST(LayoutTest, EmptyViewIsSafe) {
  SchemaGraphView view;
  ApplyTreeLayout(&view);
  ApplyRadialLayout(&view);
  BoundingBox box = ComputeBounds(view);
  EXPECT_DOUBLE_EQ(box.width(), 0.0);
}

// --- colors -------------------------------------------------------------------------

TEST(ColorTest, HexRendering) {
  EXPECT_EQ((Rgb{0, 0, 0}).ToHex(), "#000000");
  EXPECT_EQ((Rgb{255, 127, 14}).ToHex(), "#ff7f0e");
}

TEST(ColorTest, LerpEndpointsAndClamp) {
  Rgb white{255, 255, 255}, black{0, 0, 0};
  EXPECT_EQ(LerpColor(white, black, 0.0).ToHex(), "#ffffff");
  EXPECT_EQ(LerpColor(white, black, 1.0).ToHex(), "#000000");
  EXPECT_EQ(LerpColor(white, black, -1.0).ToHex(), "#ffffff");
  EXPECT_EQ(LerpColor(white, black, 2.0).ToHex(), "#000000");
}

TEST(ColorTest, KindsDifferAndSimilaritySaturates) {
  EXPECT_NE(KindBaseColor(ElementKind::kEntity).ToHex(),
            KindBaseColor(ElementKind::kAttribute).ToHex());
  // Full similarity hits the base color; zero similarity is paler.
  Rgb full = NodeColor(ElementKind::kEntity, 1.0);
  Rgb pale = NodeColor(ElementKind::kEntity, 0.0);
  EXPECT_EQ(full.ToHex(), KindBaseColor(ElementKind::kEntity).ToHex());
  EXPECT_GT(static_cast<int>(pale.r) + pale.g + pale.b,
            static_cast<int>(full.r) + full.g + full.b);
}

// --- writers ------------------------------------------------------------------------

TEST(GraphMlWriterTest, OutputParsesAndCarriesData) {
  Schema schema = MakeFkSchema();
  ElementId pid = *schema.FindByName("parent_id");
  SchemaGraphView view = BuildGraphView(schema, {{pid, 0.9}});
  ApplyTreeLayout(&view);
  std::string graphml = WriteGraphMl(view);

  // Well-formed XML (validated with our own parser).
  auto doc = ParseXml(graphml);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->name, "graphml");
  const XmlNode* graph = doc->root->FirstChild("graph");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->ChildrenNamed("node").size(), view.nodes.size());
  EXPECT_EQ(graph->ChildrenNamed("edge").size(), view.edges.size());

  // Node data keys include label/kind/score.
  const XmlNode* node0 = graph->ChildrenNamed("node")[0];
  std::set<std::string> keys;
  for (const XmlNode* data : node0->ChildrenNamed("data")) {
    keys.insert(*data->FindAttribute("key"));
  }
  EXPECT_TRUE(keys.count("d_label"));
  EXPECT_TRUE(keys.count("d_kind"));
  EXPECT_TRUE(keys.count("d_score"));
  EXPECT_TRUE(keys.count("d_x"));

  // Edge endpoints reference declared node ids.
  std::set<std::string> node_ids;
  for (const XmlNode* n : graph->ChildrenNamed("node")) {
    node_ids.insert(*n->FindAttribute("id"));
  }
  for (const XmlNode* e : graph->ChildrenNamed("edge")) {
    EXPECT_TRUE(node_ids.count(*e->FindAttribute("source")));
    EXPECT_TRUE(node_ids.count(*e->FindAttribute("target")));
  }
}

TEST(GraphMlReaderTest, WriteReadRoundTrip) {
  Schema schema = MakeFkSchema();
  ElementId pid = *schema.FindByName("parent_id");
  SchemaGraphView original = BuildGraphView(schema, {{pid, 0.9}});
  ApplyTreeLayout(&original);
  original.nodes[0].semantic = "identifier";

  auto round = ReadGraphMl(WriteGraphMl(original));
  ASSERT_TRUE(round.ok()) << round.status();
  ASSERT_EQ(round->nodes.size(), original.nodes.size());
  ASSERT_EQ(round->edges.size(), original.edges.size());
  for (size_t i = 0; i < original.nodes.size(); ++i) {
    EXPECT_EQ(round->nodes[i].label, original.nodes[i].label);
    EXPECT_EQ(round->nodes[i].kind, original.nodes[i].kind);
    EXPECT_EQ(round->nodes[i].type, original.nodes[i].type);
    EXPECT_EQ(round->nodes[i].collapsed, original.nodes[i].collapsed);
    EXPECT_EQ(round->nodes[i].semantic, original.nodes[i].semantic);
    EXPECT_NEAR(round->nodes[i].similarity, original.nodes[i].similarity,
                1e-6);
    EXPECT_NEAR(round->nodes[i].x, original.nodes[i].x, 1e-3);
    EXPECT_NEAR(round->nodes[i].y, original.nodes[i].y, 1e-3);
  }
  for (size_t i = 0; i < original.edges.size(); ++i) {
    EXPECT_EQ(round->edges[i].from, original.edges[i].from);
    EXPECT_EQ(round->edges[i].to, original.edges[i].to);
    EXPECT_EQ(round->edges[i].is_foreign_key,
              original.edges[i].is_foreign_key);
  }
}

TEST(GraphMlReaderTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ReadGraphMl("not xml").ok());
  EXPECT_FALSE(ReadGraphMl("<notgraphml/>").ok());
  EXPECT_FALSE(ReadGraphMl("<graphml></graphml>").ok());  // no <graph>
  // Edge referencing a missing node.
  EXPECT_FALSE(ReadGraphMl(
                   "<graphml><graph><node id=\"n0\"/>"
                   "<edge source=\"n0\" target=\"n9\"/></graph></graphml>")
                   .ok());
  // Duplicate node ids.
  EXPECT_FALSE(ReadGraphMl("<graphml><graph><node id=\"n0\"/>"
                           "<node id=\"n0\"/></graph></graphml>")
                   .ok());
}

TEST(GraphMlWriterTest, EscapesSpecialCharacters) {
  Schema schema("we<ird & name");
  schema.AddEntity("ent\"ity");
  SchemaGraphView view = BuildGraphView(schema);
  std::string graphml = WriteGraphMl(view);
  auto doc = ParseXml(graphml);
  ASSERT_TRUE(doc.ok()) << doc.status();
}

TEST(DotWriterTest, StructureAndEscaping) {
  Schema schema = MakeFkSchema();
  SchemaGraphView view = BuildGraphView(schema);
  std::string dot = WriteDot(view);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 ->"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // the FK edge
  // Entities are boxes, attributes ellipses.
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);

  Schema quoted("q");
  quoted.AddEntity("has\"quote");
  std::string dot2 = WriteDot(BuildGraphView(quoted));
  EXPECT_NE(dot2.find("has\\\"quote"), std::string::npos);
}

TEST(SvgWriterTest, ValidXmlWithExpectedShapes) {
  Schema schema = MakeFkSchema();
  ElementId pid = *schema.FindByName("parent_id");
  SchemaGraphView view = BuildGraphView(schema, {{pid, 0.8}});
  ApplyTreeLayout(&view);
  std::string svg = WriteSvg(view);
  auto doc = ParseXml(svg);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->name, "svg");
  // Entities as rects, attributes as circles, edges as lines, plus the
  // background rect.
  EXPECT_EQ(doc->root->ChildrenNamed("rect").size(), 3u);
  EXPECT_EQ(doc->root->ChildrenNamed("circle").size(), 2u);
  EXPECT_EQ(doc->root->ChildrenNamed("line").size(), view.edges.size());
  // Scored node renders its score text.
  EXPECT_NE(svg.find("0.80"), std::string::npos);
}

TEST(HtmlReportTest, TableAndPanelsRendered) {
  std::vector<ReportRow> rows = {
      {"clinic", 0.88, 5, 3, 7, "a <description>"},
      {"shop", 0.4, 1, 2, 5, ""},
  };
  std::vector<ReportPanel> panels = {{"clinic (tree)", "<svg>x</svg>"}};
  std::string html =
      WriteHtmlReport("Results", "keywords: patient", rows, panels);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("clinic"), std::string::npos);
  EXPECT_NE(html.find("0.880"), std::string::npos);
  EXPECT_NE(html.find("a &lt;description&gt;"), std::string::npos);
  EXPECT_NE(html.find("<svg>x</svg>"), std::string::npos);  // SVG unescaped
  EXPECT_NE(html.find("keywords: patient"), std::string::npos);
}

}  // namespace
}  // namespace schemr
