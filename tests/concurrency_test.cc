// Concurrency hardening tests (DESIGN.md §9): snapshot isolation of the
// index / repository / corpus, the bounded executor, admission control
// with load shedding, graceful drain, and a multithreaded
// search-while-ingest torture loop.
//
// The torture tests scale with SCHEMR_TORTURE_CYCLES (the TSan CI job
// raises it) and run with schedule perturbation enabled so snapshot-swap
// and queue hand-off windows are widened. Assertions about timing-derived
// outcomes (shedding, degradation) are deliberately loose: they check
// invariants ("every response is well-formed", "every rejection is
// counted"), not exact schedules.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/fingerprint.h"
#include "core/result_cache.h"
#include "core/search_engine.h"
#include "core/serving_corpus.h"
#include "index/indexer.h"
#include "index/versioned_index.h"
#include "obs/metrics.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "service/admission.h"
#include "service/http_introspection.h"
#include "service/schemr_service.h"
#include "util/executor.h"
#include "util/fault_injection.h"

namespace schemr {
namespace {

size_t CyclesOrDefault(size_t default_cycles) {
  const char* env = std::getenv("SCHEMR_TORTURE_CYCLES");
  if (env == nullptr || *env == '\0') return default_cycles;
  size_t cycles = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  return cycles > 0 ? cycles : default_cycles;
}

Schema ClinicSchema(const std::string& name, SchemaId id = 0) {
  Schema schema =
      SchemaBuilder(name)
          .Description("rural clinic data")
          .Entity("patient")
          .Attribute("height", DataType::kDouble)
          .Attribute("gender")
          .Entity("case")
          .Attribute("patient_id", DataType::kInt64)
          .References("patient")
          .Attribute("diagnosis")
          .Build();
  schema.set_id(id);
  return schema;
}

Result<std::unique_ptr<ServingCorpus>> MakeCorpus(size_t seed_schemas) {
  auto corpus = ServingCorpus::Create(SchemaRepository::OpenInMemory());
  if (!corpus.ok()) return corpus.status();
  for (size_t i = 0; i < seed_schemas; ++i) {
    auto id = (*corpus)->Ingest(ClinicSchema("seed_" + std::to_string(i)));
    if (!id.ok()) return id.status();
  }
  return corpus;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().EnablePerturbation(false);
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().EnablePerturbation(false);
  }
};

// --- snapshot isolation primitives -----------------------------------------

TEST_F(ConcurrencyTest, VersionedIndexSnapshotsAreImmutable) {
  VersionedIndex index;
  ASSERT_TRUE(index.AddDocument(FlattenSchema(ClinicSchema("one", 1))).ok());
  std::shared_ptr<const InvertedIndex> before = index.Snapshot();
  const uint64_t version_before = index.version();
  ASSERT_TRUE(index.AddDocument(FlattenSchema(ClinicSchema("two", 2))).ok());
  // The held snapshot is untouched; the new one sees the commit.
  EXPECT_EQ(before->NumDocs(), 1u);
  EXPECT_EQ(index.Snapshot()->NumDocs(), 2u);
  EXPECT_EQ(index.version(), version_before + 1);
}

TEST_F(ConcurrencyTest, VersionedIndexFailedMutationPublishesNothing) {
  VersionedIndex index;
  ASSERT_TRUE(index.AddDocument(FlattenSchema(ClinicSchema("one", 1))).ok());
  const uint64_t version_before = index.version();
  Status st = index.Apply([](InvertedIndex* idx) {
    (void)idx;
    return Status::InvalidArgument("injected");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(index.version(), version_before);
  EXPECT_EQ(index.Snapshot()->NumDocs(), 1u);
}

TEST_F(ConcurrencyTest, ReadScopeTracksActiveReaders) {
  InvertedIndex index{AnalyzerOptions{}};
  EXPECT_EQ(index.active_readers(), 0);
  {
    InvertedIndex::ReadScope outer(&index);
    EXPECT_EQ(index.active_readers(), 1);
    {
      InvertedIndex::ReadScope inner(&index);
      EXPECT_EQ(index.active_readers(), 2);
    }
    EXPECT_EQ(index.active_readers(), 1);
  }
  EXPECT_EQ(index.active_readers(), 0);
}

TEST_F(ConcurrencyTest, RepositoryViewIsPointInTime) {
  auto repo = SchemaRepository::OpenInMemory();
  SchemaId first = *repo->Insert(ClinicSchema("first"));
  std::shared_ptr<const RepositoryView> view = repo->View();
  const uint64_t version_before = view->version();
  SchemaId second = *repo->Insert(ClinicSchema("second"));
  ASSERT_TRUE(repo->Remove(first).ok());
  // The held view still resolves the removed schema and not the new one.
  EXPECT_TRUE(view->Contains(first));
  EXPECT_FALSE(view->Contains(second));
  EXPECT_TRUE(view->Get(first).ok());
  EXPECT_EQ(view->Size(), 1u);
  // The live repository reflects both mutations, with a later version.
  EXPECT_FALSE(repo->Contains(first));
  EXPECT_TRUE(repo->Contains(second));
  EXPECT_GT(repo->version(), version_before);
}

TEST_F(ConcurrencyTest, CorpusSnapshotPairsIndexAndSchemas) {
  auto corpus = MakeCorpus(3);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  std::shared_ptr<const CorpusSnapshot> before = (*corpus)->Snapshot();
  EXPECT_EQ(before->index->NumDocs(), before->schemas->Size());

  SchemaId added = *(*corpus)->Ingest(ClinicSchema("added"));
  // Old snapshot: neither side sees the commit.
  EXPECT_FALSE(before->index->ContainsDocument(added));
  EXPECT_FALSE(before->schemas->Contains(added));
  // New snapshot: both sides see it.
  std::shared_ptr<const CorpusSnapshot> after = (*corpus)->Snapshot();
  EXPECT_TRUE(after->index->ContainsDocument(added));
  EXPECT_TRUE(after->schemas->Contains(added));
  EXPECT_EQ(after->index->NumDocs(), after->schemas->Size());
  EXPECT_GT(after->version, before->version);

  ASSERT_TRUE((*corpus)->Remove(added).ok());
  // A search against the pre-remove snapshot can still resolve the id.
  EXPECT_TRUE(after->schemas->Get(added).ok());
  EXPECT_EQ((*corpus)->Snapshot()->index->NumDocs(),
            (*corpus)->Snapshot()->schemas->Size());
}

// --- the bounded executor ----------------------------------------------------

TEST_F(ConcurrencyTest, ExecutorRunsEverySubmittedTask) {
  BoundedExecutor::Options options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  BoundedExecutor executor(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(executor
                    .TrySubmit([&ran](bool cancelled) {
                      if (!cancelled) ran.fetch_add(1);
                    })
                    .ok());
  }
  EXPECT_TRUE(executor.Shutdown(10.0).ok());
  EXPECT_EQ(ran.load(), 32);
}

TEST_F(ConcurrencyTest, ExecutorShedsBeyondQueueBound) {
  BoundedExecutor::Options options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  BoundedExecutor executor(options);

  // Wedge the single worker so submissions pile into the queue.
  std::atomic<bool> release{false};
  ASSERT_TRUE(executor
                  .TrySubmit([&release](bool cancelled) {
                    while (!cancelled && !release.load()) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                    }
                  })
                  .ok());
  // Wait until the worker picked the blocker up.
  while (executor.NumRunning() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto noop = [](bool) {};
  ASSERT_TRUE(executor.TrySubmit(noop).ok());
  ASSERT_TRUE(executor.TrySubmit(noop).ok());
  Status shed = executor.TrySubmit(noop);
  EXPECT_TRUE(shed.IsUnavailable()) << shed;
  release.store(true);
  EXPECT_TRUE(executor.Shutdown(10.0).ok());
}

TEST_F(ConcurrencyTest, ExecutorDrainDeadlineCancelsPendingTasks) {
  BoundedExecutor::Options options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  BoundedExecutor executor(options);

  std::atomic<bool> release{false};
  ASSERT_TRUE(executor
                  .TrySubmit([&release](bool cancelled) {
                    while (!cancelled && !release.load()) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                    }
                  })
                  .ok());
  while (executor.NumRunning() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<int> cancelled_count{0};
  std::atomic<int> ran_count{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(executor
                    .TrySubmit([&](bool cancelled) {
                      if (cancelled) {
                        cancelled_count.fetch_add(1);
                      } else {
                        ran_count.fetch_add(1);
                      }
                    })
                    .ok());
  }
  // Zero drain budget: pending tasks must be flushed as cancellations,
  // and the in-flight blocker is released so the join can finish.
  release.store(true);
  Status drained = executor.Shutdown(0.0);
  EXPECT_EQ(cancelled_count.load() + ran_count.load(), 3);
  if (cancelled_count.load() > 0) {
    EXPECT_TRUE(drained.IsUnavailable()) << drained;
  }
  // Wedged afterwards, and Shutdown is idempotent.
  EXPECT_TRUE(executor.wedged());
  EXPECT_TRUE(executor.TrySubmit([](bool) {}).IsUnavailable());
  EXPECT_EQ(executor.Shutdown(1.0).code(), drained.code());
}

// --- admission control -------------------------------------------------------

TEST_F(ConcurrencyTest, AdmissionShedsOnQueueBoundAndDeadline) {
  AdmissionOptions options;
  options.max_queue_depth = 4;
  options.num_workers = 1;
  options.initial_service_seconds = 0.1;
  AdmissionController admission(options);

  AdmissionDecision ok = admission.Admit(0, 5.0);
  EXPECT_TRUE(ok.admit);
  EXPECT_EQ(ok.deadline_seconds, 5.0);

  AdmissionDecision full = admission.Admit(4, 5.0);
  EXPECT_FALSE(full.admit);
  EXPECT_EQ(full.reason, "queue_full");
  EXPECT_GE(full.retry_after_ms, options.retry_after_base_ms);

  // Predicted wait for depth 3 at 0.1 s/request on one worker is ~0.4 s,
  // far beyond a 1 ms deadline: infeasible, shed.
  AdmissionDecision late = admission.Admit(3, 0.001);
  EXPECT_FALSE(late.admit);
  EXPECT_EQ(late.reason, "deadline");

  admission.BeginDrain();
  AdmissionDecision drained = admission.Admit(0, 5.0);
  EXPECT_FALSE(drained.admit);
  EXPECT_EQ(drained.reason, "shutting_down");
}

TEST_F(ConcurrencyTest, AdmissionEwmaTracksServiceTime) {
  AdmissionOptions options;
  options.initial_service_seconds = 0.1;
  options.ewma_alpha = 0.5;
  AdmissionController admission(options);
  EXPECT_DOUBLE_EQ(admission.PredictedServiceSeconds(), 0.1);
  admission.RecordServiceTime(0.3);
  EXPECT_NEAR(admission.PredictedServiceSeconds(), 0.2, 1e-9);
  admission.RecordServiceTime(0.2);
  EXPECT_NEAR(admission.PredictedServiceSeconds(), 0.2, 1e-9);
}

// --- the serving service -----------------------------------------------------

TEST_F(ConcurrencyTest, ServiceRequiresCorpusModeForServing) {
  auto repo = SchemaRepository::OpenInMemory();
  (void)*repo->Insert(ClinicSchema("static"));
  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  SchemrService service(repo.get(), &indexer.index());
  EXPECT_FALSE(service.StartServing().ok());
  EXPECT_FALSE(service.serving());
}

TEST_F(ConcurrencyTest, ServiceHandlesInlineWithoutServingSetup) {
  auto corpus = MakeCorpus(2);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemrService service(corpus->get());
  SearchRequest request;
  request.keywords = "patient height";
  std::string xml = service.HandleSearchXml(request);
  EXPECT_NE(xml.find("<results"), std::string::npos) << xml;
}

TEST_F(ConcurrencyTest, ServiceShedsWhenSaturated) {
  auto corpus = MakeCorpus(3);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemrService service(corpus->get());

  ServingOptions serving;
  serving.executor.num_workers = 1;
  serving.executor.queue_capacity = 1;
  serving.admission.max_queue_depth = 1;
  serving.admission.default_deadline_seconds = 10.0;
  ASSERT_TRUE(service.StartServing(serving).ok());
  EXPECT_TRUE(service.serving());

  // Each search holds its worker for >= 100 ms at the matcher fault site.
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.arg = 100;
  FaultInjector::Global().Arm("match/name", slow);

  Counter* shed_total = MetricsRegistry::Global().GetCounter(
      "schemr_requests_shed_total");
  const uint64_t shed_before = shed_total->Value();

  constexpr int kClients = 6;
  std::vector<std::string> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&service, &responses, i] {
        SearchRequest request;
        request.keywords = "patient height diagnosis";
        responses[i] = service.HandleSearchXml(request, 10.0);
      });
    }
    for (std::thread& t : clients) t.join();
  }

  size_t served = 0;
  size_t shed = 0;
  for (const std::string& xml : responses) {
    // Every response is well-formed: ranked results or an explicit
    // overload refusal with a retry hint.
    if (xml.find("<results") != std::string::npos) {
      ++served;
    } else {
      ASSERT_NE(xml.find("<error code=\"overloaded\""), std::string::npos)
          << xml;
      EXPECT_NE(xml.find("retry_after_ms="), std::string::npos) << xml;
      ++shed;
    }
  }
  EXPECT_EQ(served + shed, static_cast<size_t>(kClients));
  // One worker + one queue slot: at most 2 requests can be in the system
  // when all 6 arrive together, so at least some were refused...
  EXPECT_GT(shed, 0u);
  // ...and every refusal was counted.
  EXPECT_GE(shed_total->Value() - shed_before, shed);

  FaultInjector::Global().DisarmAll();
  EXPECT_TRUE(service.Shutdown(10.0).ok());
}

TEST_F(ConcurrencyTest, ServiceDrainsAndWedges) {
  auto corpus = MakeCorpus(2);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemrService service(corpus->get());
  ASSERT_TRUE(service.StartServing().ok());

  SearchRequest request;
  request.keywords = "patient height";
  EXPECT_NE(service.HandleSearchXml(request).find("<results"),
            std::string::npos);

  EXPECT_TRUE(service.Shutdown(10.0).ok());
  EXPECT_FALSE(service.serving());
  // Post-drain requests get the explicit shutdown refusal, not a hang.
  std::string refused = service.HandleSearchXml(request);
  EXPECT_NE(refused.find("<error code=\"shutting_down\""), std::string::npos)
      << refused;
  // Idempotent.
  EXPECT_TRUE(service.Shutdown(10.0).ok());
  // Serving cannot be restarted on a wedged service.
  EXPECT_FALSE(service.StartServing().ok());
}

TEST_F(ConcurrencyTest, ServiceDeadlineDegradesInsteadOfFailing) {
  auto corpus = MakeCorpus(4);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemrService service(corpus->get());

  // 20 ms at the matcher site against a 5 ms deadline: the engine must
  // hit its wall-clock budget and fall back to coarse-only ranking for
  // the tail, flagged degraded -- never an error.
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.arg = 20;
  FaultInjector::Global().Arm("match/name", slow);

  SearchRequest request;
  request.keywords = "patient height diagnosis";
  std::string xml = service.HandleSearchXml(request, 0.005);
  FaultInjector::Global().DisarmAll();

  ASSERT_NE(xml.find("<results"), std::string::npos) << xml;
  EXPECT_NE(xml.find("degraded=\"true\""), std::string::npos) << xml;
}

// --- search-while-ingest torture --------------------------------------------

TEST_F(ConcurrencyTest, SearchWhileIngestTorture) {
  FaultInjector::Global().EnablePerturbation(true);
  const size_t cycles = CyclesOrDefault(40);

  auto corpus_or = MakeCorpus(4);
  ASSERT_TRUE(corpus_or.ok()) << corpus_or.status();
  ServingCorpus* corpus = corpus_or->get();
  SearchEngine engine(corpus);

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> searches_run{0};
  std::atomic<size_t> search_errors{0};
  std::atomic<size_t> pairing_violations{0};

  std::thread writer([corpus, cycles, &writer_done] {
    for (size_t i = 0; i < cycles; ++i) {
      auto id = corpus->Ingest(ClinicSchema("torture_" + std::to_string(i)));
      ASSERT_TRUE(id.ok()) << id.status();
      if (i % 5 == 4) {
        // Exercise the other mutators too.
        Schema updated = ClinicSchema("torture_" + std::to_string(i));
        updated.set_id(*id);
        ASSERT_TRUE(corpus->Update(updated).ok());
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  auto reader = [corpus, &engine, &writer_done, &searches_run,
                 &search_errors, &pairing_violations] {
    SearchEngineOptions options;
    options.top_k = 5;
    // Both readers score their pools on the shared engine-owned worker
    // pool while the writer swaps snapshots under them.
    options.scoring_threads = 4;
    do {
      // Pairing invariant: in any one snapshot, index and schema view
      // describe the same corpus (every ingest adds exactly one of each).
      std::shared_ptr<const CorpusSnapshot> snap = corpus->Snapshot();
      if (snap->index->NumDocs() != snap->schemas->Size()) {
        pairing_violations.fetch_add(1);
      }
      // Snapshot isolation: a search never observes a half-published
      // corpus, so it can never fail to resolve a candidate.
      auto results = engine.SearchKeywords("patient height", options);
      if (!results.ok()) search_errors.fetch_add(1);
      searches_run.fetch_add(1);
    } while (!writer_done.load(std::memory_order_acquire));
  };
  std::thread reader_a(reader);
  std::thread reader_b(reader);

  writer.join();
  reader_a.join();
  reader_b.join();
  FaultInjector::Global().EnablePerturbation(false);

  EXPECT_EQ(search_errors.load(), 0u);
  EXPECT_EQ(pairing_violations.load(), 0u);
  EXPECT_GT(searches_run.load(), 0u);
  // Post-quiescence: everything ingested is searchable.
  std::shared_ptr<const CorpusSnapshot> final_snap = corpus->Snapshot();
  EXPECT_EQ(final_snap->index->NumDocs(), 4 + cycles);
  EXPECT_EQ(final_snap->schemas->Size(), 4 + cycles);
}

TEST_F(ConcurrencyTest, ServiceTortureUnderPerturbation) {
  FaultInjector::Global().EnablePerturbation(true);
  const size_t cycles = CyclesOrDefault(20);

  auto corpus_or = MakeCorpus(3);
  ASSERT_TRUE(corpus_or.ok()) << corpus_or.status();
  ServingCorpus* corpus = corpus_or->get();
  SchemrService service(corpus);
  ServingOptions serving;
  serving.executor.num_workers = 2;
  serving.executor.queue_capacity = 16;
  serving.admission.max_queue_depth = 16;
  // Exercise the full new surface under perturbation: parallel candidate
  // scoring inside each admitted request, plus the result cache racing
  // version bumps from the writer.
  serving.scoring_threads = 2;
  serving.result_cache_capacity = 32;
  ASSERT_TRUE(service.StartServing(serving).ok());

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> malformed{0};
  std::thread writer([corpus, cycles, &writer_done] {
    for (size_t i = 0; i < cycles; ++i) {
      auto id = corpus->Ingest(ClinicSchema("svc_" + std::to_string(i)));
      ASSERT_TRUE(id.ok()) << id.status();
    }
    writer_done.store(true, std::memory_order_release);
  });
  auto client = [&service, &writer_done, &malformed] {
    do {
      SearchRequest request;
      request.keywords = "patient height";
      std::string xml = service.HandleSearchXml(request, 5.0);
      // Overloads are acceptable under perturbation; malformed output
      // never is.
      if (xml.find("<results") == std::string::npos &&
          xml.find("<error") == std::string::npos) {
        malformed.fetch_add(1);
      }
    } while (!writer_done.load(std::memory_order_acquire));
  };
  std::thread client_a(client);
  std::thread client_b(client);
  writer.join();
  client_a.join();
  client_b.join();

  EXPECT_EQ(malformed.load(), 0u);
  // Drain while perturbation still widens the hand-off windows.
  EXPECT_TRUE(service.Shutdown(30.0).ok());
  FaultInjector::Global().EnablePerturbation(false);
}

// --- parallel scoring, score-bound pruning, result cache ---------------------

// Schemas whose attribute sets vary with `i` so the coarse TF/IDF scores
// (and with them the pruning bounds) spread out instead of collapsing to
// one value for the whole pool.
Schema VariedSchema(size_t i) {
  SchemaBuilder builder("varied_" + std::to_string(i));
  builder.Description(i % 2 == 0 ? "rural clinic records"
                                 : "hospital billing records");
  builder.Entity("patient").Attribute("height", DataType::kDouble);
  if (i % 2 == 0) builder.Attribute("gender");
  if (i % 3 == 0) builder.Attribute("diagnosis");
  builder.Entity("case")
      .Attribute("patient_id", DataType::kInt64)
      .References("patient");
  if (i % 5 == 0) builder.Attribute("treatment");
  if (i % 7 == 0) builder.Attribute("billing_code");
  return builder.Build();
}

Result<std::unique_ptr<ServingCorpus>> MakeVariedCorpus(size_t n) {
  auto corpus = ServingCorpus::Create(SchemaRepository::OpenInMemory());
  if (!corpus.ok()) return corpus.status();
  for (size_t i = 0; i < n; ++i) {
    auto id = (*corpus)->Ingest(VariedSchema(i));
    if (!id.ok()) return id.status();
  }
  return corpus;
}

void ExpectSameResults(const std::vector<SearchResult>& a,
                       const std::vector<SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].schema_id, b[i].schema_id) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
    EXPECT_EQ(a[i].coarse_score, b[i].coarse_score) << "rank " << i;
    EXPECT_EQ(a[i].tightness, b[i].tightness) << "rank " << i;
    EXPECT_EQ(a[i].num_matches, b[i].num_matches) << "rank " << i;
  }
  EXPECT_EQ(DigestResults(a), DigestResults(b));
}

TEST_F(ConcurrencyTest, ParallelScoringMatchesSerial) {
  auto corpus = MakeVariedCorpus(40);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SearchEngine engine(corpus->get());

  const std::string query = "patient height diagnosis treatment billing";
  SearchEngineOptions options;
  options.top_k = 10;
  options.extraction.pool_size = 200;

  options.scoring_threads = 1;
  auto serial = engine.SearchKeywords(query, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_FALSE(serial->empty());

  for (size_t threads : {2u, 8u}) {
    SearchEngineOptions parallel_options = options;
    parallel_options.scoring_threads = threads;
    SearchStats stats;
    parallel_options.stats = &stats;
    auto parallel = engine.SearchKeywords(query, parallel_options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_FALSE(stats.degraded);
    // Bit-identical ranked output at any thread count: every candidate is
    // scored into a pre-sized slot, so the merge order never depends on
    // the schedule.
    ExpectSameResults(*serial, *parallel);
  }
}

TEST_F(ConcurrencyTest, PruningNeverChangesTopK) {
  auto corpus = MakeVariedCorpus(60);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SearchEngine engine(corpus->get());
  const std::string query = "patient height diagnosis treatment billing";

  for (size_t threads : {1u, 4u}) {
    SearchEngineOptions unpruned;
    unpruned.top_k = 5;
    unpruned.extraction.pool_size = 200;
    unpruned.scoring_threads = threads;
    unpruned.enable_pruning = false;
    auto baseline = engine.SearchKeywords(query, unpruned);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    SearchEngineOptions pruned = unpruned;
    pruned.enable_pruning = true;
    SearchStats stats;
    pruned.stats = &stats;
    auto got = engine.SearchKeywords(query, pruned);
    ASSERT_TRUE(got.ok()) << got.status();
    // Pruning is exact: a skipped candidate provably could not enter the
    // returned window, so the ranked list (and digest) never moves.
    ExpectSameResults(*baseline, *got);
    EXPECT_FALSE(stats.degraded);
  }
}

TEST_F(ConcurrencyTest, PruningSkipsCandidatesAtHighBlend) {
  // At the default blend (0.25) the bound floor is 0.75, so pruning only
  // fires when the running top-k is nearly perfect. A coarse-heavy blend
  // makes the bound track the (spread-out) coarse scores, which is where
  // the optimization pays off -- and where this test pins it down.
  auto corpus = MakeVariedCorpus(80);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SearchEngine engine(corpus->get());
  const std::string query = "patient height diagnosis treatment billing";

  SearchEngineOptions unpruned;
  unpruned.top_k = 3;
  unpruned.extraction.pool_size = 200;
  unpruned.coarse_blend = 0.9;
  unpruned.enable_pruning = false;
  auto baseline = engine.SearchKeywords(query, unpruned);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  SearchEngineOptions pruned = unpruned;
  pruned.enable_pruning = true;
  SearchStats stats;
  pruned.stats = &stats;
  auto got = engine.SearchKeywords(query, pruned);
  ASSERT_TRUE(got.ok()) << got.status();
  ExpectSameResults(*baseline, *got);
  EXPECT_GT(stats.candidates_skipped, 0u);
  // Skipping is an optimization, never degradation.
  EXPECT_FALSE(stats.degraded);
}

TEST_F(ConcurrencyTest, MatcherFaultUnderParallelScoringBenchesOnce) {
  auto corpus = MakeVariedCorpus(24);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SearchEngine engine(corpus->get());
  const std::string query = "patient height diagnosis";

  auto run = [&engine, &query](size_t threads, SearchStats* stats) {
    FaultSpec fail;
    fail.kind = FaultKind::kError;
    FaultInjector::Global().Arm("match/name", fail);
    SearchEngineOptions options;
    options.top_k = 10;
    options.extraction.pool_size = 100;
    options.scoring_threads = threads;
    options.stats = stats;
    auto results = engine.SearchKeywords(query, options);
    FaultInjector::Global().DisarmAll();
    return results;
  };

  SearchStats serial_stats;
  auto serial = run(1, &serial_stats);
  ASSERT_TRUE(serial.ok()) << serial.status();

  SearchStats parallel_stats;
  auto parallel = run(4, &parallel_stats);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_FALSE(parallel->empty());

  // Even with several workers hitting the failing matcher concurrently,
  // the shared degradation state benches it exactly once...
  ASSERT_EQ(parallel_stats.dropped_matchers.size(), 1u)
      << parallel_stats.dropped_matchers.size() << " matchers dropped";
  EXPECT_NE(parallel_stats.dropped_matchers[0].find("name"),
            std::string::npos);
  EXPECT_TRUE(parallel_stats.degraded);
  EXPECT_EQ(serial_stats.dropped_matchers, parallel_stats.dropped_matchers);
  // ...and a failed matcher scores exactly like a benched one (zero
  // matrix, weight renormalized away), so the fault does not break
  // thread-count independence either.
  ExpectSameResults(*serial, *parallel);
}

TEST_F(ConcurrencyTest, ResultCacheHitsAndImplicitInvalidation) {
  auto corpus = MakeVariedCorpus(12);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SearchEngine engine(corpus->get());
  engine.EnableResultCache(8);
  const std::string query = "patient height diagnosis";
  SearchEngineOptions options;
  options.top_k = 5;

  SearchStats first_stats;
  options.stats = &first_stats;
  auto first = engine.SearchKeywords(query, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first_stats.cache_hit);

  SearchStats second_stats;
  options.stats = &second_stats;
  auto second = engine.SearchKeywords(query, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second_stats.cache_hit);
  ExpectSameResults(*first, *second);

  // An ingest bumps the corpus version; the key changes and the stale
  // entry is simply never hit again -- no explicit invalidation path.
  ASSERT_TRUE((*corpus)->Ingest(VariedSchema(100)).ok());
  SearchStats third_stats;
  options.stats = &third_stats;
  auto third = engine.SearchKeywords(query, options);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_FALSE(third_stats.cache_hit);

  ResultCacheStats cache_stats = engine.result_cache()->Stats();
  EXPECT_EQ(cache_stats.hits, 1u);
  EXPECT_EQ(cache_stats.misses, 2u);
  EXPECT_EQ(cache_stats.insertions, 2u);
}

TEST_F(ConcurrencyTest, ResultCacheBypassAndDegradedNeverStored) {
  auto corpus = MakeVariedCorpus(12);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SearchEngine engine(corpus->get());
  engine.EnableResultCache(8);
  const std::string query = "patient height diagnosis";

  // cache_bypass skips both the lookup and the store.
  SearchEngineOptions bypass;
  bypass.top_k = 5;
  bypass.cache_bypass = true;
  for (int i = 0; i < 2; ++i) {
    SearchStats stats;
    bypass.stats = &stats;
    auto results = engine.SearchKeywords(query, bypass);
    ASSERT_TRUE(results.ok()) << results.status();
    EXPECT_FALSE(stats.cache_hit);
  }
  EXPECT_EQ(engine.result_cache()->Stats().hits, 0u);
  EXPECT_EQ(engine.result_cache()->Stats().insertions, 0u);

  // A degraded result (benched matcher here) is best-effort, not the
  // answer: it must not be stored...
  FaultSpec fail;
  fail.kind = FaultKind::kError;
  FaultInjector::Global().Arm("match/name", fail);
  SearchEngineOptions options;
  options.top_k = 5;
  SearchStats degraded_stats;
  options.stats = &degraded_stats;
  auto degraded = engine.SearchKeywords(query, options);
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded_stats.degraded);
  EXPECT_EQ(engine.result_cache()->Stats().insertions, 0u);

  // ...so the next healthy search misses, runs the pipeline, stores, and
  // only then do hits begin.
  SearchStats healthy_stats;
  options.stats = &healthy_stats;
  auto healthy = engine.SearchKeywords(query, options);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_FALSE(healthy_stats.cache_hit);
  EXPECT_FALSE(healthy_stats.degraded);

  SearchStats hit_stats;
  options.stats = &hit_stats;
  auto hit = engine.SearchKeywords(query, options);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit_stats.cache_hit);
  ExpectSameResults(*healthy, *hit);
}

TEST_F(ConcurrencyTest, ResultCacheEvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  auto make_key = [](uint64_t fp) {
    ResultCacheKey key;
    key.fingerprint = fp;
    key.corpus_version = 7;
    key.options_hash = 11;
    return key;
  };
  auto make_results = [](SchemaId id) {
    std::vector<SearchResult> results(1);
    results[0].schema_id = id;
    return results;
  };

  cache.Put(make_key(1), make_results(1));
  cache.Put(make_key(2), make_results(2));
  // Touch key 1 so key 2 becomes least recently used.
  ASSERT_NE(cache.Get(make_key(1)), nullptr);
  cache.Put(make_key(3), make_results(3));

  EXPECT_NE(cache.Get(make_key(1)), nullptr);
  EXPECT_EQ(cache.Get(make_key(2)), nullptr);
  auto third = cache.Get(make_key(3));
  ASSERT_NE(third, nullptr);
  EXPECT_EQ((*third)[0].schema_id, 3u);

  ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);
}

// --- visualization request validation (service limits) ----------------------

TEST_F(ConcurrencyTest, VisualizationRequestsAreValidated) {
  auto corpus = MakeCorpus(1);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemaId id = (*corpus)->Snapshot()->schemas->Ids().front();
  SchemrService service(corpus->get());

  VisualizationRequest over_depth;
  over_depth.schema_id = id;
  over_depth.max_depth = 65;  // default cap is 64
  auto rejected = service.GetSchemaGraphMl(over_depth);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  VisualizationRequest bad_layout;
  bad_layout.schema_id = id;
  bad_layout.layout = "spiral";
  auto rejected_layout = service.GetSchemaGraphMl(bad_layout);
  ASSERT_FALSE(rejected_layout.ok());
  EXPECT_EQ(rejected_layout.status().code(), StatusCode::kInvalidArgument);

  VisualizationRequest good;
  good.schema_id = id;
  good.max_depth = 64;
  good.layout = "radial";
  EXPECT_TRUE(service.GetSchemaGraphMl(good).ok());
}

// --- introspection plane under churn (DESIGN.md §12) -------------------------

// The listener's handlers read every serving-plane structure (registry,
// telemetry ring, trace rings, slow-query ring, executor/admission
// gauges) while searches, ingests, and the sampler thread mutate them.
// The TSan CI job runs this at raised cycles: the endpoints must be
// data-race-free against live traffic, and every scrape must parse.
TEST_F(ConcurrencyTest, IntrospectionEndpointsUnderServingTorture) {
  FaultInjector::Global().EnablePerturbation(true);
  const size_t cycles = CyclesOrDefault(20);

  auto corpus_or = MakeCorpus(3);
  ASSERT_TRUE(corpus_or.ok()) << corpus_or.status();
  ServingCorpus* corpus = corpus_or->get();
  SchemrService service(corpus);
  ServingOptions serving;
  serving.executor.num_workers = 2;
  serving.executor.queue_capacity = 16;
  serving.admission.max_queue_depth = 16;
  serving.result_cache_capacity = 32;
  serving.introspection_port = 0;
  serving.telemetry.sample_interval_seconds = 0.01;  // sampler churns too
  serving.trace_retention.sample_every_n = 2;
  ASSERT_TRUE(service.StartServing(serving).ok());
  const int port = service.introspection()->port();
  ASSERT_GT(port, 0);

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> malformed{0};
  std::atomic<size_t> bad_scrapes{0};
  std::thread writer([corpus, cycles, &writer_done] {
    for (size_t i = 0; i < cycles; ++i) {
      auto id = corpus->Ingest(ClinicSchema("intro_" + std::to_string(i)));
      ASSERT_TRUE(id.ok()) << id.status();
    }
    writer_done.store(true, std::memory_order_release);
  });
  std::thread client([&service, &writer_done, &malformed] {
    do {
      SearchRequest request;
      request.keywords = "patient height";
      std::string xml = service.HandleSearchXml(request, 5.0);
      if (xml.find("<results") == std::string::npos &&
          xml.find("<error") == std::string::npos) {
        malformed.fetch_add(1);
      }
    } while (!writer_done.load(std::memory_order_acquire));
  });
  std::thread scraper([port, &writer_done, &bad_scrapes] {
    const char* endpoints[] = {"/metrics", "/healthz", "/statusz", "/tracez",
                               "/slowz"};
    size_t i = 0;
    do {
      auto body = HttpGet("127.0.0.1", port, endpoints[i++ % 5]);
      // A saturated handler pool answering 503 is load shedding, not a
      // bug; an empty 200 body would be.
      if (body.ok() && body->empty()) bad_scrapes.fetch_add(1);
    } while (!writer_done.load(std::memory_order_acquire));
  });
  writer.join();
  client.join();
  scraper.join();

  EXPECT_EQ(malformed.load(), 0u);
  EXPECT_EQ(bad_scrapes.load(), 0u);
  // Shutdown stops the listener; the port stops answering.
  EXPECT_TRUE(service.Shutdown(30.0).ok());
  EXPECT_FALSE(HttpGet("127.0.0.1", port, "/healthz", 1.0).ok());
  FaultInjector::Global().EnablePerturbation(false);
}

}  // namespace
}  // namespace schemr
