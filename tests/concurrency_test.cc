// Concurrency hardening tests (DESIGN.md §9): snapshot isolation of the
// index / repository / corpus, the bounded executor, admission control
// with load shedding, graceful drain, and a multithreaded
// search-while-ingest torture loop.
//
// The torture tests scale with SCHEMR_TORTURE_CYCLES (the TSan CI job
// raises it) and run with schedule perturbation enabled so snapshot-swap
// and queue hand-off windows are widened. Assertions about timing-derived
// outcomes (shedding, degradation) are deliberately loose: they check
// invariants ("every response is well-formed", "every rejection is
// counted"), not exact schedules.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/search_engine.h"
#include "core/serving_corpus.h"
#include "index/indexer.h"
#include "index/versioned_index.h"
#include "obs/metrics.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "service/admission.h"
#include "service/schemr_service.h"
#include "util/executor.h"
#include "util/fault_injection.h"

namespace schemr {
namespace {

size_t CyclesOrDefault(size_t default_cycles) {
  const char* env = std::getenv("SCHEMR_TORTURE_CYCLES");
  if (env == nullptr || *env == '\0') return default_cycles;
  size_t cycles = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  return cycles > 0 ? cycles : default_cycles;
}

Schema ClinicSchema(const std::string& name, SchemaId id = 0) {
  Schema schema =
      SchemaBuilder(name)
          .Description("rural clinic data")
          .Entity("patient")
          .Attribute("height", DataType::kDouble)
          .Attribute("gender")
          .Entity("case")
          .Attribute("patient_id", DataType::kInt64)
          .References("patient")
          .Attribute("diagnosis")
          .Build();
  schema.set_id(id);
  return schema;
}

Result<std::unique_ptr<ServingCorpus>> MakeCorpus(size_t seed_schemas) {
  auto corpus = ServingCorpus::Create(SchemaRepository::OpenInMemory());
  if (!corpus.ok()) return corpus.status();
  for (size_t i = 0; i < seed_schemas; ++i) {
    auto id = (*corpus)->Ingest(ClinicSchema("seed_" + std::to_string(i)));
    if (!id.ok()) return id.status();
  }
  return corpus;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().EnablePerturbation(false);
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    FaultInjector::Global().EnablePerturbation(false);
  }
};

// --- snapshot isolation primitives -----------------------------------------

TEST_F(ConcurrencyTest, VersionedIndexSnapshotsAreImmutable) {
  VersionedIndex index;
  ASSERT_TRUE(index.AddDocument(FlattenSchema(ClinicSchema("one", 1))).ok());
  std::shared_ptr<const InvertedIndex> before = index.Snapshot();
  const uint64_t version_before = index.version();
  ASSERT_TRUE(index.AddDocument(FlattenSchema(ClinicSchema("two", 2))).ok());
  // The held snapshot is untouched; the new one sees the commit.
  EXPECT_EQ(before->NumDocs(), 1u);
  EXPECT_EQ(index.Snapshot()->NumDocs(), 2u);
  EXPECT_EQ(index.version(), version_before + 1);
}

TEST_F(ConcurrencyTest, VersionedIndexFailedMutationPublishesNothing) {
  VersionedIndex index;
  ASSERT_TRUE(index.AddDocument(FlattenSchema(ClinicSchema("one", 1))).ok());
  const uint64_t version_before = index.version();
  Status st = index.Apply([](InvertedIndex* idx) {
    (void)idx;
    return Status::InvalidArgument("injected");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(index.version(), version_before);
  EXPECT_EQ(index.Snapshot()->NumDocs(), 1u);
}

TEST_F(ConcurrencyTest, ReadScopeTracksActiveReaders) {
  InvertedIndex index{AnalyzerOptions{}};
  EXPECT_EQ(index.active_readers(), 0);
  {
    InvertedIndex::ReadScope outer(&index);
    EXPECT_EQ(index.active_readers(), 1);
    {
      InvertedIndex::ReadScope inner(&index);
      EXPECT_EQ(index.active_readers(), 2);
    }
    EXPECT_EQ(index.active_readers(), 1);
  }
  EXPECT_EQ(index.active_readers(), 0);
}

TEST_F(ConcurrencyTest, RepositoryViewIsPointInTime) {
  auto repo = SchemaRepository::OpenInMemory();
  SchemaId first = *repo->Insert(ClinicSchema("first"));
  std::shared_ptr<const RepositoryView> view = repo->View();
  const uint64_t version_before = view->version();
  SchemaId second = *repo->Insert(ClinicSchema("second"));
  ASSERT_TRUE(repo->Remove(first).ok());
  // The held view still resolves the removed schema and not the new one.
  EXPECT_TRUE(view->Contains(first));
  EXPECT_FALSE(view->Contains(second));
  EXPECT_TRUE(view->Get(first).ok());
  EXPECT_EQ(view->Size(), 1u);
  // The live repository reflects both mutations, with a later version.
  EXPECT_FALSE(repo->Contains(first));
  EXPECT_TRUE(repo->Contains(second));
  EXPECT_GT(repo->version(), version_before);
}

TEST_F(ConcurrencyTest, CorpusSnapshotPairsIndexAndSchemas) {
  auto corpus = MakeCorpus(3);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  std::shared_ptr<const CorpusSnapshot> before = (*corpus)->Snapshot();
  EXPECT_EQ(before->index->NumDocs(), before->schemas->Size());

  SchemaId added = *(*corpus)->Ingest(ClinicSchema("added"));
  // Old snapshot: neither side sees the commit.
  EXPECT_FALSE(before->index->ContainsDocument(added));
  EXPECT_FALSE(before->schemas->Contains(added));
  // New snapshot: both sides see it.
  std::shared_ptr<const CorpusSnapshot> after = (*corpus)->Snapshot();
  EXPECT_TRUE(after->index->ContainsDocument(added));
  EXPECT_TRUE(after->schemas->Contains(added));
  EXPECT_EQ(after->index->NumDocs(), after->schemas->Size());
  EXPECT_GT(after->version, before->version);

  ASSERT_TRUE((*corpus)->Remove(added).ok());
  // A search against the pre-remove snapshot can still resolve the id.
  EXPECT_TRUE(after->schemas->Get(added).ok());
  EXPECT_EQ((*corpus)->Snapshot()->index->NumDocs(),
            (*corpus)->Snapshot()->schemas->Size());
}

// --- the bounded executor ----------------------------------------------------

TEST_F(ConcurrencyTest, ExecutorRunsEverySubmittedTask) {
  BoundedExecutor::Options options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  BoundedExecutor executor(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(executor
                    .TrySubmit([&ran](bool cancelled) {
                      if (!cancelled) ran.fetch_add(1);
                    })
                    .ok());
  }
  EXPECT_TRUE(executor.Shutdown(10.0).ok());
  EXPECT_EQ(ran.load(), 32);
}

TEST_F(ConcurrencyTest, ExecutorShedsBeyondQueueBound) {
  BoundedExecutor::Options options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  BoundedExecutor executor(options);

  // Wedge the single worker so submissions pile into the queue.
  std::atomic<bool> release{false};
  ASSERT_TRUE(executor
                  .TrySubmit([&release](bool cancelled) {
                    while (!cancelled && !release.load()) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                    }
                  })
                  .ok());
  // Wait until the worker picked the blocker up.
  while (executor.NumRunning() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto noop = [](bool) {};
  ASSERT_TRUE(executor.TrySubmit(noop).ok());
  ASSERT_TRUE(executor.TrySubmit(noop).ok());
  Status shed = executor.TrySubmit(noop);
  EXPECT_TRUE(shed.IsUnavailable()) << shed;
  release.store(true);
  EXPECT_TRUE(executor.Shutdown(10.0).ok());
}

TEST_F(ConcurrencyTest, ExecutorDrainDeadlineCancelsPendingTasks) {
  BoundedExecutor::Options options;
  options.num_workers = 1;
  options.queue_capacity = 8;
  BoundedExecutor executor(options);

  std::atomic<bool> release{false};
  ASSERT_TRUE(executor
                  .TrySubmit([&release](bool cancelled) {
                    while (!cancelled && !release.load()) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(1));
                    }
                  })
                  .ok());
  while (executor.NumRunning() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::atomic<int> cancelled_count{0};
  std::atomic<int> ran_count{0};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(executor
                    .TrySubmit([&](bool cancelled) {
                      if (cancelled) {
                        cancelled_count.fetch_add(1);
                      } else {
                        ran_count.fetch_add(1);
                      }
                    })
                    .ok());
  }
  // Zero drain budget: pending tasks must be flushed as cancellations,
  // and the in-flight blocker is released so the join can finish.
  release.store(true);
  Status drained = executor.Shutdown(0.0);
  EXPECT_EQ(cancelled_count.load() + ran_count.load(), 3);
  if (cancelled_count.load() > 0) {
    EXPECT_TRUE(drained.IsUnavailable()) << drained;
  }
  // Wedged afterwards, and Shutdown is idempotent.
  EXPECT_TRUE(executor.wedged());
  EXPECT_TRUE(executor.TrySubmit([](bool) {}).IsUnavailable());
  EXPECT_EQ(executor.Shutdown(1.0).code(), drained.code());
}

// --- admission control -------------------------------------------------------

TEST_F(ConcurrencyTest, AdmissionShedsOnQueueBoundAndDeadline) {
  AdmissionOptions options;
  options.max_queue_depth = 4;
  options.num_workers = 1;
  options.initial_service_seconds = 0.1;
  AdmissionController admission(options);

  AdmissionDecision ok = admission.Admit(0, 5.0);
  EXPECT_TRUE(ok.admit);
  EXPECT_EQ(ok.deadline_seconds, 5.0);

  AdmissionDecision full = admission.Admit(4, 5.0);
  EXPECT_FALSE(full.admit);
  EXPECT_EQ(full.reason, "queue_full");
  EXPECT_GE(full.retry_after_ms, options.retry_after_base_ms);

  // Predicted wait for depth 3 at 0.1 s/request on one worker is ~0.4 s,
  // far beyond a 1 ms deadline: infeasible, shed.
  AdmissionDecision late = admission.Admit(3, 0.001);
  EXPECT_FALSE(late.admit);
  EXPECT_EQ(late.reason, "deadline");

  admission.BeginDrain();
  AdmissionDecision drained = admission.Admit(0, 5.0);
  EXPECT_FALSE(drained.admit);
  EXPECT_EQ(drained.reason, "shutting_down");
}

TEST_F(ConcurrencyTest, AdmissionEwmaTracksServiceTime) {
  AdmissionOptions options;
  options.initial_service_seconds = 0.1;
  options.ewma_alpha = 0.5;
  AdmissionController admission(options);
  EXPECT_DOUBLE_EQ(admission.PredictedServiceSeconds(), 0.1);
  admission.RecordServiceTime(0.3);
  EXPECT_NEAR(admission.PredictedServiceSeconds(), 0.2, 1e-9);
  admission.RecordServiceTime(0.2);
  EXPECT_NEAR(admission.PredictedServiceSeconds(), 0.2, 1e-9);
}

// --- the serving service -----------------------------------------------------

TEST_F(ConcurrencyTest, ServiceRequiresCorpusModeForServing) {
  auto repo = SchemaRepository::OpenInMemory();
  (void)*repo->Insert(ClinicSchema("static"));
  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  SchemrService service(repo.get(), &indexer.index());
  EXPECT_FALSE(service.StartServing().ok());
  EXPECT_FALSE(service.serving());
}

TEST_F(ConcurrencyTest, ServiceHandlesInlineWithoutServingSetup) {
  auto corpus = MakeCorpus(2);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemrService service(corpus->get());
  SearchRequest request;
  request.keywords = "patient height";
  std::string xml = service.HandleSearchXml(request);
  EXPECT_NE(xml.find("<results"), std::string::npos) << xml;
}

TEST_F(ConcurrencyTest, ServiceShedsWhenSaturated) {
  auto corpus = MakeCorpus(3);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemrService service(corpus->get());

  ServingOptions serving;
  serving.executor.num_workers = 1;
  serving.executor.queue_capacity = 1;
  serving.admission.max_queue_depth = 1;
  serving.admission.default_deadline_seconds = 10.0;
  ASSERT_TRUE(service.StartServing(serving).ok());
  EXPECT_TRUE(service.serving());

  // Each search holds its worker for >= 100 ms at the matcher fault site.
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.arg = 100;
  FaultInjector::Global().Arm("match/name", slow);

  Counter* shed_total = MetricsRegistry::Global().GetCounter(
      "schemr_requests_shed_total");
  const uint64_t shed_before = shed_total->Value();

  constexpr int kClients = 6;
  std::vector<std::string> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&service, &responses, i] {
        SearchRequest request;
        request.keywords = "patient height diagnosis";
        responses[i] = service.HandleSearchXml(request, 10.0);
      });
    }
    for (std::thread& t : clients) t.join();
  }

  size_t served = 0;
  size_t shed = 0;
  for (const std::string& xml : responses) {
    // Every response is well-formed: ranked results or an explicit
    // overload refusal with a retry hint.
    if (xml.find("<results") != std::string::npos) {
      ++served;
    } else {
      ASSERT_NE(xml.find("<error code=\"overloaded\""), std::string::npos)
          << xml;
      EXPECT_NE(xml.find("retry_after_ms="), std::string::npos) << xml;
      ++shed;
    }
  }
  EXPECT_EQ(served + shed, static_cast<size_t>(kClients));
  // One worker + one queue slot: at most 2 requests can be in the system
  // when all 6 arrive together, so at least some were refused...
  EXPECT_GT(shed, 0u);
  // ...and every refusal was counted.
  EXPECT_GE(shed_total->Value() - shed_before, shed);

  FaultInjector::Global().DisarmAll();
  EXPECT_TRUE(service.Shutdown(10.0).ok());
}

TEST_F(ConcurrencyTest, ServiceDrainsAndWedges) {
  auto corpus = MakeCorpus(2);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemrService service(corpus->get());
  ASSERT_TRUE(service.StartServing().ok());

  SearchRequest request;
  request.keywords = "patient height";
  EXPECT_NE(service.HandleSearchXml(request).find("<results"),
            std::string::npos);

  EXPECT_TRUE(service.Shutdown(10.0).ok());
  EXPECT_FALSE(service.serving());
  // Post-drain requests get the explicit shutdown refusal, not a hang.
  std::string refused = service.HandleSearchXml(request);
  EXPECT_NE(refused.find("<error code=\"shutting_down\""), std::string::npos)
      << refused;
  // Idempotent.
  EXPECT_TRUE(service.Shutdown(10.0).ok());
  // Serving cannot be restarted on a wedged service.
  EXPECT_FALSE(service.StartServing().ok());
}

TEST_F(ConcurrencyTest, ServiceDeadlineDegradesInsteadOfFailing) {
  auto corpus = MakeCorpus(4);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemrService service(corpus->get());

  // 20 ms at the matcher site against a 5 ms deadline: the engine must
  // hit its wall-clock budget and fall back to coarse-only ranking for
  // the tail, flagged degraded -- never an error.
  FaultSpec slow;
  slow.kind = FaultKind::kDelay;
  slow.arg = 20;
  FaultInjector::Global().Arm("match/name", slow);

  SearchRequest request;
  request.keywords = "patient height diagnosis";
  std::string xml = service.HandleSearchXml(request, 0.005);
  FaultInjector::Global().DisarmAll();

  ASSERT_NE(xml.find("<results"), std::string::npos) << xml;
  EXPECT_NE(xml.find("degraded=\"true\""), std::string::npos) << xml;
}

// --- search-while-ingest torture --------------------------------------------

TEST_F(ConcurrencyTest, SearchWhileIngestTorture) {
  FaultInjector::Global().EnablePerturbation(true);
  const size_t cycles = CyclesOrDefault(40);

  auto corpus_or = MakeCorpus(4);
  ASSERT_TRUE(corpus_or.ok()) << corpus_or.status();
  ServingCorpus* corpus = corpus_or->get();
  SearchEngine engine(corpus);

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> searches_run{0};
  std::atomic<size_t> search_errors{0};
  std::atomic<size_t> pairing_violations{0};

  std::thread writer([corpus, cycles, &writer_done] {
    for (size_t i = 0; i < cycles; ++i) {
      auto id = corpus->Ingest(ClinicSchema("torture_" + std::to_string(i)));
      ASSERT_TRUE(id.ok()) << id.status();
      if (i % 5 == 4) {
        // Exercise the other mutators too.
        Schema updated = ClinicSchema("torture_" + std::to_string(i));
        updated.set_id(*id);
        ASSERT_TRUE(corpus->Update(updated).ok());
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  auto reader = [corpus, &engine, &writer_done, &searches_run,
                 &search_errors, &pairing_violations] {
    SearchEngineOptions options;
    options.top_k = 5;
    do {
      // Pairing invariant: in any one snapshot, index and schema view
      // describe the same corpus (every ingest adds exactly one of each).
      std::shared_ptr<const CorpusSnapshot> snap = corpus->Snapshot();
      if (snap->index->NumDocs() != snap->schemas->Size()) {
        pairing_violations.fetch_add(1);
      }
      // Snapshot isolation: a search never observes a half-published
      // corpus, so it can never fail to resolve a candidate.
      auto results = engine.SearchKeywords("patient height", options);
      if (!results.ok()) search_errors.fetch_add(1);
      searches_run.fetch_add(1);
    } while (!writer_done.load(std::memory_order_acquire));
  };
  std::thread reader_a(reader);
  std::thread reader_b(reader);

  writer.join();
  reader_a.join();
  reader_b.join();
  FaultInjector::Global().EnablePerturbation(false);

  EXPECT_EQ(search_errors.load(), 0u);
  EXPECT_EQ(pairing_violations.load(), 0u);
  EXPECT_GT(searches_run.load(), 0u);
  // Post-quiescence: everything ingested is searchable.
  std::shared_ptr<const CorpusSnapshot> final_snap = corpus->Snapshot();
  EXPECT_EQ(final_snap->index->NumDocs(), 4 + cycles);
  EXPECT_EQ(final_snap->schemas->Size(), 4 + cycles);
}

TEST_F(ConcurrencyTest, ServiceTortureUnderPerturbation) {
  FaultInjector::Global().EnablePerturbation(true);
  const size_t cycles = CyclesOrDefault(20);

  auto corpus_or = MakeCorpus(3);
  ASSERT_TRUE(corpus_or.ok()) << corpus_or.status();
  ServingCorpus* corpus = corpus_or->get();
  SchemrService service(corpus);
  ServingOptions serving;
  serving.executor.num_workers = 2;
  serving.executor.queue_capacity = 16;
  serving.admission.max_queue_depth = 16;
  ASSERT_TRUE(service.StartServing(serving).ok());

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> malformed{0};
  std::thread writer([corpus, cycles, &writer_done] {
    for (size_t i = 0; i < cycles; ++i) {
      auto id = corpus->Ingest(ClinicSchema("svc_" + std::to_string(i)));
      ASSERT_TRUE(id.ok()) << id.status();
    }
    writer_done.store(true, std::memory_order_release);
  });
  auto client = [&service, &writer_done, &malformed] {
    do {
      SearchRequest request;
      request.keywords = "patient height";
      std::string xml = service.HandleSearchXml(request, 5.0);
      // Overloads are acceptable under perturbation; malformed output
      // never is.
      if (xml.find("<results") == std::string::npos &&
          xml.find("<error") == std::string::npos) {
        malformed.fetch_add(1);
      }
    } while (!writer_done.load(std::memory_order_acquire));
  };
  std::thread client_a(client);
  std::thread client_b(client);
  writer.join();
  client_a.join();
  client_b.join();

  EXPECT_EQ(malformed.load(), 0u);
  // Drain while perturbation still widens the hand-off windows.
  EXPECT_TRUE(service.Shutdown(30.0).ok());
  FaultInjector::Global().EnablePerturbation(false);
}

// --- visualization request validation (service limits) ----------------------

TEST_F(ConcurrencyTest, VisualizationRequestsAreValidated) {
  auto corpus = MakeCorpus(1);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  SchemaId id = (*corpus)->Snapshot()->schemas->Ids().front();
  SchemrService service(corpus->get());

  VisualizationRequest over_depth;
  over_depth.schema_id = id;
  over_depth.max_depth = 65;  // default cap is 64
  auto rejected = service.GetSchemaGraphMl(over_depth);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  VisualizationRequest bad_layout;
  bad_layout.schema_id = id;
  bad_layout.layout = "spiral";
  auto rejected_layout = service.GetSchemaGraphMl(bad_layout);
  ASSERT_FALSE(rejected_layout.ok());
  EXPECT_EQ(rejected_layout.status().code(), StatusCode::kInvalidArgument);

  VisualizationRequest good;
  good.schema_id = id;
  good.max_depth = 64;
  good.layout = "radial";
  EXPECT_TRUE(service.GetSchemaGraphMl(good).ok());
}

}  // namespace
}  // namespace schemr
