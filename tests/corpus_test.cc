// Tests for the corpus tooling: vocabulary consistency, name variants,
// schema generation (property: everything generated validates), the
// WebTables filter pipeline, query workloads and relevance maps.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "corpus/name_variants.h"
#include "corpus/query_workload.h"
#include "corpus/schema_generator.h"
#include "corpus/vocabulary.h"
#include "corpus/web_tables.h"
#include "parse/ddl_parser.h"

namespace schemr {
namespace {

// --- vocabulary -------------------------------------------------------------------

TEST(VocabularyTest, ConceptLibraryIsConsistent) {
  const auto& concepts = BuiltinConcepts();
  ASSERT_GE(concepts.size(), 20u);
  std::set<std::string> ids;
  std::set<std::string> domains;
  for (const DomainConcept& dc : concepts) {
    EXPECT_TRUE(ids.insert(dc.id).second) << "duplicate id " << dc.id;
    domains.insert(dc.domain);
    EXPECT_FALSE(dc.entities.empty()) << dc.id;
    std::set<std::string> entity_names;
    for (const ConceptEntity& entity : dc.entities) {
      EXPECT_TRUE(entity_names.insert(entity.name).second)
          << "duplicate entity in " << dc.id;
      EXPECT_FALSE(entity.attributes.empty()) << dc.id << "." << entity.name;
      // Every attribute name is canonical snake_case (lowercase + '_').
      for (const ConceptAttribute& attr : entity.attributes) {
        for (char c : attr.name) {
          EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_' ||
                      (c >= '0' && c <= '9'))
              << dc.id << "." << entity.name << "." << attr.name;
        }
      }
      // FK targets reference entities of the same concept.
      for (const std::string& target : entity.references) {
        bool found = false;
        for (const ConceptEntity& other : dc.entities) {
          if (other.name == target) found = true;
        }
        EXPECT_TRUE(found) << dc.id << ": dangling reference " << target;
      }
    }
  }
  EXPECT_GE(domains.size(), 5u);
}

TEST(VocabularyTest, LookupHelpers) {
  EXPECT_NE(FindConcept("health.clinic_visits"), nullptr);
  EXPECT_EQ(FindConcept("nope.nothing"), nullptr);
  EXPECT_FALSE(ConceptsInDomain("health").empty());
  EXPECT_TRUE(ConceptsInDomain("astrology").empty());
  EXPECT_FALSE(GenericAttributePool().empty());
}

TEST(VocabularyTest, AbbreviationsAndSynonyms) {
  auto pat = AbbreviationsOf("patient");
  EXPECT_NE(std::find(pat.begin(), pat.end(), "pat"), pat.end());
  EXPECT_TRUE(AbbreviationsOf("xyzzy").empty());
  // Synonyms are symmetric.
  auto of_gender = SynonymsOf("gender");
  auto of_sex = SynonymsOf("sex");
  EXPECT_NE(std::find(of_gender.begin(), of_gender.end(), "sex"),
            of_gender.end());
  EXPECT_NE(std::find(of_sex.begin(), of_sex.end(), "gender"), of_sex.end());
}

// --- name variants ----------------------------------------------------------------

TEST(NameVariantsTest, AllStylesRender) {
  std::vector<std::string> words = {"date", "of", "birth"};
  EXPECT_EQ(RenderName(words, NameStyle::kSnake), "date_of_birth");
  EXPECT_EQ(RenderName(words, NameStyle::kCamel), "dateOfBirth");
  EXPECT_EQ(RenderName(words, NameStyle::kPascal), "DateOfBirth");
  EXPECT_EQ(RenderName(words, NameStyle::kKebab), "date-of-birth");
  EXPECT_EQ(RenderName(words, NameStyle::kDotted), "date.of.birth");
  EXPECT_EQ(RenderName(words, NameStyle::kUpperSnake), "DATE_OF_BIRTH");
  EXPECT_EQ(RenderName(words, NameStyle::kSquashed), "dateofbirth");
  EXPECT_EQ(RenderName(words, NameStyle::kSpaced), "date of birth");
}

TEST(NameVariantsTest, CanonicalWordsInvertsSnake) {
  EXPECT_EQ(CanonicalWords("date_of_birth"),
            (std::vector<std::string>{"date", "of", "birth"}));
  EXPECT_EQ(CanonicalWords("single"), (std::vector<std::string>{"single"}));
}

TEST(NameVariantsTest, DeterministicAndNeverEmpty) {
  VariantOptions options;
  options.abbreviation_prob = 0.5;
  options.synonym_prob = 0.5;
  options.truncation_prob = 0.3;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng a(seed), b(seed);
    std::string va = MakeNameVariant("patient_date_of_birth", &a, options);
    std::string vb = MakeNameVariant("patient_date_of_birth", &b, options);
    EXPECT_EQ(va, vb);
    EXPECT_FALSE(va.empty());
  }
  // Pure connectives survive as themselves.
  Rng rng(1);
  EXPECT_FALSE(MakeNameVariant("of", &rng, options).empty());
}

TEST(NameVariantsTest, ZeroNoiseIsIdentityInSnake) {
  VariantOptions options;
  options.abbreviation_prob = 0.0;
  options.synonym_prob = 0.0;
  options.truncation_prob = 0.0;
  options.connective_drop_prob = 0.0;
  options.style = NameStyle::kSnake;
  Rng rng(7);
  EXPECT_EQ(MakeNameVariant("date_of_birth", &rng, options), "date_of_birth");
}

TEST(NameVariantsTest, AbbreviationProbabilityOneAbbreviates) {
  VariantOptions options;
  options.abbreviation_prob = 1.0;
  options.style = NameStyle::kSnake;
  Rng rng(3);
  std::string v = MakeNameVariant("patient", &rng, options);
  auto abbrevs = AbbreviationsOf("patient");
  EXPECT_NE(std::find(abbrevs.begin(), abbrevs.end(), v), abbrevs.end())
      << v;
}

// --- schema generator ---------------------------------------------------------------

TEST(SchemaGeneratorTest, CorpusIsValidAndDeterministic) {
  CorpusOptions options;
  options.num_schemas = 120;
  options.seed = 99;
  std::vector<GeneratedSchema> corpus = GenerateCorpus(options);
  ASSERT_EQ(corpus.size(), 120u);
  for (const GeneratedSchema& g : corpus) {
    EXPECT_TRUE(g.schema.Validate().ok()) << g.schema.name();
    EXPECT_NE(FindConcept(g.concept_id), nullptr);
    EXPECT_GE(g.schema.NumEntities(), 1u);
    EXPECT_GE(g.schema.NumAttributes(), 1u);
    EXPECT_FALSE(g.schema.name().empty());
  }
  // Same seed, same corpus.
  std::vector<GeneratedSchema> again = GenerateCorpus(options);
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(corpus[i].schema, again[i].schema);
    EXPECT_EQ(corpus[i].concept_id, again[i].concept_id);
  }
  // Different seed, different corpus.
  options.seed = 100;
  std::vector<GeneratedSchema> other = GenerateCorpus(options);
  size_t same = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    same += (corpus[i].schema == other[i].schema);
  }
  EXPECT_LT(same, corpus.size() / 4);
}

TEST(SchemaGeneratorTest, CoversManyConceptsWithSkew) {
  CorpusOptions options;
  options.num_schemas = 500;
  options.seed = 5;
  std::unordered_map<std::string, size_t> counts;
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    ++counts[g.concept_id];
  }
  EXPECT_GE(counts.size(), 10u);  // broad coverage
  size_t max_count = 0;
  for (const auto& [id, n] : counts) max_count = std::max(max_count, n);
  EXPECT_GT(max_count, 500 / counts.size())  // and popularity skew
      << "expected a head concept above the uniform share";
}

TEST(SchemaGeneratorTest, ForeignKeysSurviveWhenEntitiesKept) {
  CorpusOptions options;
  options.num_schemas = 200;
  options.seed = 17;
  options.entity_dropout = 0.0;  // keep all entities
  options.name_noise.abbreviation_prob = 0.0;
  options.name_noise.synonym_prob = 0.0;
  options.name_noise.truncation_prob = 0.0;
  size_t with_fk = 0;
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    const DomainConcept* dc = FindConcept(g.concept_id);
    size_t expected_refs = 0;
    for (const ConceptEntity& e : dc->entities) {
      expected_refs += e.references.size();
    }
    if (expected_refs > 0 && !g.schema.foreign_keys().empty()) ++with_fk;
  }
  EXPECT_GT(with_fk, 50u);
}

// --- web tables -----------------------------------------------------------------------

TEST(WebTablesTest, FilterRulePredicates) {
  RawWebTable clean{"patients", {"name", "height", "gender", "village"}};
  RawWebTable junk{"t", {"price ($)", "name"}};
  RawWebTable tiny{"t", {"a", "b", "c"}};
  EXPECT_FALSE(IsNonAlphabeticTable(clean));
  EXPECT_TRUE(IsNonAlphabeticTable(junk));
  EXPECT_FALSE(IsTrivialTable(clean));
  EXPECT_TRUE(IsTrivialTable(tiny));  // exactly 3 columns: "three or less"
  RawWebTable four{"t", {"a", "b", "c", "d"}};
  EXPECT_FALSE(IsTrivialTable(four));
}

TEST(WebTablesTest, FingerprintIgnoresOrderAndCase) {
  RawWebTable a{"People", {"Name", "Age"}};
  RawWebTable b{"people", {"age", "name"}};
  RawWebTable c{"people", {"age", "height"}};
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b));
  EXPECT_NE(TableFingerprint(a), TableFingerprint(c));
}

TEST(WebTablesTest, FilterAppliesAllThreeRules) {
  std::vector<RawWebTable> tables = {
      {"patients", {"name", "height", "gender", "village"}},  // dup 1
      {"patients", {"name", "height", "gender", "village"}},  // dup 2
      {"junk", {"a+b", "c", "d", "e"}},                        // non-alpha
      {"tiny", {"a", "b"}},                                    // trivial
      {"lonely", {"alpha", "beta", "gamma", "delta"}},         // singleton
  };
  WebTableFilterStats stats;
  std::vector<Schema> schemas = FilterWebTables(tables, &stats);
  EXPECT_EQ(stats.input, 5u);
  EXPECT_EQ(stats.dropped_non_alphabetic, 1u);
  EXPECT_EQ(stats.dropped_trivial, 1u);
  EXPECT_EQ(stats.dropped_singleton, 1u);
  EXPECT_EQ(stats.duplicates_collapsed, 1u);
  EXPECT_EQ(stats.kept, 1u);
  ASSERT_EQ(schemas.size(), 1u);
  EXPECT_EQ(schemas[0].name(), "patients");
  EXPECT_EQ(schemas[0].NumEntities(), 1u);
  EXPECT_EQ(schemas[0].NumAttributes(), 4u);
  EXPECT_TRUE(schemas[0].Validate().ok());
}

TEST(WebTablesTest, GeneratedCrawlFiltersRealistically) {
  WebTableGenOptions options;
  options.num_tables = 5000;
  options.seed = 3;
  std::vector<RawWebTable> raw = GenerateRawWebTables(options);
  ASSERT_EQ(raw.size(), 5000u);
  WebTableFilterStats stats;
  std::vector<Schema> schemas = FilterWebTables(raw, &stats);
  // All rules fire on a realistic crawl.
  EXPECT_GT(stats.dropped_non_alphabetic, 100u);
  EXPECT_GT(stats.dropped_trivial, 100u);
  EXPECT_GT(stats.dropped_singleton, 10u);
  EXPECT_GT(stats.kept, 20u);
  EXPECT_EQ(stats.kept, schemas.size());
  for (const Schema& schema : schemas) {
    EXPECT_TRUE(schema.Validate().ok());
    EXPECT_GT(schema.NumAttributes(), 3u);
  }
}

// --- query workload ----------------------------------------------------------------------

TEST(QueryWorkloadTest, QueriesAreParsableAndGrounded) {
  QueryWorkloadOptions options;
  options.num_queries = 40;
  options.fragment_prob = 0.5;
  std::vector<WorkloadQuery> workload = GenerateQueryWorkload(options);
  ASSERT_EQ(workload.size(), 40u);
  size_t with_fragment = 0;
  for (const WorkloadQuery& q : workload) {
    EXPECT_NE(FindConcept(q.concept_id), nullptr);
    EXPECT_FALSE(q.keywords.empty());
    if (!q.ddl_fragment.empty()) {
      ++with_fragment;
      auto parsed = ParseDdl(q.ddl_fragment, "fragment");
      EXPECT_TRUE(parsed.ok()) << parsed.status() << "\n" << q.ddl_fragment;
      EXPECT_GE(parsed->NumAttributes(), 1u);
    }
  }
  EXPECT_GT(with_fragment, 5u);
  EXPECT_LT(with_fragment, 35u);
}

TEST(QueryWorkloadTest, RelevanceMapGroupsByConcept) {
  CorpusOptions options;
  options.num_schemas = 50;
  std::vector<GeneratedSchema> corpus = GenerateCorpus(options);
  std::vector<SchemaId> ids;
  for (size_t i = 0; i < corpus.size(); ++i) ids.push_back(i + 1000);
  auto map = BuildRelevanceMap(corpus, ids);
  size_t total = 0;
  for (const auto& [concept_id, set] : map) {
    EXPECT_NE(FindConcept(concept_id), nullptr);
    total += set.size();
  }
  EXPECT_EQ(total, corpus.size());
}

}  // namespace
}  // namespace schemr
