// Tests for the service layer: search XML responses, GraphML/SVG
// visualization responses, and the HTML report -- the wire formats of the
// paper's architecture diagram.

#include <gtest/gtest.h>

#include <cerrno>

#include "index/indexer.h"
#include "parse/xml_parser.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "service/schemr_service.h"
#include "util/fault_injection.h"

namespace schemr {
namespace {

struct ServiceFixture {
  std::unique_ptr<SchemaRepository> repo;
  std::unique_ptr<Indexer> indexer;
  std::unique_ptr<SchemrService> service;
  SchemaId clinic_id = 0;
};

ServiceFixture MakeFixture() {
  ServiceFixture f;
  f.repo = SchemaRepository::OpenInMemory();
  Schema clinic = SchemaBuilder("clinic")
                      .Description("rural clinic data")
                      .Entity("patient")
                      .Attribute("height", DataType::kDouble)
                      .Attribute("gender")
                      .Entity("case")
                      .Attribute("patient_id", DataType::kInt64)
                      .References("patient")
                      .Attribute("diagnosis")
                      .Build();
  f.clinic_id = *f.repo->Insert(std::move(clinic));
  (void)*f.repo->Insert(SchemaBuilder("shop")
                            .Entity("customer")
                            .Attribute("email")
                            .Build());
  f.indexer = std::make_unique<Indexer>();
  EXPECT_TRUE(f.indexer->RebuildFromRepository(*f.repo).ok());
  f.service =
      std::make_unique<SchemrService>(f.repo.get(), &f.indexer->index());
  return f;
}

TEST(SchemrServiceTest, SearchReturnsStructuredResults) {
  ServiceFixture f = MakeFixture();
  SearchRequest request;
  request.keywords = "patient height diagnosis";
  auto results = f.service->Search(request);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_FALSE(results->empty());
  EXPECT_EQ((*results)[0].schema_id, f.clinic_id);
  EXPECT_EQ((*results)[0].description, "rural clinic data");
}

TEST(SchemrServiceTest, SearchRespectsRequestKnobs) {
  ServiceFixture f = MakeFixture();
  SearchRequest request;
  request.keywords = "patient customer email height";
  request.top_k = 1;
  auto results = f.service->Search(request);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(SchemrServiceTest, SearchXmlIsWellFormedAndComplete) {
  ServiceFixture f = MakeFixture();
  SearchRequest request;
  request.keywords = "patient height";
  request.fragment = "CREATE TABLE patient (gender VARCHAR(8));";
  auto xml = f.service->SearchXml(request);
  ASSERT_TRUE(xml.ok()) << xml.status();

  auto doc = ParseXml(*xml);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->name, "results");
  ASSERT_NE(doc->root->FindAttribute("count"), nullptr);
  auto results = doc->root->ChildrenNamed("result");
  ASSERT_FALSE(results.empty());
  const XmlNode* first = results[0];
  for (const char* attr :
       {"id", "name", "score", "matches", "entities", "attributes"}) {
    EXPECT_NE(first->FindAttribute(attr), nullptr) << attr;
  }
  // Matched elements listed for client-side coloring.
  EXPECT_FALSE(first->ChildrenNamed("element").empty());
}

TEST(SchemrServiceTest, ExplainEmbedsOneSpanPerEnabledPhase) {
  ServiceFixture f = MakeFixture();
  SearchRequest request;
  request.keywords = "patient height";
  request.explain = true;
  auto xml = f.service->SearchXml(request);
  ASSERT_TRUE(xml.ok()) << xml.status();
  auto doc = ParseXml(*xml);
  ASSERT_TRUE(doc.ok()) << doc.status();

  const XmlNode* explain = doc->root->FirstChild("explain");
  ASSERT_NE(explain, nullptr);
  auto roots = explain->ChildrenNamed("span");
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(*roots[0]->FindAttribute("name"), "search");

  // Collect the phase spans nested under the root search span.
  auto count_phase = [&](const XmlNode* node, const std::string& name) {
    size_t n = 0;
    for (const XmlNode* span : node->ChildrenNamed("span")) {
      if (span->FindAttribute("name") != nullptr &&
          *span->FindAttribute("name") == name) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(count_phase(roots[0], "phase1_extract"), 1u);
  EXPECT_EQ(count_phase(roots[0], "phase2_match"), 1u);
  EXPECT_EQ(count_phase(roots[0], "phase3_tightness"), 1u);

  // The match span carries per-matcher child spans.
  for (const XmlNode* span : roots[0]->ChildrenNamed("span")) {
    if (*span->FindAttribute("name") == "phase2_match") {
      EXPECT_FALSE(span->ChildrenNamed("span").empty());
    }
  }

  // Ablated phases leave no span behind.
  SearchEngineOptions ablated;
  ablated.enable_tightness = false;
  auto xml2 = f.service->SearchXml(request, ablated);
  ASSERT_TRUE(xml2.ok());
  auto doc2 = ParseXml(*xml2);
  ASSERT_TRUE(doc2.ok());
  const XmlNode* explain2 = doc2->root->FirstChild("explain");
  ASSERT_NE(explain2, nullptr);
  const XmlNode* root2 = explain2->ChildrenNamed("span")[0];
  EXPECT_EQ(count_phase(root2, "phase2_match"), 1u);
  EXPECT_EQ(count_phase(root2, "phase3_tightness"), 0u);

  ablated.enable_matching = false;
  auto xml3 = f.service->SearchXml(request, ablated);
  ASSERT_TRUE(xml3.ok());
  auto doc3 = ParseXml(*xml3);
  ASSERT_TRUE(doc3.ok());
  const XmlNode* root3 =
      doc3->root->FirstChild("explain")->ChildrenNamed("span")[0];
  EXPECT_EQ(count_phase(root3, "phase1_extract"), 1u);
  EXPECT_EQ(count_phase(root3, "phase2_match"), 0u);
  EXPECT_EQ(count_phase(root3, "phase3_tightness"), 0u);
}

TEST(SchemrServiceTest, DefaultRequestsOmitExplain) {
  ServiceFixture f = MakeFixture();
  SearchRequest request;
  request.keywords = "patient height";
  auto xml = f.service->SearchXml(request);
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml->find("<explain"), std::string::npos);
  EXPECT_EQ(xml->find("<span"), std::string::npos);
}

TEST(SchemrServiceTest, MetricsTextExposesServiceSeries) {
  ServiceFixture f = MakeFixture();
  SearchRequest request;
  request.keywords = "patient height";
  ASSERT_TRUE(f.service->Search(request).ok());
  std::string text = f.service->MetricsText();
  EXPECT_NE(text.find("# TYPE schemr_service_search_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE schemr_search_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("schemr_search_seconds_bucket{le=\"+Inf\"}"),
            std::string::npos);
  std::string json = f.service->MetricsJson();
  EXPECT_NE(json.find("\"schemr_search_requests_total\""), std::string::npos);
}

TEST(SchemrServiceTest, GraphMlVisualizationRoundTrip) {
  ServiceFixture f = MakeFixture();
  VisualizationRequest viz;
  viz.schema_id = f.clinic_id;
  viz.scores.push_back(MatchedElement{1, 0.9, 0.9});
  auto graphml = f.service->GetSchemaGraphMl(viz);
  ASSERT_TRUE(graphml.ok()) << graphml.status();
  auto doc = ParseXml(*graphml);
  ASSERT_TRUE(doc.ok());
  const XmlNode* graph = doc->root->FirstChild("graph");
  ASSERT_NE(graph, nullptr);
  // 6 schema elements → 6 nodes (cap not hit at depth ≤ 1).
  EXPECT_EQ(graph->ChildrenNamed("node").size(), 6u);

  // Unknown schema id → NotFound.
  viz.schema_id = 424242;
  EXPECT_TRUE(f.service->GetSchemaGraphMl(viz).status().IsNotFound());
}

TEST(SchemrServiceTest, LayoutSelection) {
  ServiceFixture f = MakeFixture();
  VisualizationRequest viz;
  viz.schema_id = f.clinic_id;
  viz.layout = "radial";
  EXPECT_TRUE(f.service->GetSchemaSvg(viz).ok());
  viz.layout = "tree";
  EXPECT_TRUE(f.service->GetSchemaSvg(viz).ok());
  viz.layout = "hyperbolic";
  auto bad = f.service->GetSchemaSvg(viz);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemrServiceTest, VisualizationDepthIsCapped) {
  ServiceFixture f = MakeFixture();
  VisualizationRequest viz;
  viz.schema_id = f.clinic_id;
  viz.max_depth = ServiceLimits{}.max_viz_depth + 1;
  auto rejected = f.service->GetSchemaGraphMl(viz);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  // At the cap is still fine.
  viz.max_depth = ServiceLimits{}.max_viz_depth;
  EXPECT_TRUE(f.service->GetSchemaGraphMl(viz).ok());
}

TEST(SchemrServiceTest, VisualizationRejectedBeforeRepositoryAccess) {
  ServiceFixture f = MakeFixture();
  // Both fields invalid AND the schema id unknown: validation must win,
  // proving it runs before the repository lookup.
  VisualizationRequest viz;
  viz.schema_id = 999999;
  viz.layout = "spiral";
  auto rejected = f.service->GetSchemaGraphMl(viz);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemrServiceTest, DrillInRestrictsToSubtree) {
  ServiceFixture f = MakeFixture();
  Schema clinic = *f.repo->Get(f.clinic_id);
  ElementId case_entity = *clinic.FindByName("case", ElementKind::kEntity);
  VisualizationRequest viz;
  viz.schema_id = f.clinic_id;
  viz.root = case_entity;
  auto graphml = f.service->GetSchemaGraphMl(viz);
  ASSERT_TRUE(graphml.ok());
  auto doc = ParseXml(*graphml);
  ASSERT_TRUE(doc.ok());
  // case + its two attributes.
  EXPECT_EQ(doc->root->FirstChild("graph")->ChildrenNamed("node").size(), 3u);
}

TEST(SchemrServiceTest, GraphMlCarriesCodebookAnnotations) {
  ServiceFixture f = MakeFixture();
  // The clinic schema has patient_id (identifier) and more.
  VisualizationRequest viz;
  viz.schema_id = f.clinic_id;
  auto graphml = f.service->GetSchemaGraphMl(viz);
  ASSERT_TRUE(graphml.ok());
  EXPECT_NE(graphml->find("d_semantic"), std::string::npos);
  EXPECT_NE(graphml->find("identifier"), std::string::npos);
}

TEST(SchemrServiceTest, HtmlReportContainsTableAndPanels) {
  ServiceFixture f = MakeFixture();
  SearchRequest request;
  request.keywords = "patient height gender diagnosis";
  auto html = f.service->RenderHtmlReport(request, 2);
  ASSERT_TRUE(html.ok()) << html.status();
  EXPECT_NE(html->find("clinic"), std::string::npos);
  EXPECT_NE(html->find("<svg"), std::string::npos);
  EXPECT_NE(html->find("tree view"), std::string::npos);
}

TEST(SchemrServiceTest, BadRequestsSurfaceErrors) {
  ServiceFixture f = MakeFixture();
  SearchRequest empty;
  EXPECT_FALSE(f.service->Search(empty).ok());
  SearchRequest bad_fragment;
  bad_fragment.keywords = "x";
  bad_fragment.fragment = "CREATE TABLE oops (";
  EXPECT_TRUE(f.service->Search(bad_fragment).status().IsParseError());
}

TEST(SchemrServiceTest, ValidationRejectsDegenerateKnobs) {
  ServiceFixture f = MakeFixture();

  SearchRequest zero_k;
  zero_k.keywords = "patient";
  zero_k.top_k = 0;
  auto status = f.service->Search(zero_k).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("top_k"), std::string::npos);
  EXPECT_EQ(f.service->SearchXml(zero_k).status().code(),
            StatusCode::kInvalidArgument);

  SearchRequest small_pool;
  small_pool.keywords = "patient";
  small_pool.top_k = 20;
  small_pool.candidate_pool = 5;
  status = f.service->Search(small_pool).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("candidate_pool"), std::string::npos);
}

TEST(SchemrServiceTest, ValidationEnforcesByteCaps) {
  ServiceFixture f = MakeFixture();
  ServiceLimits limits;
  limits.max_keywords_bytes = 16;
  limits.max_fragment_bytes = 32;
  SchemrService capped(f.repo.get(), &f.indexer->index(),
                       MatcherEnsemble::Default(), limits);

  SearchRequest big_keywords;
  big_keywords.keywords = std::string(17, 'k');
  auto status = capped.Search(big_keywords).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("keywords"), std::string::npos);
  EXPECT_EQ(capped.SearchXml(big_keywords).status().code(),
            StatusCode::kInvalidArgument);

  SearchRequest big_fragment;
  big_fragment.keywords = "patient";
  big_fragment.fragment = std::string(33, 'f');
  status = capped.Search(big_fragment).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("fragment"), std::string::npos);

  // Requests at the caps still pass validation.
  SearchRequest at_cap;
  at_cap.keywords = std::string(16, 'k');
  EXPECT_TRUE(capped.Search(at_cap).ok());
}

TEST(SchemrServiceTest, DegradedSearchIsFlaggedInXml) {
  ServiceFixture f = MakeFixture();
  FaultInjector::Global().DisarmAll();
  FaultInjector::Global().Arm("match/name", {FaultKind::kError, EIO});

  SearchRequest request;
  request.keywords = "patient height diagnosis";
  auto xml = f.service->SearchXml(request);
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(xml.ok()) << xml.status();
  EXPECT_NE(xml->find("degraded=\"true\""), std::string::npos);

  // Explain mode surfaces which matcher was dropped.
  FaultInjector::Global().Arm("match/name", {FaultKind::kError, EIO});
  request.explain = true;
  xml = f.service->SearchXml(request);
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(xml.ok()) << xml.status();
  EXPECT_NE(xml->find("<degradation"), std::string::npos);
  EXPECT_NE(xml->find("<dropped_matcher name=\"name\""), std::string::npos);

  // Healthy responses carry no degraded markers at all.
  request.explain = false;
  xml = f.service->SearchXml(request);
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml->find("degraded"), std::string::npos);
}

TEST(SchemrServiceTest, MetricsTextExposesRobustnessSeries) {
  ServiceFixture f = MakeFixture();
  FaultInjector::Global().DisarmAll();
  FaultInjector::Global().Arm("match/name", {FaultKind::kError, EIO});
  SearchRequest request;
  request.keywords = "patient height";
  ASSERT_TRUE(f.service->Search(request).ok());
  FaultInjector::Global().DisarmAll();

  std::string text = f.service->MetricsText();
  EXPECT_NE(text.find("schemr_faults_injected"), std::string::npos);
  EXPECT_NE(text.find("schemr_matcher_failures_total"), std::string::npos);
  EXPECT_NE(text.find("schemr_searches_degraded_total"), std::string::npos);
}

}  // namespace
}  // namespace schemr
