// Tests for the signature pre-filter and columnar match features
// (DESIGN.md §16): packed-profile bit-identity with the legacy n-gram
// path, prepared-matcher bit-identity with the per-candidate path, the
// engine's exact-mode equivalence at any thread count, the approximate
// pre-filter's accounting, signature persistence (round-trip, corruption
// detection, rebuild), and the serving corpus's catalog publication.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/result_cache.h"
#include "core/search_engine.h"
#include "core/serving_corpus.h"
#include "corpus/schema_generator.h"
#include "index/indexer.h"
#include "match/ensemble.h"
#include "match/features.h"
#include "match/signature.h"
#include "obs/replay.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "text/ngram.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

Schema Clinic() {
  return SchemaBuilder("clinic")
      .Entity("patient")
      .Attribute("height", DataType::kDouble)
      .Attribute("gender", DataType::kString)
      .Attribute("date_of_birth", DataType::kDate)
      .Entity("visit")
      .Attribute("diagnosis")
      .Attribute("patient_id", DataType::kInt64)
      .Build();
}

Schema Shop() {
  return SchemaBuilder("shop")
      .Entity("customer")
      .Attribute("name")
      .Attribute("email")
      .Entity("order")
      .Attribute("total", DataType::kDecimal)
      .Build();
}

/// A small but diverse generated corpus: abbreviation noise, dropped
/// attributes, shared concepts — exactly the shapes the matchers were
/// built for.
std::vector<Schema> SmallCorpus(size_t n, uint64_t seed = 11) {
  CorpusOptions options;
  options.num_schemas = n;
  options.seed = seed;
  std::vector<Schema> schemas;
  for (GeneratedSchema& g : GenerateCorpus(options)) {
    schemas.push_back(std::move(g.schema));
  }
  return schemas;
}

// --- packed profiles --------------------------------------------------------------

TEST(PackedProfileTest, PackedDiceBitIdenticalToLegacyDice) {
  // Mix of short words (pack fully), long words (overflow strings), and
  // repeated grams (multiset counts matter).
  const std::vector<std::string> words = {
      "pat",      "patient",   "patientrecord", "dateofbirth",
      "aaaabbbb", "banana",    "bananabanana",  "x",
      "height",   "heightcm",  "customerorder", "ht"};
  for (const std::string& a : words) {
    for (const std::string& b : words) {
      NgramProfile pa = BuildNgramProfile(a, 2, 4);
      NgramProfile pb = BuildNgramProfile(b, 2, 4);
      PackedProfile qa = PackProfile(pa);
      PackedProfile qb = PackProfile(pb);
      // Bit-identical, not approximately equal: the packing is bijective,
      // so the Dice expression evaluates on the same integers.
      EXPECT_EQ(PackedDice(qa, qb), DiceSimilarity(pa, pb))
          << "words: " << a << " vs " << b;
    }
  }
}

// --- signatures -------------------------------------------------------------------

TEST(SignatureTest, DeterministicAndSelfSimilar) {
  FeatureBuildOptions options;
  auto a1 = BuildSchemaFeatures(Clinic(), options);
  auto a2 = BuildSchemaFeatures(Clinic(), options);
  ComputeSignature(a1.get(), nullptr);
  ComputeSignature(a2.get(), nullptr);
  EXPECT_TRUE(a1->signature == a2->signature);
  EXPECT_EQ(a1->content_hash, a2->content_hash);
  EXPECT_DOUBLE_EQ(EstimatedSimilarity(a1->signature, a2->signature), 1.0);

  auto b = BuildSchemaFeatures(Shop(), options);
  ComputeSignature(b.get(), nullptr);
  EXPECT_NE(a1->content_hash, b->content_hash);
  EXPECT_LT(EstimatedSimilarity(a1->signature, b->signature), 1.0);
}

TEST(SignatureTest, RelatedSchemasScoreAboveUnrelated) {
  FeatureBuildOptions options;
  // clinic vs a near-duplicate clinic must beat clinic vs shop.
  Schema near = SchemaBuilder("clinic2")
                    .Entity("patient")
                    .Attribute("height", DataType::kDouble)
                    .Attribute("gender", DataType::kString)
                    .Entity("visit")
                    .Attribute("diagnosis")
                    .Build();
  auto fa = BuildSchemaFeatures(Clinic(), options);
  auto fb = BuildSchemaFeatures(near, options);
  auto fc = BuildSchemaFeatures(Shop(), options);
  ComputeSignature(fa.get(), nullptr);
  ComputeSignature(fb.get(), nullptr);
  ComputeSignature(fc.get(), nullptr);
  EXPECT_GT(EstimatedSimilarity(fa->signature, fb->signature),
            EstimatedSimilarity(fa->signature, fc->signature));
}

TEST(SignatureTest, SealedCrcDetectsBitFlip) {
  FeatureBuildOptions options;
  auto f = BuildSchemaFeatures(Clinic(), options);
  ComputeSignature(f.get(), nullptr);
  EXPECT_TRUE(VerifySignature(f->signature));
  SchemaSignature tampered = f->signature;
  tampered.simhash[3] ^= 0x10;
  EXPECT_FALSE(VerifySignature(tampered));
}

// --- prepared matchers ------------------------------------------------------------

TEST(PreparedMatchTest, EnsembleBitIdenticalWithAndWithoutContext) {
  std::vector<Schema> schemas = SmallCorpus(12);
  FeatureBuildOptions options;
  std::vector<std::shared_ptr<SchemaFeatures>> features;
  DfTable df;
  for (const Schema& s : schemas) {
    features.push_back(BuildSchemaFeatures(s, options));
    df.AddDocument(*features.back());
  }
  for (auto& f : features) ComputeSignature(f.get(), &df);

  MatcherEnsemble ensemble = MatcherEnsemble::Default();
  MatchScratch scratch;
  const Schema& query = schemas[0];
  for (size_t c = 1; c < schemas.size(); ++c) {
    EnsembleResult legacy = ensemble.Match(query, schemas[c]);
    MatchContext context;
    context.query_features = features[0].get();
    context.candidate_features = features[c].get();
    context.scratch = &scratch;
    EnsembleResult prepared =
        ensemble.Match(query, schemas[c], nullptr, nullptr, &context);

    ASSERT_EQ(legacy.per_matcher.size(), prepared.per_matcher.size());
    for (size_t m = 0; m < legacy.per_matcher.size(); ++m) {
      const SimilarityMatrix& lm = legacy.per_matcher[m];
      const SimilarityMatrix& pm = prepared.per_matcher[m];
      ASSERT_EQ(lm.rows(), pm.rows());
      ASSERT_EQ(lm.cols(), pm.cols());
      for (size_t i = 0; i < lm.rows(); ++i) {
        for (size_t j = 0; j < lm.cols(); ++j) {
          // Exact FP equality: the fast path must be an optimization,
          // never a behavior change.
          EXPECT_EQ(lm.at(i, j), pm.at(i, j))
              << "matcher " << m << " candidate " << c << " cell (" << i
              << "," << j << ")";
        }
      }
    }
    for (size_t i = 0; i < legacy.combined.rows(); ++i) {
      for (size_t j = 0; j < legacy.combined.cols(); ++j) {
        EXPECT_EQ(legacy.combined.at(i, j), prepared.combined.at(i, j));
      }
    }
  }
}

TEST(PreparedMatchTest, MismatchedOptionsFallBackToLegacy) {
  // A catalog built under non-default matcher options must not be used by
  // default-option matchers; the guard forces the legacy path, so results
  // still match the legacy computation exactly.
  FeatureBuildOptions altered;
  altered.name.use_synonyms = false;
  auto qf = BuildSchemaFeatures(Clinic(), altered);
  auto cf = BuildSchemaFeatures(Shop(), altered);
  ComputeSignature(qf.get(), nullptr);
  ComputeSignature(cf.get(), nullptr);

  MatcherEnsemble ensemble = MatcherEnsemble::Default();  // default options
  MatchScratch scratch;
  MatchContext context{qf.get(), cf.get(), &scratch};
  EnsembleResult legacy = ensemble.Match(Clinic(), Shop());
  EnsembleResult guarded =
      ensemble.Match(Clinic(), Shop(), nullptr, nullptr, &context);
  ASSERT_EQ(legacy.per_matcher.size(), guarded.per_matcher.size());
  for (size_t m = 0; m < legacy.per_matcher.size(); ++m) {
    for (size_t i = 0; i < legacy.per_matcher[m].rows(); ++i) {
      for (size_t j = 0; j < legacy.per_matcher[m].cols(); ++j) {
        EXPECT_EQ(legacy.per_matcher[m].at(i, j),
                  guarded.per_matcher[m].at(i, j));
      }
    }
  }
}

// --- engine equivalence -----------------------------------------------------------

struct EngineFixture {
  std::unique_ptr<SchemaRepository> repo;
  std::shared_ptr<Indexer> indexer;
  std::shared_ptr<const CorpusSnapshot> snapshot;  ///< with catalog
};

EngineFixture MakeEngineFixture(size_t n = 24) {
  EngineFixture f;
  f.repo = SchemaRepository::OpenInMemory();
  CatalogBuilder builder;
  for (Schema& s : SmallCorpus(n)) {
    auto id = f.repo->Insert(std::move(s));
    EXPECT_TRUE(id.ok());
  }
  f.indexer = std::make_shared<Indexer>();
  EXPECT_TRUE(f.indexer->RebuildFromRepository(*f.repo).ok());
  std::shared_ptr<const RepositoryView> view = f.repo->View();
  EXPECT_TRUE(view->ForEach([&](const Schema& s) {
                    builder.Add(s);
                    return Status::OK();
                  }).ok());
  auto snapshot = std::make_shared<CorpusSnapshot>();
  snapshot->version = f.repo->version();
  snapshot->index =
      std::shared_ptr<const InvertedIndex>(f.indexer, &f.indexer->index());
  snapshot->schemas = view;
  snapshot->match_features = builder.Build();
  f.snapshot = snapshot;
  return f;
}

const char* kQueries[] = {
    "patient height gender",
    "customer order total",
    "movie title director",
    "flight departure arrival airport",
    "inventory stock warehouse",
};

TEST(EnginePrefilterTest, CatalogPathBitIdenticalToLegacyAtAnyThreadCount) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine legacy(f.repo.get(), &f.indexer->index());
  SearchEngine columnar(f.snapshot);

  for (const char* q : kQueries) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SearchEngineOptions options;
      options.scoring_threads = threads;
      auto a = legacy.SearchKeywords(q, options);
      auto b = columnar.SearchKeywords(q, options);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      ASSERT_EQ(a->size(), b->size()) << q << " threads=" << threads;
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ((*a)[i].schema_id, (*b)[i].schema_id);
        // Scores must agree to the bit: exact mode may not change the
        // ranking function, only its cost.
        EXPECT_EQ((*a)[i].score, (*b)[i].score) << q << " rank " << i;
        EXPECT_EQ((*a)[i].tightness, (*b)[i].tightness);
      }
    }
  }
}

TEST(EnginePrefilterTest, PrefilterRejectsAndCounts) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.snapshot);

  SearchStats exact_stats;
  SearchEngineOptions exact;
  exact.stats = &exact_stats;
  auto full = engine.SearchKeywords(kQueries[0], exact);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(exact_stats.prefilter_rejected, 0u);

  SearchStats stats;
  SearchEngineOptions screened;
  screened.prefilter = 0.999;  // rejects everything but near-duplicates
  screened.stats = &stats;
  auto filtered = engine.SearchKeywords(kQueries[0], screened);
  ASSERT_TRUE(filtered.ok());
  EXPECT_GT(stats.prefilter_rejected, 0u);
  EXPECT_LE(filtered->size(), full->size());
  // Rejection is an explicit opt-in, not degradation.
  EXPECT_FALSE(stats.ComputeDegraded());
  // Whatever survives the screen is a subset of the exact candidates.
  for (const SearchResult& r : *filtered) {
    bool found = false;
    for (const SearchResult& e : *full) found |= e.schema_id == r.schema_id;
    EXPECT_TRUE(found) << "schema " << r.schema_id
                       << " appeared only under the screen";
  }
}

TEST(EnginePrefilterTest, MissingCatalogEntryIsNeverRejected) {
  // A snapshot whose catalog is missing one schema: that schema must
  // survive any threshold (unknown ≠ dissimilar).
  EngineFixture f = MakeEngineFixture(8);
  auto snapshot = std::make_shared<CorpusSnapshot>(*f.snapshot);
  auto& catalog = snapshot->match_features;
  std::unordered_map<SchemaId, std::shared_ptr<const SchemaFeatures>> pruned =
      catalog->features();
  ASSERT_FALSE(pruned.empty());
  const SchemaId dropped = pruned.begin()->first;
  pruned.erase(pruned.begin());
  snapshot->match_features = std::make_shared<const MatchFeatureCatalog>(
      catalog->options(), pruned,
      std::shared_ptr<const DfTable>(catalog, &catalog->df()));

  SearchEngine engine(snapshot);
  SearchEngineOptions screened;
  screened.prefilter = 0.9999;
  auto schema = f.repo->Get(dropped);
  ASSERT_TRUE(schema.ok());
  // Query with the dropped schema's own name: it must be reachable even
  // though everything with a signature is screened out at this threshold.
  auto results = engine.SearchKeywords(schema->name(), screened);
  ASSERT_TRUE(results.ok());
  bool present = false;
  for (const SearchResult& r : *results) present |= r.schema_id == dropped;
  EXPECT_TRUE(present);
}

TEST(EnginePrefilterTest, PrefilterJoinsOptionsHash) {
  SearchEngineOptions exact;
  SearchEngineOptions screened;
  screened.prefilter = 0.2;
  SearchEngineOptions other;
  other.prefilter = 0.3;
  EXPECT_NE(HashSearchOptions(exact), HashSearchOptions(screened));
  EXPECT_NE(HashSearchOptions(screened), HashSearchOptions(other));
}

// --- workload opt-in --------------------------------------------------------------

TEST(WorkloadPrefilterTest, XmlRoundTripPreservesThreshold) {
  std::vector<WorkloadEntry> entries(2);
  entries[0].keywords = "patient height";
  entries[0].prefilter = 0.15;
  entries[0].expected_digest = 0x1234;
  entries[1].keywords = "customer order";  // exact entry: no attribute
  auto parsed = WorkloadFromXml(WorkloadToXml(entries));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ((*parsed)[0].prefilter, 0.15);
  EXPECT_EQ((*parsed)[0].expected_digest, 0x1234u);
  EXPECT_DOUBLE_EQ((*parsed)[1].prefilter, 0.0);
}

// --- persistence ------------------------------------------------------------------

class SignatureFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemr_signature_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string SigPath() const { return (dir_ / "signatures.sig").string(); }

  std::shared_ptr<const MatchFeatureCatalog> BuildCatalog(
      CatalogBuildStats* stats = nullptr,
      const StoredSignatures* stored = nullptr) {
    CatalogBuilder builder;
    for (const Schema& s : SmallCorpus(10)) builder.Add(s);
    return builder.Build(stored, stats);
  }

  fs::path dir_;
};

TEST_F(SignatureFileTest, SaveLoadRoundTrip) {
  auto catalog = BuildCatalog();
  ASSERT_TRUE(SaveSignatures(SigPath(), *catalog).ok());

  auto loaded = LoadSignatures(SigPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->corpus_hash, catalog->CorpusHash());
  EXPECT_EQ(loaded->signatures.size(), catalog->size());
  EXPECT_EQ(loaded->corrupt_records, 0u);
  for (const auto& [id, features] : catalog->features()) {
    auto it = loaded->signatures.find(id);
    ASSERT_NE(it, loaded->signatures.end());
    EXPECT_TRUE(it->second == features->signature);
    EXPECT_TRUE(VerifySignature(it->second));
  }

  // A rebuild against the stored file adopts every record.
  CatalogBuildStats stats;
  StoredSignatures stored = std::move(*loaded);
  auto adopted = BuildCatalog(&stats, &stored);
  EXPECT_EQ(stats.signatures_loaded, catalog->size());
  EXPECT_EQ(stats.signatures_built, 0u);
}

TEST_F(SignatureFileTest, ByteFlipDetectedAndRebuilt) {
  auto catalog = BuildCatalog();
  ASSERT_TRUE(SaveSignatures(SigPath(), *catalog).ok());

  // Flip one byte inside the first record's payload (past the header:
  // magic 4 + version 4 + corpus hash 8 + count 8 = 24 bytes).
  std::fstream file(SigPath(),
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(40);
  char byte = 0;
  file.read(&byte, 1);
  byte ^= 0x40;
  file.seekp(40);
  file.write(&byte, 1);
  file.close();

  auto loaded = LoadSignatures(SigPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->corrupt_records, 1u);
  EXPECT_EQ(loaded->signatures.size(), catalog->size() - 1);
  // Every surviving record still proves itself.
  for (const auto& [id, signature] : loaded->signatures) {
    EXPECT_TRUE(VerifySignature(signature));
  }

  // The rebuild recomputes exactly the dropped signature, and the result
  // equals a fresh build bit-for-bit: corruption is detected and repaired,
  // never served.
  CatalogBuildStats stats;
  auto repaired = BuildCatalog(&stats, &*loaded);
  EXPECT_EQ(stats.corrupt_records, 1u);
  EXPECT_EQ(stats.signatures_loaded, catalog->size() - 1);
  EXPECT_EQ(stats.signatures_built, 1u);
  for (const auto& [id, features] : catalog->features()) {
    const SchemaFeatures* r = repaired->Find(id);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->signature == features->signature);
  }
}

TEST_F(SignatureFileTest, StaleCorpusHashIgnoresWholeFile) {
  auto catalog = BuildCatalog();
  ASSERT_TRUE(SaveSignatures(SigPath(), *catalog).ok());
  auto loaded = LoadSignatures(SigPath());
  ASSERT_TRUE(loaded.ok());

  // Build over a DIFFERENT corpus: the stored hash cannot match, so
  // nothing is adopted.
  CatalogBuilder builder;
  for (const Schema& s : SmallCorpus(10, /*seed=*/99)) builder.Add(s);
  CatalogBuildStats stats;
  auto other = builder.Build(&*loaded, &stats);
  EXPECT_EQ(stats.signatures_loaded, 0u);
  EXPECT_EQ(stats.signatures_built, other->size());
}

TEST_F(SignatureFileTest, TruncatedHeaderIsParseError) {
  std::ofstream out(SigPath(), std::ios::binary);
  out << "SSIG";  // magic only
  out.close();
  auto loaded = LoadSignatures(SigPath());
  EXPECT_FALSE(loaded.ok());
}

// --- serving corpus ---------------------------------------------------------------

TEST_F(SignatureFileTest, ServingCorpusPublishesAndPersistsCatalog) {
  auto repo = SchemaRepository::OpenInMemory();
  for (Schema& s : SmallCorpus(6)) {
    ASSERT_TRUE(repo->Insert(std::move(s)).ok());
  }
  auto corpus = ServingCorpus::Create(std::move(repo));
  ASSERT_TRUE(corpus.ok()) << corpus.status();

  auto snapshot = (*corpus)->Snapshot();
  ASSERT_NE(snapshot->match_features, nullptr);
  EXPECT_EQ(snapshot->match_features->size(), 6u);

  // Incremental ingest extends the catalog in the next snapshot.
  ASSERT_TRUE((*corpus)->Ingest(Clinic()).ok());
  auto after = (*corpus)->Snapshot();
  EXPECT_EQ(after->match_features->size(), 7u);
  EXPECT_GT(after->version, snapshot->version);

  // Reindex with persistence: first run builds and writes the file,
  // second run adopts every signature from it.
  CatalogBuildStats first;
  ASSERT_TRUE(
      (*corpus)->ReindexWithStoredSignatures(SigPath(), &first).ok());
  EXPECT_EQ(first.signatures_built, 7u);
  CatalogBuildStats second;
  ASSERT_TRUE(
      (*corpus)->ReindexWithStoredSignatures(SigPath(), &second).ok());
  EXPECT_EQ(second.signatures_loaded, 7u);
  EXPECT_EQ(second.signatures_built, 0u);
}

}  // namespace
}  // namespace schemr
