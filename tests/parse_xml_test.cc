// Tests for the XML mini-DOM parser and the XSD importer.

#include <gtest/gtest.h>

#include "parse/xml_parser.h"
#include "parse/xsd_importer.h"

namespace schemr {
namespace {

// --- XML parser -----------------------------------------------------------------

TEST(XmlParserTest, ElementsAttributesText) {
  auto doc = ParseXml(
      "<root a=\"1\" b='two'>\n"
      "  <child>hello</child>\n"
      "  <empty/>\n"
      "</root>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const XmlNode& root = *doc->root;
  EXPECT_EQ(root.name, "root");
  ASSERT_EQ(root.attributes.size(), 2u);
  EXPECT_EQ(*root.FindAttribute("a"), "1");
  EXPECT_EQ(*root.FindAttribute("b"), "two");
  EXPECT_EQ(root.FindAttribute("c"), nullptr);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->text, "hello");
  EXPECT_EQ(root.children[1]->name, "empty");
}

TEST(XmlParserTest, PrologCommentsPiDoctype) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- comment -->\n"
      "<!DOCTYPE root SYSTEM \"x.dtd\">\n"
      "<?pi data?>\n"
      "<root><!-- inner --><a/></root>\n"
      "<!-- trailing -->");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->root->children.size(), 1u);
}

TEST(XmlParserTest, EntitiesDecoded) {
  auto doc = ParseXml("<r x=\"a&amp;b\">&lt;&gt;&quot;&apos;&#65;&#x42;</r>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(*doc->root->FindAttribute("x"), "a&b");
  EXPECT_EQ(doc->root->text, "<>\"'AB");
}

TEST(XmlParserTest, Utf8NumericEntity) {
  auto doc = ParseXml("<r>&#233;</r>");  // é
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text, "\xC3\xA9");
}

TEST(XmlParserTest, Cdata) {
  auto doc = ParseXml("<r><![CDATA[a <b> & c]]></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text, "a <b> & c");
}

TEST(XmlParserTest, NamespacePrefixesKept) {
  auto doc = ParseXml("<xs:schema><xs:element name=\"x\"/></xs:schema>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name, "xs:schema");
  EXPECT_EQ(doc->root->LocalName(), "schema");
  EXPECT_EQ(doc->root->children[0]->LocalName(), "element");
}

TEST(XmlParserTest, ChildLookupHelpers) {
  auto doc = ParseXml("<r><a/><b/><a/></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->root->FirstChild("a"), nullptr);
  EXPECT_EQ(doc->root->FirstChild("z"), nullptr);
  EXPECT_EQ(doc->root->ChildrenNamed("a").size(), 2u);
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("no tags").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());                    // unterminated
  EXPECT_FALSE(ParseXml("<a></b>").ok());                // mismatch
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());               // unquoted attr
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());       // bad entity
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());               // two roots
  EXPECT_FALSE(ParseXml("<a><![CDATA[x]]</a>").ok());    // bad cdata
  auto bad = ParseXml("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

// --- XSD importer ---------------------------------------------------------------------

constexpr const char* kObservationXsd = R"xml(<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="observation">
    <xs:annotation><xs:documentation>a field sighting</xs:documentation></xs:annotation>
    <xs:complexType>
      <xs:sequence>
        <xs:element name="site" type="xs:string"/>
        <xs:element name="count" type="xs:int"/>
        <xs:element name="observed_at" type="xs:dateTime" minOccurs="0"/>
        <xs:element name="detail">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="weather" type="xs:string"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="observer" type="xs:string" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>
)xml";

TEST(XsdImporterTest, ComplexTypeBecomesEntityTree) {
  auto schema = ParseXsd(kObservationXsd, "obs");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(schema->Validate().ok());

  auto observation = schema->FindByName("observation", ElementKind::kEntity);
  ASSERT_TRUE(observation.has_value());
  EXPECT_EQ(schema->element(*observation).documentation, "a field sighting");

  // Nested complex element is a nested entity.
  auto detail = schema->FindByName("detail", ElementKind::kEntity);
  ASSERT_TRUE(detail.has_value());
  EXPECT_EQ(schema->element(*detail).parent, *observation);
  auto weather = schema->FindByName("weather");
  ASSERT_TRUE(weather.has_value());
  EXPECT_EQ(schema->EntityOf(*weather), *detail);

  // Types map through.
  EXPECT_EQ(schema->element(*schema->FindByName("count")).type,
            DataType::kInt32);
  EXPECT_EQ(schema->element(*schema->FindByName("observed_at")).type,
            DataType::kDateTime);
  // minOccurs=0 → nullable; use=required → not nullable.
  EXPECT_TRUE(schema->element(*schema->FindByName("observed_at")).nullable);
  EXPECT_FALSE(schema->element(*schema->FindByName("observer")).nullable);
}

TEST(XsdImporterTest, NamedComplexTypeResolved) {
  auto schema = ParseXsd(R"xml(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="PersonType">
    <xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="age" type="xs:int"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="person" type="PersonType"/>
</xs:schema>)xml",
                         "person");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto person = schema->FindByName("person", ElementKind::kEntity);
  ASSERT_TRUE(person.has_value());
  EXPECT_EQ(schema->Children(*person).size(), 2u);
}

TEST(XsdImporterTest, NamedSimpleTypeRestriction) {
  auto schema = ParseXsd(R"xml(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="Grade">
    <xs:restriction base="xs:int"/>
  </xs:simpleType>
  <xs:element name="score" type="Grade"/>
</xs:schema>)xml",
                         "score");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->element(*schema->FindByName("score")).type,
            DataType::kInt32);
}

TEST(XsdImporterTest, ChoiceAndAllParticles) {
  auto schema = ParseXsd(R"xml(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="contact">
    <xs:complexType>
      <xs:choice>
        <xs:element name="email" type="xs:string"/>
        <xs:element name="phone" type="xs:string"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
</xs:schema>)xml",
                         "contact");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->NumAttributes(), 2u);
}

TEST(XsdImporterTest, TypeMappingTable) {
  EXPECT_EQ(XsdTypeToDataType("string"), DataType::kString);
  EXPECT_EQ(XsdTypeToDataType("int"), DataType::kInt32);
  EXPECT_EQ(XsdTypeToDataType("long"), DataType::kInt64);
  EXPECT_EQ(XsdTypeToDataType("decimal"), DataType::kDecimal);
  EXPECT_EQ(XsdTypeToDataType("boolean"), DataType::kBool);
  EXPECT_EQ(XsdTypeToDataType("dateTime"), DataType::kDateTime);
  EXPECT_EQ(XsdTypeToDataType("base64Binary"), DataType::kBinary);
  EXPECT_EQ(XsdTypeToDataType("madeUpType"), DataType::kString);
}

TEST(XsdImporterTest, Errors) {
  EXPECT_FALSE(ParseXsd("<notaschema/>", "x").ok());
  EXPECT_FALSE(ParseXsd("<xs:schema></xs:schema>", "x").ok());  // no elements
  EXPECT_FALSE(
      ParseXsd("<xs:schema><xs:element/></xs:schema>", "x").ok());  // no name
  EXPECT_FALSE(ParseXsd("not xml at all", "x").ok());
}

TEST(XsdImporterTest, ElementRefBecomesAttribute) {
  auto schema = ParseXsd(R"xml(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="wrapper">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="xs:other"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>)xml",
                         "w");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(schema->FindByName("other").has_value());
}

}  // namespace
}  // namespace schemr
