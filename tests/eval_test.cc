// Tests for the IR metrics and the shared experiment harness.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/harness.h"
#include "eval/ir_metrics.h"

namespace schemr {
namespace {

const std::vector<uint64_t> kRanking = {10, 20, 30, 40, 50};

TEST(IrMetricsTest, PrecisionAtK) {
  RelevantSet relevant = {10, 30, 99};
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanking, relevant, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanking, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanking, relevant, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanking, relevant, 5), 0.4);
  // k beyond the ranking clamps to its length.
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanking, relevant, 100), 0.4);
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, relevant, 5), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(kRanking, relevant, 0), 0.0);
}

TEST(IrMetricsTest, RecallAtK) {
  RelevantSet relevant = {10, 30, 99};
  EXPECT_DOUBLE_EQ(RecallAtK(kRanking, relevant, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(kRanking, relevant, 5), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtK(kRanking, {}, 5), 0.0);
}

TEST(IrMetricsTest, ReciprocalRank) {
  EXPECT_DOUBLE_EQ(ReciprocalRank(kRanking, {10}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(kRanking, {30}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(kRanking, {50, 30}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(kRanking, {12345}), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({}, {1}), 0.0);
}

TEST(IrMetricsTest, AveragePrecision) {
  // Relevant at ranks 1 and 3 of 3 relevant total:
  // AP = (1/1 + 2/3)/3.
  RelevantSet relevant = {10, 30, 999};
  EXPECT_NEAR(AveragePrecision(kRanking, relevant),
              (1.0 + 2.0 / 3.0) / 3.0, 1e-12);
  // Perfect ranking has AP 1.
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(kRanking, {}), 0.0);
}

TEST(IrMetricsTest, Ndcg) {
  // Relevant at positions 1 and 3: DCG = 1/log2(2) + 1/log2(4) = 1.5.
  // Ideal with 2 relevant in top 5: 1/log2(2) + 1/log2(3).
  RelevantSet relevant = {10, 30};
  double ideal = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(kRanking, relevant, 5), 1.5 / ideal, 1e-12);
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 2}, {1, 2}, 2), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(kRanking, {}, 5), 0.0);
  // nDCG is monotone in rank of the hit.
  EXPECT_GT(NdcgAtK({7, 8}, {7}, 2), NdcgAtK({8, 7}, {7}, 2));
}

TEST(IrMetricsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
}

TEST(HarnessTest, FixtureBuildsSearchableCorpus) {
  CorpusOptions options;
  options.num_schemas = 60;
  options.seed = 321;
  auto fixture = CorpusFixture::Build(options);
  ASSERT_TRUE(fixture.ok()) << fixture.status();
  EXPECT_EQ(fixture->ids.size(), 60u);
  EXPECT_EQ(fixture->index().NumDocs(), 60u);
  EXPECT_EQ(fixture->repository->Size(), 60u);
  size_t mapped = 0;
  for (const auto& [concept_id, ids] : fixture->relevance) {
    mapped += ids.size();
  }
  EXPECT_EQ(mapped, 60u);
}

TEST(HarnessTest, EvaluateEngineProducesSaneMetrics) {
  CorpusOptions options;
  options.num_schemas = 150;
  options.seed = 77;
  auto fixture = CorpusFixture::Build(options);
  ASSERT_TRUE(fixture.ok());

  QueryWorkloadOptions workload_options;
  workload_options.num_queries = 20;
  workload_options.seed = 5;
  std::vector<WorkloadQuery> workload =
      GenerateQueryWorkload(workload_options);

  SearchEngine engine(fixture->repository.get(), &fixture->index());
  auto summary = EvaluateEngine(engine, *fixture, workload);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(summary->num_queries, 10u);
  // Ground-truth queries on a ground-truth corpus: quality must be well
  // above chance. These are loose lower bounds, not golden values.
  EXPECT_GT(summary->mrr, 0.5);
  EXPECT_GT(summary->precision_at_5, 0.3);
  // All metrics in range.
  for (double v : {summary->precision_at_5, summary->precision_at_10,
                   summary->recall_at_10, summary->mrr, summary->map,
                   summary->ndcg_at_10}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_FALSE(FormatQuality(*summary).empty());
}

}  // namespace
}  // namespace schemr
