// Cross-process chaos tests for the replica fleet (DESIGN.md §14): a
// Fleet of real `schemr serve` child processes behind the failover
// Coordinator. Covered: the byte-identical serving contract THROUGH the
// coordinator (a /search answered via the coordinator equals the same
// request answered by a backend directly), kill -9 of a replica under
// client load without a single fabricated non-shed 5xx, circuit-breaker
// open → half-open probe readmission, the rolling-drain invariant
// (ready count never below N−1, asserted by polling every replica's
// /readyz), and a torture loop racing kills, stalls, injected
// coordinator faults, and rolling restarts against live client traffic.
// SCHEMR_TORTURE_CYCLES scales the torture loop. The schemr binary the
// replicas exec is baked in at compile time (SCHEMR_BINARY_PATH).

#include "service/fleet.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>

#include <cstdio>
#include <sstream>

#include "corpus/schema_generator.h"
#include "index/indexer.h"
#include "obs/audit_log.h"
#include "obs/exposition.h"
#include "obs/federation.h"
#include "repo/schema_repository.h"
#include "service/coordinator.h"
#include "service/http_server.h"
#include "service/request_id.h"
#include "service/schemr_service.h"
#include "util/fault_injection.h"
#include "util/rng.h"

#ifndef SCHEMR_BINARY_PATH
#error "SCHEMR_BINARY_PATH must point at the schemr CLI binary"
#endif

namespace schemr {
namespace {

namespace fs = std::filesystem;

int TortureCycles() {
  const char* env = std::getenv("SCHEMR_TORTURE_CYCLES");
  if (env != nullptr) {
    const int cycles = std::atoi(env);
    if (cycles > 0) return cycles;
  }
  return 4;
}

/// Seeds an on-disk repository + index segment the way `schemr seed`
/// does, so real `schemr serve` children can open it.
std::string SeedRepo(const std::string& name, size_t schemas) {
  const fs::path dir =
      fs::temp_directory_path() /
      (name + "_" + std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto repo = SchemaRepository::Open(dir.string());
  EXPECT_TRUE(repo.ok()) << repo.status();
  CorpusOptions options;
  options.num_schemas = schemas;
  options.seed = 2026;
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    EXPECT_TRUE((*repo)->Insert(g.schema).ok());
  }
  Indexer indexer;
  EXPECT_TRUE(indexer.RebuildFromRepository(**repo).ok());
  EXPECT_TRUE(indexer.Save((dir / "segment.idx").string()).ok());
  return dir.string();
}

FleetOptions MakeFleetOptions(const std::string& repo_dir, int replicas) {
  FleetOptions options;
  options.binary_path = SCHEMR_BINARY_PATH;
  options.repo_dir = repo_dir;
  options.replicas = replicas;
  options.serve_workers = 2;
  return options;
}

std::string QueryXml() {
  SearchRequest request;
  request.keywords = "patient height gender diagnosis";
  request.top_k = 5;
  request.candidate_pool = 20;
  return SearchRequestToXml(request);
}

Result<HttpReply> PostSearch(int port, const std::string& body,
                             double timeout_seconds = 10.0) {
  HttpCallOptions options;
  options.method = "POST";
  options.body = body;
  options.attempt_timeout_seconds = timeout_seconds;
  options.max_attempts = 1;  // the coordinator owns failover, not the client
  return HttpCall("127.0.0.1", port, "/search", options);
}

/// True when `port`'s /readyz answers 200 within `timeout_seconds`.
bool Readyz(int port, double timeout_seconds = 1.0) {
  HttpCallOptions options;
  options.attempt_timeout_seconds = timeout_seconds;
  options.max_attempts = 1;
  auto reply = HttpCall("127.0.0.1", port, "/readyz", options);
  return reply.ok() && reply->status == 200;
}

// --- the serving contract through the coordinator ---------------------------

TEST(FleetTest, SearchThroughCoordinatorIsByteIdenticalToDirectBackend) {
  const std::string repo_dir = SeedRepo("schemr_fleet_ident", 40);
  CoordinatorOptions coordinator;
  coordinator.hedge = false;  // one backend answers; no racing attempt
  Fleet fleet(MakeFleetOptions(repo_dir, 2), coordinator);
  ASSERT_TRUE(fleet.Start().ok());

  const std::string body = QueryXml();
  auto direct = PostSearch(fleet.ReplicaConfig(0).search_port, body);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_EQ(direct->status, 200);
  ASSERT_FALSE(direct->body.empty());

  // Replicas serve identical corpora, so whichever backend the
  // coordinator routes to must produce these exact bytes.
  auto via = PostSearch(fleet.coordinator().port(), body);
  ASSERT_TRUE(via.ok()) << via.status();
  EXPECT_EQ(via->status, 200);
  EXPECT_EQ(via->body, direct->body);
  EXPECT_EQ(via->headers.at("content-type"), direct->headers.at("content-type"));

  // Request identity rides only on a new response header — the body
  // bytes above already proved the payload contract is untouched. Both
  // entry points echo a well-formed id; the coordinator's is the base
  // id, never the hop-suffixed variant it forwarded.
  ASSERT_EQ(via->headers.count("x-schemr-request-id"), 1u);
  EXPECT_TRUE(IsValidRequestId(via->headers.at("x-schemr-request-id")));
  ASSERT_EQ(direct->headers.count("x-schemr-request-id"), 1u);
  EXPECT_TRUE(IsValidRequestId(direct->headers.at("x-schemr-request-id")));

  // The coordinator's own readiness follows the pool.
  EXPECT_TRUE(Readyz(fleet.coordinator().port()));
  EXPECT_EQ(fleet.coordinator().pool().RoutableCount(), 2u);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- kill -9 under load -----------------------------------------------------

TEST(FleetTest, KillNineUnderLoadNeverFabricatesNonShed5xx) {
  const std::string repo_dir = SeedRepo("schemr_fleet_kill", 40);
  Fleet fleet(MakeFleetOptions(repo_dir, 3), {});
  ASSERT_TRUE(fleet.Start().ok());
  const int port = fleet.coordinator().port();
  const std::string body = QueryXml();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};         // 503 carrying the shed vocabulary
  std::atomic<uint64_t> bad_5xx{0};      // anything else in 5xx: forbidden
  std::atomic<uint64_t> net_errors{0};   // incomplete client exchanges
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto reply = PostSearch(port, body);
        if (!reply.ok()) {
          net_errors.fetch_add(1, std::memory_order_relaxed);
        } else if (reply->status == 200) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (reply->status == 503 &&
                   reply->headers.count("x-schemr-shed") > 0) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (reply->status >= 500) {
          bad_5xx.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Let load establish, then kill -9 one replica mid-flight and let the
  // supervisor respawn it while clients keep hammering.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(fleet.KillReplica(1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(fleet.SupervisePass(), 1);
  ASSERT_TRUE(fleet.WaitRoutable(1, 20.0).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  // The contract: every client saw either a real backend answer or an
  // honest shed. A kill -9 mid-exchange must surface as a failover, not
  // as a fabricated 502/504 or a torn response.
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(bad_5xx.load(), 0u);
  EXPECT_EQ(net_errors.load(), 0u);
  // The killed replica is routable again (probe readmission).
  EXPECT_EQ(fleet.coordinator().pool().RoutableCount(), 3u);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- circuit breaker --------------------------------------------------------

TEST(FleetTest, BreakerOpensOnInjectedFailuresAndHalfOpenProbeReadmits) {
  const std::string repo_dir = SeedRepo("schemr_fleet_breaker", 30);
  CoordinatorOptions coordinator;
  coordinator.hedge = false;  // hedging would consume injected faults
  coordinator.pool.failure_threshold = 3;
  coordinator.pool.open_cooldown_seconds = 0.3;
  Fleet fleet(MakeFleetOptions(repo_dir, 2), coordinator);
  ASSERT_TRUE(fleet.Start().ok());
  const std::string body = QueryXml();

  // Blackhole every coordinator→backend attempt for exactly enough hits
  // to trip both breakers (threshold per backend, two backends), then go
  // dormant. Each request fails over across both, so three requests feed
  // three consecutive failures to each backend.
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.count = 2 * coordinator.pool.failure_threshold;
  FaultInjector::Global().Arm("coord/backend/blackhole", spec);
  int sheds = 0;
  for (int i = 0; i < 6 && sheds < 3; ++i) {
    auto reply = PostSearch(fleet.coordinator().port(), body);
    ASSERT_TRUE(reply.ok()) << reply.status();
    if (reply->status == 503) ++sheds;
  }
  FaultInjector::Global().Disarm("coord/backend/blackhole");

  // At least one breaker tripped open on consecutive failures.
  bool saw_open = false;
  for (const BackendSnapshot& s : fleet.coordinator().pool().Snapshot()) {
    saw_open = saw_open || s.breaker == BreakerState::kOpen ||
               s.failures >= 3;
  }
  EXPECT_TRUE(saw_open);

  // The backends themselves were healthy all along, so after the
  // cooldown the probe thread walks each open breaker through half-open
  // and a successful /readyz probe re-closes it — no live traffic needed.
  ASSERT_TRUE(fleet.WaitRoutable(0, 10.0).ok());
  ASSERT_TRUE(fleet.WaitRoutable(1, 10.0).ok());
  auto reply = PostSearch(fleet.coordinator().port(), body);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, 200);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- rolling drain ----------------------------------------------------------

TEST(FleetTest, RollingRestartKeepsReadyCountAtNMinusOne) {
  const std::string repo_dir = SeedRepo("schemr_fleet_roll", 30);
  Fleet fleet(MakeFleetOptions(repo_dir, 3), {});
  ASSERT_TRUE(fleet.Start().ok());

  std::atomic<bool> done{false};
  Status rolled;
  std::thread restarter([&] {
    rolled = fleet.RollingRestart();
    done.store(true, std::memory_order_release);
  });

  // Poll every replica's own /readyz while the drain walks the fleet:
  // at most one replica may be out (draining, stopped, or not yet
  // re-ready) at any sample.
  int samples = 0;
  while (!done.load(std::memory_order_acquire)) {
    int ready = 0;
    for (int id = 0; id < fleet.replicas(); ++id) {
      if (Readyz(fleet.ReplicaConfig(id).introspection_port, 0.5)) ++ready;
    }
    ++samples;
    ASSERT_GE(ready, fleet.replicas() - 1) << "sample " << samples;
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  restarter.join();
  ASSERT_TRUE(rolled.ok()) << rolled;
  EXPECT_GT(samples, 0);

  // Drain complete: the whole fleet is ready and serving again.
  for (int id = 0; id < fleet.replicas(); ++id) {
    EXPECT_TRUE(Readyz(fleet.ReplicaConfig(id).introspection_port, 2.0))
        << "replica " << id;
  }
  EXPECT_EQ(fleet.coordinator().pool().RoutableCount(), 3u);
  auto reply = PostSearch(fleet.coordinator().port(), QueryXml());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, 200);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- cross-process request identity -----------------------------------------

/// Pulls the value of `"request_id": "..."` out of one /tracez line, or
/// "" when the line carries none. Ids are `[A-Za-z0-9-]`, so no JSON
/// unescaping is needed here.
std::string TraceLineRequestId(const std::string& line) {
  static const std::string kKey = "\"request_id\": \"";
  const size_t at = line.find(kKey);
  if (at == std::string::npos) return "";
  const size_t begin = at + kKey.size();
  const size_t end = line.find('"', begin);
  if (end == std::string::npos) return "";
  return line.substr(begin, end - begin);
}

TEST(FleetTest, FailedOverRequestLeavesOneJoinableIdAcrossProcesses) {
  const std::string repo_dir = SeedRepo("schemr_fleet_join", 30);
  CoordinatorOptions coordinator;
  coordinator.hedge = false;  // one live attempt at a time: a clean failover
  FleetOptions fleet_options = MakeFleetOptions(repo_dir, 2);
  fleet_options.serve_sample_every = 1;  // every replica request traced
  Fleet fleet(fleet_options, coordinator);
  ASSERT_TRUE(fleet.Start().ok());
  const int port = fleet.coordinator().port();

  // Blackhole exactly the first coordinator→backend attempt: hop 0 dies
  // without ever reaching a replica, hop 1 fails over and serves.
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.count = 1;
  FaultInjector::Global().Arm("coord/backend/blackhole", spec);
  const std::string id = "test-join-0001";
  HttpCallOptions call;
  call.method = "POST";
  call.body = QueryXml();
  call.headers.emplace_back(kRequestIdHeader, id);
  call.attempt_timeout_seconds = 10.0;
  auto reply = HttpCall("127.0.0.1", port, "/search", call);
  FaultInjector::Global().Disarm("coord/backend/blackhole");
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->status, 200);
  // The client gets its own id back in base form.
  ASSERT_EQ(reply->headers.count("x-schemr-request-id"), 1u);
  EXPECT_EQ(reply->headers.at("x-schemr-request-id"), id);

  // Fragment one: the coordinator's hop journal, keyed by the base id,
  // recording both the broken primary attempt and the failover.
  auto coord_trace = HttpGet("127.0.0.1", port, "/tracez", 2.0);
  ASSERT_TRUE(coord_trace.ok()) << coord_trace.status();
  bool journaled = false;
  {
    std::stringstream lines(*coord_trace);
    std::string line;
    while (std::getline(lines, line)) {
      if (TraceLineRequestId(line) != id) continue;
      journaled = true;
      EXPECT_NE(line.find("h0"), std::string::npos) << line;
      EXPECT_NE(line.find("broken"), std::string::npos) << line;
      EXPECT_NE(line.find("h1"), std::string::npos) << line;
      EXPECT_NE(line.find("failover"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(journaled) << *coord_trace;

  // Fragment two: exactly one replica traced the request, under the
  // hop-suffixed variant of the same id.
  int traced_replicas = 0;
  int serving = -1;
  std::string hop_id;
  for (int r = 0; r < fleet.replicas(); ++r) {
    auto body = HttpGet("127.0.0.1",
                        fleet.ReplicaConfig(r).introspection_port, "/tracez",
                        2.0);
    ASSERT_TRUE(body.ok()) << body.status();
    std::stringstream lines(*body);
    std::string line;
    bool hit = false;
    while (std::getline(lines, line)) {
      const std::string recorded = TraceLineRequestId(line);
      if (recorded.empty() || !RequestIdMatches(id, recorded)) continue;
      hit = true;
      hop_id = recorded;
    }
    if (hit) {
      ++traced_replicas;
      serving = r;
    }
  }
  EXPECT_EQ(traced_replicas, 1);
  EXPECT_EQ(hop_id, id + "-h1") << "the failover attempt is hop 1";

  // Fragment three: the serving replica's on-disk audit record carries
  // the same hop id — durable evidence that outlives the process.
  int audited = 0;
  for (int r = 0; r < fleet.replicas(); ++r) {
    auto report =
        ReadAuditLog(repo_dir + ".replica" + std::to_string(r) + "/audit");
    if (!report.ok()) continue;
    for (const AuditRecord& record : report->records) {
      if (!RequestIdMatches(id, record.request_id)) continue;
      ++audited;
      EXPECT_EQ(record.request_id, hop_id);
      EXPECT_EQ(record.outcome, AuditOutcome::kOk);
    }
  }
  EXPECT_EQ(audited, 1);

  // `schemr trace` — the real CLI against the live fleet — assembles the
  // whole story from the base id alone.
  const std::string cmd = std::string(SCHEMR_BINARY_PATH) +
                          " trace 127.0.0.1:" + std::to_string(port) + " " +
                          id + " 2>&1";
  const auto run_trace = [&cmd](std::string* output) {
    output->clear();
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) return -1;
    char buf[512];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) *output += buf;
    const int status = ::pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  };
  std::string output;
  ASSERT_EQ(run_trace(&output), 0) << output;
  EXPECT_NE(output.find("coordinator"), std::string::npos) << output;
  EXPECT_NE(output.find("id=" + id), std::string::npos) << output;
  EXPECT_NE(output.find("id=" + hop_id), std::string::npos) << output;
  EXPECT_NE(output.find("failover"), std::string::npos) << output;

  // Kill the serving replica: its /tracez is gone, but the timeline
  // degrades to the coordinator journal instead of failing.
  ASSERT_GE(serving, 0);
  ASSERT_TRUE(fleet.KillReplica(serving).ok());
  ASSERT_EQ(run_trace(&output), 0) << output;
  EXPECT_NE(output.find("id=" + id), std::string::npos) << output;
  EXPECT_NE(output.find("unreachable"), std::string::npos) << output;

  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- metrics federation -----------------------------------------------------

TEST(FleetTest, FederatedMetricsMergeBucketwiseAndSkipDeadReplicas) {
  const std::string repo_dir = SeedRepo("schemr_fleet_fed", 30);
  CoordinatorOptions coordinator;
  coordinator.hedge = false;
  Fleet fleet(MakeFleetOptions(repo_dir, 3), coordinator);
  ASSERT_TRUE(fleet.Start().ok());
  const int port = fleet.coordinator().port();
  const std::string body = QueryXml();
  const std::string kFamily = "schemr_fleet_service_search_xml_seconds";

  // Scrape the merged exposition repeatedly WHILE clients hammer the
  // fleet: every scrape must stay conformant, and the fleet-wide search
  // count must be non-decreasing (each replica's counter is monotonic
  // and each merge scrapes strictly later).
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)PostSearch(port, body, 5.0);
      }
    });
  }
  uint64_t last_count = 0;
  for (int scrape = 0; scrape < 4; ++scrape) {
    auto merged = HttpGet("127.0.0.1", port, "/metrics?merge=fleet", 5.0);
    ASSERT_TRUE(merged.ok()) << merged.status();
    const Status conformant = CheckPrometheusText(*merged);
    ASSERT_TRUE(conformant.ok()) << conformant.ToString();
    auto parsed = ParsePrometheusSnapshots(*merged);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    for (const auto& m : *parsed) {
      if (m.name != kFamily) continue;
      EXPECT_GE(m.histogram.count, last_count) << "scrape " << scrape;
      last_count = m.histogram.count;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  EXPECT_GT(last_count, 0u) << "load never reached the replicas";

  // Kill one replica and leave it dead: federation must degrade to the
  // survivors, not fail or fabricate.
  ASSERT_TRUE(fleet.KillReplica(2).ok());

  // Quiesced, the merge is exact: the coordinator's fleet search family
  // equals the bucket-wise merge of the survivors' own /metrics. (Only
  // the search family is compared — readiness probes keep the replicas'
  // HTTP counters moving even with client load stopped.)
  auto merged = HttpGet("127.0.0.1", port, "/metrics?merge=fleet", 5.0);
  ASSERT_TRUE(merged.ok()) << merged.status();
  auto fleet_parsed = ParsePrometheusSnapshots(*merged);
  ASSERT_TRUE(fleet_parsed.ok()) << fleet_parsed.status().ToString();

  std::vector<std::vector<MetricsRegistry::MetricSnapshot>> scrapes;
  for (int r = 0; r < 2; ++r) {
    auto direct = HttpGet("127.0.0.1",
                          fleet.ReplicaConfig(r).introspection_port,
                          "/metrics", 2.0);
    ASSERT_TRUE(direct.ok()) << direct.status();
    auto parsed = ParsePrometheusSnapshots(*direct);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    scrapes.push_back(std::move(*parsed));
  }
  const std::vector<MetricsRegistry::MetricSnapshot> want =
      RenameForFleet(MergeMetricSnapshots(scrapes));

  const MetricsRegistry::MetricSnapshot* got = nullptr;
  const MetricsRegistry::MetricSnapshot* reference = nullptr;
  for (const auto& m : *fleet_parsed) {
    if (m.name == kFamily) got = &m;
    if (m.name == "schemr_fleet_replicas_scraped") {
      EXPECT_DOUBLE_EQ(m.gauge_value, 2.0) << "dead replica must be skipped";
    }
  }
  for (const auto& m : want) {
    if (m.name == kFamily) reference = &m;
  }
  ASSERT_NE(got, nullptr);
  ASSERT_NE(reference, nullptr);
  EXPECT_EQ(got->histogram.bounds, reference->histogram.bounds);
  EXPECT_EQ(got->histogram.buckets, reference->histogram.buckets);
  EXPECT_EQ(got->histogram.count, reference->histogram.count);

  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- chaos torture ----------------------------------------------------------

TEST(FleetChaosTest, TortureKillsStallsAndRestartsUnderLoad) {
  const int cycles = TortureCycles();
  const std::string repo_dir = SeedRepo("schemr_fleet_torture", 30);
  Fleet fleet(MakeFleetOptions(repo_dir, 3), {});
  ASSERT_TRUE(fleet.Start().ok());
  const int port = fleet.coordinator().port();
  const std::string body = QueryXml();
  Rng rng(20260807);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> bad_5xx{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto reply = PostSearch(port, body, 5.0);
        if (!reply.ok()) continue;  // liveness is asserted after the joins
        if (reply->status == 200) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (reply->status >= 500 && reply->status != 503) {
          bad_5xx.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int cycle = 0; cycle < cycles; ++cycle) {
    const int victim = static_cast<int>(rng.NextBelow(3));
    switch (rng.NextBelow(4)) {
      case 0: {  // kill -9, then let the supervisor respawn
        ASSERT_TRUE(fleet.KillReplica(victim).ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<int>(rng.NextBelow(300))));
        fleet.SupervisePass();
        ASSERT_TRUE(fleet.WaitRoutable(victim, 20.0).ok());
        break;
      }
      case 1: {  // stall (SIGSTOP) long enough for probes to notice
        ASSERT_TRUE(fleet.StallReplica(victim, true).ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(
            400 + static_cast<int>(rng.NextBelow(400))));
        ASSERT_TRUE(fleet.StallReplica(victim, false).ok());
        ASSERT_TRUE(fleet.WaitRoutable(victim, 20.0).ok());
        break;
      }
      case 2: {  // count-limited coordinator faults racing live traffic
        FaultSpec probe;
        probe.kind = FaultKind::kError;
        probe.error_code = ECONNREFUSED;
        probe.count = 1 + static_cast<int>(rng.NextBelow(3));
        FaultInjector::Global().Arm("coord/probe/fail", probe);
        FaultSpec blackhole;
        blackhole.kind = FaultKind::kError;
        blackhole.count = 1 + static_cast<int>(rng.NextBelow(3));
        FaultInjector::Global().Arm("coord/backend/blackhole", blackhole);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<int>(rng.NextBelow(300))));
        break;
      }
      case 3: {  // rolling restart of the whole fleet under load
        ASSERT_TRUE(fleet.RollingRestart().ok());
        break;
      }
    }
  }
  FaultInjector::Global().Disarm("coord/probe/fail");
  FaultInjector::Global().Disarm("coord/backend/blackhole");

  // Settle: every replica routable, then the fleet must still serve.
  for (int id = 0; id < fleet.replicas(); ++id) {
    ASSERT_TRUE(fleet.WaitRoutable(id, 30.0).ok()) << "replica " << id;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(bad_5xx.load(), 0u);
  auto reply = PostSearch(port, body);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 200);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

}  // namespace
}  // namespace schemr
