// Cross-process chaos tests for the replica fleet (DESIGN.md §14): a
// Fleet of real `schemr serve` child processes behind the failover
// Coordinator. Covered: the byte-identical serving contract THROUGH the
// coordinator (a /search answered via the coordinator equals the same
// request answered by a backend directly), kill -9 of a replica under
// client load without a single fabricated non-shed 5xx, circuit-breaker
// open → half-open probe readmission, the rolling-drain invariant
// (ready count never below N−1, asserted by polling every replica's
// /readyz), and a torture loop racing kills, stalls, injected
// coordinator faults, and rolling restarts against live client traffic.
// SCHEMR_TORTURE_CYCLES scales the torture loop. The schemr binary the
// replicas exec is baked in at compile time (SCHEMR_BINARY_PATH).

#include "service/fleet.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "corpus/schema_generator.h"
#include "index/indexer.h"
#include "repo/schema_repository.h"
#include "service/coordinator.h"
#include "service/http_server.h"
#include "service/schemr_service.h"
#include "util/fault_injection.h"
#include "util/rng.h"

#ifndef SCHEMR_BINARY_PATH
#error "SCHEMR_BINARY_PATH must point at the schemr CLI binary"
#endif

namespace schemr {
namespace {

namespace fs = std::filesystem;

int TortureCycles() {
  const char* env = std::getenv("SCHEMR_TORTURE_CYCLES");
  if (env != nullptr) {
    const int cycles = std::atoi(env);
    if (cycles > 0) return cycles;
  }
  return 4;
}

/// Seeds an on-disk repository + index segment the way `schemr seed`
/// does, so real `schemr serve` children can open it.
std::string SeedRepo(const std::string& name, size_t schemas) {
  const fs::path dir =
      fs::temp_directory_path() /
      (name + "_" + std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto repo = SchemaRepository::Open(dir.string());
  EXPECT_TRUE(repo.ok()) << repo.status();
  CorpusOptions options;
  options.num_schemas = schemas;
  options.seed = 2026;
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    EXPECT_TRUE((*repo)->Insert(g.schema).ok());
  }
  Indexer indexer;
  EXPECT_TRUE(indexer.RebuildFromRepository(**repo).ok());
  EXPECT_TRUE(indexer.Save((dir / "segment.idx").string()).ok());
  return dir.string();
}

FleetOptions MakeFleetOptions(const std::string& repo_dir, int replicas) {
  FleetOptions options;
  options.binary_path = SCHEMR_BINARY_PATH;
  options.repo_dir = repo_dir;
  options.replicas = replicas;
  options.serve_workers = 2;
  return options;
}

std::string QueryXml() {
  SearchRequest request;
  request.keywords = "patient height gender diagnosis";
  request.top_k = 5;
  request.candidate_pool = 20;
  return SearchRequestToXml(request);
}

Result<HttpReply> PostSearch(int port, const std::string& body,
                             double timeout_seconds = 10.0) {
  HttpCallOptions options;
  options.method = "POST";
  options.body = body;
  options.attempt_timeout_seconds = timeout_seconds;
  options.max_attempts = 1;  // the coordinator owns failover, not the client
  return HttpCall("127.0.0.1", port, "/search", options);
}

/// True when `port`'s /readyz answers 200 within `timeout_seconds`.
bool Readyz(int port, double timeout_seconds = 1.0) {
  HttpCallOptions options;
  options.attempt_timeout_seconds = timeout_seconds;
  options.max_attempts = 1;
  auto reply = HttpCall("127.0.0.1", port, "/readyz", options);
  return reply.ok() && reply->status == 200;
}

// --- the serving contract through the coordinator ---------------------------

TEST(FleetTest, SearchThroughCoordinatorIsByteIdenticalToDirectBackend) {
  const std::string repo_dir = SeedRepo("schemr_fleet_ident", 40);
  CoordinatorOptions coordinator;
  coordinator.hedge = false;  // one backend answers; no racing attempt
  Fleet fleet(MakeFleetOptions(repo_dir, 2), coordinator);
  ASSERT_TRUE(fleet.Start().ok());

  const std::string body = QueryXml();
  auto direct = PostSearch(fleet.ReplicaConfig(0).search_port, body);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ASSERT_EQ(direct->status, 200);
  ASSERT_FALSE(direct->body.empty());

  // Replicas serve identical corpora, so whichever backend the
  // coordinator routes to must produce these exact bytes.
  auto via = PostSearch(fleet.coordinator().port(), body);
  ASSERT_TRUE(via.ok()) << via.status();
  EXPECT_EQ(via->status, 200);
  EXPECT_EQ(via->body, direct->body);
  EXPECT_EQ(via->headers.at("content-type"), direct->headers.at("content-type"));

  // The coordinator's own readiness follows the pool.
  EXPECT_TRUE(Readyz(fleet.coordinator().port()));
  EXPECT_EQ(fleet.coordinator().pool().RoutableCount(), 2u);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- kill -9 under load -----------------------------------------------------

TEST(FleetTest, KillNineUnderLoadNeverFabricatesNonShed5xx) {
  const std::string repo_dir = SeedRepo("schemr_fleet_kill", 40);
  Fleet fleet(MakeFleetOptions(repo_dir, 3), {});
  ASSERT_TRUE(fleet.Start().ok());
  const int port = fleet.coordinator().port();
  const std::string body = QueryXml();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};         // 503 carrying the shed vocabulary
  std::atomic<uint64_t> bad_5xx{0};      // anything else in 5xx: forbidden
  std::atomic<uint64_t> net_errors{0};   // incomplete client exchanges
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto reply = PostSearch(port, body);
        if (!reply.ok()) {
          net_errors.fetch_add(1, std::memory_order_relaxed);
        } else if (reply->status == 200) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (reply->status == 503 &&
                   reply->headers.count("x-schemr-shed") > 0) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (reply->status >= 500) {
          bad_5xx.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Let load establish, then kill -9 one replica mid-flight and let the
  // supervisor respawn it while clients keep hammering.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(fleet.KillReplica(1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(fleet.SupervisePass(), 1);
  ASSERT_TRUE(fleet.WaitRoutable(1, 20.0).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  // The contract: every client saw either a real backend answer or an
  // honest shed. A kill -9 mid-exchange must surface as a failover, not
  // as a fabricated 502/504 or a torn response.
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(bad_5xx.load(), 0u);
  EXPECT_EQ(net_errors.load(), 0u);
  // The killed replica is routable again (probe readmission).
  EXPECT_EQ(fleet.coordinator().pool().RoutableCount(), 3u);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- circuit breaker --------------------------------------------------------

TEST(FleetTest, BreakerOpensOnInjectedFailuresAndHalfOpenProbeReadmits) {
  const std::string repo_dir = SeedRepo("schemr_fleet_breaker", 30);
  CoordinatorOptions coordinator;
  coordinator.hedge = false;  // hedging would consume injected faults
  coordinator.pool.failure_threshold = 3;
  coordinator.pool.open_cooldown_seconds = 0.3;
  Fleet fleet(MakeFleetOptions(repo_dir, 2), coordinator);
  ASSERT_TRUE(fleet.Start().ok());
  const std::string body = QueryXml();

  // Blackhole every coordinator→backend attempt for exactly enough hits
  // to trip both breakers (threshold per backend, two backends), then go
  // dormant. Each request fails over across both, so three requests feed
  // three consecutive failures to each backend.
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.count = 2 * coordinator.pool.failure_threshold;
  FaultInjector::Global().Arm("coord/backend/blackhole", spec);
  int sheds = 0;
  for (int i = 0; i < 6 && sheds < 3; ++i) {
    auto reply = PostSearch(fleet.coordinator().port(), body);
    ASSERT_TRUE(reply.ok()) << reply.status();
    if (reply->status == 503) ++sheds;
  }
  FaultInjector::Global().Disarm("coord/backend/blackhole");

  // At least one breaker tripped open on consecutive failures.
  bool saw_open = false;
  for (const BackendSnapshot& s : fleet.coordinator().pool().Snapshot()) {
    saw_open = saw_open || s.breaker == BreakerState::kOpen ||
               s.failures >= 3;
  }
  EXPECT_TRUE(saw_open);

  // The backends themselves were healthy all along, so after the
  // cooldown the probe thread walks each open breaker through half-open
  // and a successful /readyz probe re-closes it — no live traffic needed.
  ASSERT_TRUE(fleet.WaitRoutable(0, 10.0).ok());
  ASSERT_TRUE(fleet.WaitRoutable(1, 10.0).ok());
  auto reply = PostSearch(fleet.coordinator().port(), body);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, 200);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- rolling drain ----------------------------------------------------------

TEST(FleetTest, RollingRestartKeepsReadyCountAtNMinusOne) {
  const std::string repo_dir = SeedRepo("schemr_fleet_roll", 30);
  Fleet fleet(MakeFleetOptions(repo_dir, 3), {});
  ASSERT_TRUE(fleet.Start().ok());

  std::atomic<bool> done{false};
  Status rolled;
  std::thread restarter([&] {
    rolled = fleet.RollingRestart();
    done.store(true, std::memory_order_release);
  });

  // Poll every replica's own /readyz while the drain walks the fleet:
  // at most one replica may be out (draining, stopped, or not yet
  // re-ready) at any sample.
  int samples = 0;
  while (!done.load(std::memory_order_acquire)) {
    int ready = 0;
    for (int id = 0; id < fleet.replicas(); ++id) {
      if (Readyz(fleet.ReplicaConfig(id).introspection_port, 0.5)) ++ready;
    }
    ++samples;
    ASSERT_GE(ready, fleet.replicas() - 1) << "sample " << samples;
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  restarter.join();
  ASSERT_TRUE(rolled.ok()) << rolled;
  EXPECT_GT(samples, 0);

  // Drain complete: the whole fleet is ready and serving again.
  for (int id = 0; id < fleet.replicas(); ++id) {
    EXPECT_TRUE(Readyz(fleet.ReplicaConfig(id).introspection_port, 2.0))
        << "replica " << id;
  }
  EXPECT_EQ(fleet.coordinator().pool().RoutableCount(), 3u);
  auto reply = PostSearch(fleet.coordinator().port(), QueryXml());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, 200);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

// --- chaos torture ----------------------------------------------------------

TEST(FleetChaosTest, TortureKillsStallsAndRestartsUnderLoad) {
  const int cycles = TortureCycles();
  const std::string repo_dir = SeedRepo("schemr_fleet_torture", 30);
  Fleet fleet(MakeFleetOptions(repo_dir, 3), {});
  ASSERT_TRUE(fleet.Start().ok());
  const int port = fleet.coordinator().port();
  const std::string body = QueryXml();
  Rng rng(20260807);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> bad_5xx{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto reply = PostSearch(port, body, 5.0);
        if (!reply.ok()) continue;  // liveness is asserted after the joins
        if (reply->status == 200) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (reply->status >= 500 && reply->status != 503) {
          bad_5xx.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int cycle = 0; cycle < cycles; ++cycle) {
    const int victim = static_cast<int>(rng.NextBelow(3));
    switch (rng.NextBelow(4)) {
      case 0: {  // kill -9, then let the supervisor respawn
        ASSERT_TRUE(fleet.KillReplica(victim).ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<int>(rng.NextBelow(300))));
        fleet.SupervisePass();
        ASSERT_TRUE(fleet.WaitRoutable(victim, 20.0).ok());
        break;
      }
      case 1: {  // stall (SIGSTOP) long enough for probes to notice
        ASSERT_TRUE(fleet.StallReplica(victim, true).ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(
            400 + static_cast<int>(rng.NextBelow(400))));
        ASSERT_TRUE(fleet.StallReplica(victim, false).ok());
        ASSERT_TRUE(fleet.WaitRoutable(victim, 20.0).ok());
        break;
      }
      case 2: {  // count-limited coordinator faults racing live traffic
        FaultSpec probe;
        probe.kind = FaultKind::kError;
        probe.error_code = ECONNREFUSED;
        probe.count = 1 + static_cast<int>(rng.NextBelow(3));
        FaultInjector::Global().Arm("coord/probe/fail", probe);
        FaultSpec blackhole;
        blackhole.kind = FaultKind::kError;
        blackhole.count = 1 + static_cast<int>(rng.NextBelow(3));
        FaultInjector::Global().Arm("coord/backend/blackhole", blackhole);
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<int>(rng.NextBelow(300))));
        break;
      }
      case 3: {  // rolling restart of the whole fleet under load
        ASSERT_TRUE(fleet.RollingRestart().ok());
        break;
      }
    }
  }
  FaultInjector::Global().Disarm("coord/probe/fail");
  FaultInjector::Global().Disarm("coord/backend/blackhole");

  // Settle: every replica routable, then the fleet must still serve.
  for (int id = 0; id < fleet.replicas(); ++id) {
    ASSERT_TRUE(fleet.WaitRoutable(id, 30.0).ok()) << "replica " << id;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(bad_5xx.load(), 0u);
  auto reply = PostSearch(port, body);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 200);
  fleet.Shutdown();
  fs::remove_all(repo_dir);
}

}  // namespace
}  // namespace schemr
