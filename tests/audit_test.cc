// Audit-log coverage (DESIGN.md §10): record codec round-trips, segment
// rotation and retention bounds, crash tolerance (torn tails, mid-file
// byte flips, injected short writes), the slow-query ring, fingerprint
// and digest stability, the service integration that writes records for
// served, shed, and failed requests, and the incremental cursor reads
// behind `schemr audit tail --follow`.

#include "obs/audit_log.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/fingerprint.h"
#include "core/query_parser.h"
#include "index/indexer.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "service/schemr_service.h"
#include "util/fault_injection.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

AuditRecord SampleRecord(uint64_t n) {
  AuditRecord record;
  record.timestamp_micros = 1700000000000000ull + n;
  record.fingerprint = 0xabcdef12345678ull ^ n;
  record.outcome = AuditOutcome::kOk;
  record.total_micros = 1000 + n;
  record.phase1_micros = 100 + n;
  record.phase2_micros = 700 + n;
  record.phase3_micros = 200 + n;
  record.deadline_micros = 2000000;
  record.budget_micros = 0;
  record.result_digest = 0x1122334455667788ull + n;
  record.result_count = 10;
  record.top_k = 10;
  record.candidate_pool = 50;
  return record;
}

class AuditLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemr_audit_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    FaultInjector::Global().DisarmAll();
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    fs::remove_all(dir_);
  }

  std::unique_ptr<AuditLog> OpenLog(AuditLogOptions options = {}) {
    auto result = AuditLog::Open(dir_.string(), options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  std::vector<fs::path> SegmentFiles() const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  fs::path dir_;
};

// --- record codec -----------------------------------------------------------

TEST(AuditRecordCodec, RoundTripsEveryField) {
  AuditRecord record = SampleRecord(7);
  record.outcome = AuditOutcome::kDegraded;
  record.budget_micros = 12345;
  record.coarse_only_candidates = 3;
  record.dropped_matchers = 2;
  record.deadline_hit = true;
  record.has_query_text = true;
  record.keywords = "customer order";
  record.fragment = "CREATE TABLE t (id INT);";

  std::string payload;
  EncodeAuditRecord(record, &payload);
  AuditRecord decoded;
  ASSERT_TRUE(DecodeAuditRecord(payload, &decoded).ok());
  EXPECT_EQ(decoded.timestamp_micros, record.timestamp_micros);
  EXPECT_EQ(decoded.fingerprint, record.fingerprint);
  EXPECT_EQ(decoded.outcome, record.outcome);
  EXPECT_EQ(decoded.total_micros, record.total_micros);
  EXPECT_EQ(decoded.phase1_micros, record.phase1_micros);
  EXPECT_EQ(decoded.phase2_micros, record.phase2_micros);
  EXPECT_EQ(decoded.phase3_micros, record.phase3_micros);
  EXPECT_EQ(decoded.deadline_micros, record.deadline_micros);
  EXPECT_EQ(decoded.budget_micros, record.budget_micros);
  EXPECT_EQ(decoded.result_digest, record.result_digest);
  EXPECT_EQ(decoded.result_count, record.result_count);
  EXPECT_EQ(decoded.top_k, record.top_k);
  EXPECT_EQ(decoded.candidate_pool, record.candidate_pool);
  EXPECT_EQ(decoded.coarse_only_candidates, record.coarse_only_candidates);
  EXPECT_EQ(decoded.dropped_matchers, record.dropped_matchers);
  EXPECT_EQ(decoded.deadline_hit, record.deadline_hit);
  EXPECT_TRUE(decoded.has_query_text);
  EXPECT_EQ(decoded.keywords, record.keywords);
  EXPECT_EQ(decoded.fragment, record.fragment);
}

TEST(AuditRecordCodec, RoundTripsWithoutText) {
  AuditRecord record = SampleRecord(1);
  std::string payload;
  EncodeAuditRecord(record, &payload);
  AuditRecord decoded;
  ASSERT_TRUE(DecodeAuditRecord(payload, &decoded).ok());
  EXPECT_FALSE(decoded.has_query_text);
  EXPECT_TRUE(decoded.keywords.empty());
}

TEST(AuditRecordCodec, RoundTripsRequestId) {
  AuditRecord record = SampleRecord(3);
  record.has_query_text = true;
  record.keywords = "customer";
  record.request_id = "r1a2b3-cafe-7";
  std::string payload;
  EncodeAuditRecord(record, &payload);
  AuditRecord decoded;
  ASSERT_TRUE(DecodeAuditRecord(payload, &decoded).ok());
  EXPECT_EQ(decoded.request_id, record.request_id);
  EXPECT_EQ(decoded.keywords, record.keywords);
}

// Cross-version compatibility: the request-id field is flag-gated and
// trailing, so a record WITHOUT one encodes byte-identically to the
// pre-request-id layout — old segments keep parsing (backward), and old
// readers only ever see old-shaped bytes for id-less records (forward:
// nothing but the new flag bit plus trailing bytes was added).
TEST(AuditRecordCodec, RequestIdFieldIsBackwardAndForwardCompatible) {
  AuditRecord record = SampleRecord(4);
  record.has_query_text = true;
  record.keywords = "order lines";

  std::string old_layout;
  EncodeAuditRecord(record, &old_layout);

  AuditRecord tagged = record;
  tagged.request_id = "join-me-42";
  std::string new_layout;
  EncodeAuditRecord(tagged, &new_layout);

  // The new field costs exactly its length prefix + bytes (plus the flag
  // bit inside the existing flags varint — free below 128), appended
  // after every pre-existing field.
  ASSERT_EQ(new_layout.size(),
            old_layout.size() + 1 + tagged.request_id.size());

  // An id-less record decodes with an empty id under the same version
  // byte — old segments keep parsing.
  AuditRecord decoded_old;
  ASSERT_TRUE(DecodeAuditRecord(old_layout, &decoded_old).ok());
  EXPECT_TRUE(decoded_old.request_id.empty());

  // A tagged record decodes losslessly — and with no trailing bytes left
  // over (the decoder still rejects any).
  AuditRecord decoded_new;
  ASSERT_TRUE(DecodeAuditRecord(new_layout, &decoded_new).ok());
  EXPECT_EQ(decoded_new.request_id, "join-me-42");
  EXPECT_FALSE(DecodeAuditRecord(new_layout + "x", &decoded_new).ok());

  // Clearing the id reproduces the old layout byte-for-byte: the field
  // is strictly additive, never a re-arrangement.
  decoded_new.request_id.clear();
  std::string reencoded;
  EncodeAuditRecord(decoded_new, &reencoded);
  EXPECT_EQ(reencoded, old_layout);
}

TEST(AuditRecordCodec, RejectsDamage) {
  std::string payload;
  EncodeAuditRecord(SampleRecord(2), &payload);
  AuditRecord decoded;
  // Truncation at every prefix length must fail cleanly, never crash.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeAuditRecord(std::string_view(payload.data(), len), &decoded)
            .ok())
        << "prefix length " << len;
  }
  // Trailing garbage is damage too (the frame length said otherwise).
  EXPECT_FALSE(DecodeAuditRecord(payload + "x", &decoded).ok());
  // Unknown version byte.
  std::string versioned = payload;
  versioned[0] = 99;
  EXPECT_FALSE(DecodeAuditRecord(versioned, &decoded).ok());
}

// --- append / read / bounds -------------------------------------------------

TEST_F(AuditLogTest, RecordsReadBackInOrder) {
  auto log = OpenLog();
  for (uint64_t i = 0; i < 20; ++i) log->Record(SampleRecord(i));
  log->Close();

  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->records.size(), 20u);
  EXPECT_EQ(report->skipped_records, 0u);
  EXPECT_FALSE(report->torn_tail);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(report->records[i].fingerprint, SampleRecord(i).fingerprint);
  }
}

TEST_F(AuditLogTest, AppendsContinueAcrossReopen) {
  AuditLogOptions options;
  {
    auto log = OpenLog(options);
    for (uint64_t i = 0; i < 5; ++i) log->Record(SampleRecord(i));
  }
  {
    auto log = OpenLog(options);
    for (uint64_t i = 5; i < 10; ++i) log->Record(SampleRecord(i));
  }
  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 10u);
  EXPECT_EQ(report->skipped_records, 0u);
}

TEST_F(AuditLogTest, RotationKeepsTheLogBounded) {
  AuditLogOptions options;
  options.max_segment_bytes = 256;  // a few records per segment
  options.max_segments = 3;
  auto log = OpenLog(options);
  for (uint64_t i = 0; i < 200; ++i) log->Record(SampleRecord(i));
  log->Close();

  EXPECT_LE(SegmentFiles().size(), options.max_segments + 1);
  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok());
  // Retention dropped the oldest records but whatever remains is intact
  // and ends with the newest record.
  EXPECT_GT(report->records.size(), 0u);
  EXPECT_LT(report->records.size(), 200u);
  EXPECT_EQ(report->records.back().fingerprint, SampleRecord(199).fingerprint);
  EXPECT_EQ(report->skipped_records, 0u);
}

TEST_F(AuditLogTest, TornTailIsTruncatedOnReopen) {
  {
    auto log = OpenLog();
    for (uint64_t i = 0; i < 5; ++i) log->Record(SampleRecord(i));
  }
  // Simulate a crash mid-append: a dangling half-record at the tail.
  std::vector<fs::path> files = SegmentFiles();
  ASSERT_EQ(files.size(), 1u);
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::app);
    out << "\x12\x34\x56\x78\x0c\x00\x00\x00torn";
  }
  // A reader sees the torn tail and reports it without dropping whole
  // records.
  auto before = ReadAuditLog(dir_.string());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->records.size(), 5u);
  EXPECT_TRUE(before->torn_tail);

  // Reopening the writer truncates the tail; appends continue cleanly in
  // the same segment.
  {
    auto log = OpenLog();
    log->Record(SampleRecord(5));
  }
  auto after = ReadAuditLog(dir_.string());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->records.size(), 6u);
  EXPECT_EQ(after->skipped_records, 0u);
  EXPECT_FALSE(after->torn_tail);
}

TEST_F(AuditLogTest, MidFileByteFlipIsQuarantined) {
  {
    auto log = OpenLog();
    for (uint64_t i = 0; i < 10; ++i) log->Record(SampleRecord(i));
  }
  std::vector<fs::path> files = SegmentFiles();
  ASSERT_EQ(files.size(), 1u);
  // Flip one byte a third of the way in: the record it lands in (and at
  // most its immediate neighbors, if the flip confuses framing) is
  // quarantined; everything else survives.
  const auto size = fs::file_size(files[0]);
  {
    std::fstream out(files[0],
                     std::ios::binary | std::ios::in | std::ios::out);
    out.seekp(static_cast<std::streamoff>(size / 3));
    char byte;
    out.seekg(static_cast<std::streamoff>(size / 3));
    out.get(byte);
    byte = static_cast<char>(byte ^ 0x40);
    out.seekp(static_cast<std::streamoff>(size / 3));
    out.put(byte);
  }
  auto report = ReadAuditSegment(files[0].string());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->skipped_records + (report->torn_tail ? 1 : 0), 1u);
  EXPECT_GE(report->records.size(), 7u);
  EXPECT_GT(report->skipped_bytes, 0u);
}

TEST_F(AuditLogTest, InjectedShortWriteDropsOnlyThatRecord) {
  auto log = OpenLog();
  log->Record(SampleRecord(0));
  // One torn append (fails after persisting 10 bytes), then healthy again
  // — the writer must roll past the damage and keep recording.
  FaultSpec torn;
  torn.kind = FaultKind::kShortWrite;
  torn.arg = 10;
  torn.count = 1;
  FaultInjector::Global().Arm("audit/append/write", torn);
  log->Record(SampleRecord(1));  // dropped (torn)
  FaultInjector::Global().DisarmAll();
  log->Record(SampleRecord(2));
  log->Close();

  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 2u);
  EXPECT_EQ(report->records[0].fingerprint, SampleRecord(0).fingerprint);
  EXPECT_EQ(report->records[1].fingerprint, SampleRecord(2).fingerprint);
}

TEST_F(AuditLogTest, SlowRingRetainsTextWithinCapacity) {
  AuditLogOptions options;
  options.slow_threshold_seconds = 0.0005;  // 500us
  options.slow_ring_capacity = 4;
  auto log = OpenLog(options);
  for (uint64_t i = 0; i < 10; ++i) {
    AuditRecord record = SampleRecord(i);
    record.total_micros = (i % 2 == 0) ? 10'000 : 10;  // alternate slow/fast
    record.keywords = "query " + std::to_string(i);
    log->Record(std::move(record));
  }
  // Ring holds the newest slow requests only, text intact.
  std::vector<AuditRecord> slow = log->SlowQueries();
  ASSERT_EQ(slow.size(), 4u);
  for (const AuditRecord& r : slow) {
    EXPECT_TRUE(r.has_query_text);
    EXPECT_FALSE(r.keywords.empty());
    EXPECT_GE(r.total_micros, 500u);
  }
  EXPECT_EQ(slow.back().keywords, "query 8");
  log->Close();

  // Persisted records: slow ones kept text, fast ones elided it.
  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(report->records[i].has_query_text, i % 2 == 0) << i;
  }
}

// --- fingerprints and digests -----------------------------------------------

TEST(FingerprintTest, KeywordOrderDoesNotMatter) {
  auto a = ParseQuery("customer order invoice");
  auto b = ParseQuery("invoice customer order");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(FingerprintQuery(*a), FingerprintQuery(*b));
}

TEST(FingerprintTest, KeywordCaseAndDelimitersNormalize) {
  auto a = ParseQuery("Customer, Order");
  auto b = ParseQuery("order customer");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(FingerprintQuery(*a), FingerprintQuery(*b));
}

TEST(FingerprintTest, DifferentTermsDiffer) {
  auto a = ParseQuery("customer order");
  auto b = ParseQuery("customer orders");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(FingerprintQuery(*a), FingerprintQuery(*b));
}

TEST(FingerprintTest, FragmentShapeMatters) {
  // Same names, different structure: the attribute moves to the other
  // entity. Shapes must hash different.
  auto a = ParseQuery("", "CREATE TABLE x (id INT, who TEXT);"
                          " CREATE TABLE y (id INT);");
  auto b = ParseQuery("", "CREATE TABLE x (id INT);"
                          " CREATE TABLE y (id INT, who TEXT);");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(FingerprintQuery(*a), FingerprintQuery(*b));
}

TEST(FingerprintTest, FragmentColumnOrderDoesNotMatter) {
  auto a = ParseQuery("", "CREATE TABLE x (id INT, who TEXT);");
  auto b = ParseQuery("", "CREATE TABLE x (who TEXT, id INT);");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(FingerprintQuery(*a), FingerprintQuery(*b));
}

TEST(FingerprintTest, RawRequestMatchesParsedForKeywordOnly) {
  auto parsed = ParseQuery("Customer, ORDER  invoice");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(FingerprintRawRequest("Customer, ORDER  invoice", ""),
            FingerprintQuery(*parsed));
  // With a fragment the raw fingerprint is byte-based — different hash
  // space, but still deterministic.
  EXPECT_EQ(FingerprintRawRequest("a", "CREATE TABLE t (x INT);"),
            FingerprintRawRequest("a", "CREATE TABLE t (x INT);"));
  EXPECT_NE(FingerprintRawRequest("a", "CREATE TABLE t (x INT);"),
            FingerprintRawRequest("a", ""));
}

std::vector<SearchResult> MakeResults() {
  std::vector<SearchResult> results(3);
  results[0].schema_id = 11;
  results[0].score = 0.75;
  results[1].schema_id = 22;
  results[1].score = 0.5;
  results[2].schema_id = 33;
  results[2].score = 0.25;
  return results;
}

TEST(DigestTest, StableUnderOneUlpScoreNoise) {
  std::vector<SearchResult> a = MakeResults();
  std::vector<SearchResult> b = MakeResults();
  for (SearchResult& r : b) {
    r.score = std::nextafter(r.score, 1.0);  // ±1 double ulp
  }
  std::vector<SearchResult> c = MakeResults();
  for (SearchResult& r : c) {
    r.score = std::nextafter(r.score, 0.0);
  }
  EXPECT_EQ(DigestResults(a), DigestResults(b));
  EXPECT_EQ(DigestResults(a), DigestResults(c));
}

TEST(DigestTest, SensitiveToOrderIdsAndRealScoreChanges) {
  std::vector<SearchResult> base = MakeResults();
  std::vector<SearchResult> swapped = MakeResults();
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(DigestResults(base), DigestResults(swapped));

  std::vector<SearchResult> other_id = MakeResults();
  other_id[2].schema_id = 34;
  EXPECT_NE(DigestResults(base), DigestResults(other_id));

  std::vector<SearchResult> other_score = MakeResults();
  other_score[1].score = 0.51;  // far beyond float rounding
  EXPECT_NE(DigestResults(base), DigestResults(other_score));

  EXPECT_NE(DigestResults({}), 0u);  // "no results" ≠ "not recorded"
}

// --- service integration ----------------------------------------------------

class ServiceAuditTest : public AuditLogTest {
 protected:
  void SeedService() {
    repo_ = SchemaRepository::OpenInMemory();
    ASSERT_TRUE(repo_
                    ->Insert(SchemaBuilder("customer_orders")
                                 .Entity("customer")
                                 .Attribute("id")
                                 .Attribute("name")
                                 .Entity("order")
                                 .Attribute("id")
                                 .Attribute("customer_id")
                                 .Build())
                    .ok());
    ASSERT_TRUE(indexer_.RebuildFromRepository(*repo_).ok());
    service_ = std::make_unique<SchemrService>(repo_.get(), &indexer_.index());
    ASSERT_TRUE(service_->EnableAudit(dir_.string()).ok());
  }

  std::unique_ptr<SchemaRepository> repo_;
  Indexer indexer_;
  std::unique_ptr<SchemrService> service_;
};

TEST_F(ServiceAuditTest, HandledRequestIsRecorded) {
  SeedService();
  SearchRequest request;
  request.keywords = "customer order";
  std::string xml = service_->HandleSearchXml(request);
  EXPECT_NE(xml.find("<results"), std::string::npos);
  service_->audit()->Close();

  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 1u);
  const AuditRecord& record = report->records[0];
  EXPECT_EQ(record.outcome, AuditOutcome::kOk);
  auto query = ParseQuery(request.keywords);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(record.fingerprint, FingerprintQuery(*query));
  EXPECT_NE(record.result_digest, 0u);
  EXPECT_EQ(record.result_count, 1u);
  EXPECT_GT(record.total_micros, 0u);
  EXPECT_GT(record.deadline_micros, 0u);
}

TEST_F(ServiceAuditTest, RecordedDigestMatchesRecomputedSearch) {
  SeedService();
  SearchRequest request;
  request.keywords = "customer order";
  (void)service_->HandleSearchXml(request);
  auto results = service_->Search(request);
  ASSERT_TRUE(results.ok());
  service_->audit()->Close();

  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok());
  // HandleSearchXml + Search both audited; same query, same digest.
  ASSERT_EQ(report->records.size(), 2u);
  EXPECT_EQ(report->records[0].result_digest, DigestResults(*results));
  EXPECT_EQ(report->records[1].result_digest, DigestResults(*results));
  EXPECT_EQ(report->records[0].fingerprint, report->records[1].fingerprint);
}

TEST_F(ServiceAuditTest, PipelineErrorIsRecordedWithText) {
  SeedService();
  SearchRequest request;  // empty keywords AND fragment: parse error
  std::string xml = service_->HandleSearchXml(request);
  EXPECT_NE(xml.find("<error"), std::string::npos);
  service_->audit()->Close();

  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 1u);
  EXPECT_EQ(report->records[0].outcome, AuditOutcome::kError);
  // Error records keep their (here empty but flagged) query text so the
  // failure is reproducible.
  EXPECT_TRUE(report->records[0].has_query_text);
}

TEST_F(ServiceAuditTest, PostShutdownRefusalIsRecorded) {
  SeedService();
  ASSERT_TRUE(service_->Shutdown(0.0).ok());
  SearchRequest request;
  request.keywords = "customer";
  std::string xml = service_->HandleSearchXml(request);
  EXPECT_NE(xml.find("shutting_down"), std::string::npos);
  service_->audit()->Close();

  auto report = ReadAuditLog(dir_.string());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 1u);
  const AuditRecord& record = report->records[0];
  EXPECT_EQ(record.outcome, AuditOutcome::kShedDrain);
  EXPECT_TRUE(IsShedOutcome(record.outcome));
  EXPECT_TRUE(record.has_query_text);
  EXPECT_EQ(record.keywords, "customer");
  EXPECT_EQ(record.fingerprint, FingerprintRawRequest("customer", ""));
}

TEST(ShedReasonTest, NamesAreStable) {
  // These strings are wire format (shed <error> messages, `schemr
  // audit`): changing them breaks clients.
  EXPECT_STREQ(ShedReasonName(ShedReason::kNone), "");
  EXPECT_STREQ(ShedReasonName(ShedReason::kQueueFull), "queue_full");
  EXPECT_STREQ(ShedReasonName(ShedReason::kDeadline), "deadline");
  EXPECT_STREQ(ShedReasonName(ShedReason::kDrain), "shutting_down");
}

TEST(AuditOutcomeTest, NamesAreStable) {
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kOk), "ok");
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kDegraded), "degraded");
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kError), "error");
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kShedQueueFull),
               "shed_queue_full");
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kShedDeadline),
               "shed_deadline");
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kShedDrain), "shed_drain");
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kCancelled), "cancelled");
  EXPECT_FALSE(IsShedOutcome(AuditOutcome::kOk));
  EXPECT_FALSE(IsShedOutcome(AuditOutcome::kCancelled));
  EXPECT_TRUE(IsShedOutcome(AuditOutcome::kShedQueueFull));
  EXPECT_TRUE(IsShedOutcome(AuditOutcome::kShedDeadline));
  EXPECT_TRUE(IsShedOutcome(AuditOutcome::kShedDrain));
}

// --- incremental reads (`schemr audit tail --follow`) -----------------------

class AuditCursorTest : public AuditLogTest {};

TEST_F(AuditCursorTest, SeesOnlyNewRecordsAcrossPolls) {
  auto log = OpenLog();
  for (uint64_t i = 0; i < 5; ++i) log->Record(SampleRecord(i));

  AuditCursor cursor;
  auto first = ReadAuditLogFrom(dir_.string(), &cursor);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->records.size(), 5u);

  // Nothing new: the next poll is empty, not a whole-segment re-read.
  auto idle = ReadAuditLogFrom(dir_.string(), &cursor);
  ASSERT_TRUE(idle.ok());
  EXPECT_TRUE(idle->records.empty());

  for (uint64_t i = 5; i < 8; ++i) log->Record(SampleRecord(i));
  auto next = ReadAuditLogFrom(dir_.string(), &cursor);
  ASSERT_TRUE(next.ok());
  ASSERT_EQ(next->records.size(), 3u);
  EXPECT_EQ(next->records[0].fingerprint, SampleRecord(5).fingerprint);
  EXPECT_EQ(next->records[2].fingerprint, SampleRecord(7).fingerprint);
}

TEST_F(AuditCursorTest, FollowsAcrossSegmentRotation) {
  AuditLogOptions options;
  options.max_segment_bytes = 256;
  options.max_segments = 100;  // rotate but never delete
  auto log = OpenLog(options);
  log->Record(SampleRecord(0));

  AuditCursor cursor;
  ASSERT_TRUE(ReadAuditLogFrom(dir_.string(), &cursor).ok());

  // Enough appends to rotate several times.
  for (uint64_t i = 1; i <= 40; ++i) log->Record(SampleRecord(i));
  ASSERT_GT(SegmentFiles().size(), 1u);
  auto report = ReadAuditLogFrom(dir_.string(), &cursor);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 40u);
  for (uint64_t i = 0; i < 40; ++i) {
    EXPECT_EQ(report->records[i].fingerprint, SampleRecord(i + 1).fingerprint);
  }
  // And the cursor is parked at the live tail again.
  auto idle = ReadAuditLogFrom(dir_.string(), &cursor);
  ASSERT_TRUE(idle.ok());
  EXPECT_TRUE(idle->records.empty());
}

TEST_F(AuditCursorTest, TornTailIsNotConsumedUntilHealed) {
  {
    auto log = OpenLog();
    for (uint64_t i = 0; i < 3; ++i) log->Record(SampleRecord(i));
  }
  AuditCursor cursor;
  ASSERT_TRUE(ReadAuditLogFrom(dir_.string(), &cursor).ok());

  // A crash leaves a half-record at the tail.
  std::vector<fs::path> files = SegmentFiles();
  ASSERT_EQ(files.size(), 1u);
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::app);
    out << "\x12\x34\x56\x78\x0c\x00\x00\x00torn";
  }
  auto torn = ReadAuditLogFrom(dir_.string(), &cursor);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn->records.empty());
  EXPECT_TRUE(torn->torn_tail);

  // The writer reopens (truncating the tail) and appends; the parked
  // cursor picks the new record up — the damage was never skipped past.
  {
    auto log = OpenLog();
    log->Record(SampleRecord(3));
  }
  auto healed = ReadAuditLogFrom(dir_.string(), &cursor);
  ASSERT_TRUE(healed.ok());
  ASSERT_EQ(healed->records.size(), 1u);
  EXPECT_EQ(healed->records[0].fingerprint, SampleRecord(3).fingerprint);
  EXPECT_FALSE(healed->torn_tail);
}

TEST_F(AuditCursorTest, RetentionDeletedSegmentJumpsToOldestSurvivor) {
  AuditLogOptions options;
  options.max_segment_bytes = 256;
  options.max_segments = 2;
  auto log = OpenLog(options);
  log->Record(SampleRecord(0));

  AuditCursor cursor;
  ASSERT_TRUE(ReadAuditLogFrom(dir_.string(), &cursor).ok());
  const uint64_t parked_segment = cursor.segment_id;

  // Rotate far enough that the parked segment is retention-deleted.
  for (uint64_t i = 1; i <= 100; ++i) log->Record(SampleRecord(i));
  auto report = ReadAuditLogFrom(dir_.string(), &cursor);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(cursor.segment_id, parked_segment);
  // What it read is a contiguous run ending at the newest record.
  ASSERT_GT(report->records.size(), 0u);
  EXPECT_EQ(report->records.back().fingerprint, SampleRecord(100).fingerprint);
  for (size_t i = 1; i < report->records.size(); ++i) {
    EXPECT_EQ(report->records[i].fingerprint,
              SampleRecord(100 - (report->records.size() - 1) + i)
                  .fingerprint);
  }
}

TEST_F(AuditCursorTest, SegmentReaderReportsNextOffset) {
  {
    auto log = OpenLog();
    for (uint64_t i = 0; i < 4; ++i) log->Record(SampleRecord(i));
  }
  std::vector<fs::path> files = SegmentFiles();
  ASSERT_EQ(files.size(), 1u);

  uint64_t offset = 0;
  auto all = ReadAuditSegmentFrom(files[0].string(), 0, &offset);
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_EQ(all->records.size(), 4u);
  EXPECT_EQ(offset, fs::file_size(files[0]));

  // Resuming from the reported offset reads nothing and stays parked.
  uint64_t again = 0;
  auto rest = ReadAuditSegmentFrom(files[0].string(), offset, &again);
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest->records.empty());
  EXPECT_EQ(again, offset);
}

}  // namespace
}  // namespace schemr
