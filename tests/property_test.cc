// Cross-module property tests: invariants that must hold on *generated*
// inputs, swept over seeds with parameterized gtest. These complement the
// per-module unit tests by exercising combinations no hand-written case
// covers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/query_parser.h"
#include "core/tightness_of_fit.h"
#include "eval/harness.h"
#include "match/ensemble.h"
#include "parse/ddl_parser.h"
#include "parse/ddl_writer.h"
#include "parse/xml_parser.h"
#include "parse/xsd_importer.h"
#include "parse/xsd_writer.h"
#include "util/rng.h"
#include "viz/graph_view.h"
#include "viz/graphml_writer.h"
#include "viz/layout.h"
#include "viz/svg_writer.h"

namespace schemr {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  CorpusOptions CorpusFor(size_t n) const {
    CorpusOptions options;
    options.num_schemas = n;
    options.seed = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// Self-retrieval: a schema queried by its own distinctive element names
// must rank itself at the very top.
TEST_P(SeededProperty, SelfRetrieval) {
  auto fixture = CorpusFixture::Build(CorpusFor(120));
  ASSERT_TRUE(fixture.ok());
  SearchEngine engine(fixture->repository.get(), &fixture->index());
  Rng rng(GetParam() ^ 0xABCD);

  for (int trial = 0; trial < 8; ++trial) {
    size_t pick = rng.NextBelow(fixture->corpus.size());
    const Schema& schema = fixture->corpus[pick].schema;
    // Query = the schema's own attribute names (up to 6).
    std::string keywords;
    size_t used = 0;
    for (ElementId id = 0; id < schema.size() && used < 6; ++id) {
      if (schema.element(id).kind != ElementKind::kAttribute) continue;
      keywords += schema.element(id).name + " ";
      ++used;
    }
    SearchEngineOptions options;
    options.top_k = 20;
    auto results = engine.SearchKeywords(keywords, options);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_FALSE(results->empty()) << keywords;
    // Sibling schemas generated from the same concept carry near-identical
    // vocabularies, so exact self-rank is ambiguous. The meaningful
    // property: the schema is retrieved, and the top of the ranking is
    // dominated by its own concept.
    const std::string& concept_id = fixture->corpus[pick].concept_id;
    const auto& relevant = fixture->relevance.at(concept_id);
    bool found = false;
    for (const SearchResult& r : *results) {
      if (r.schema_id == fixture->ids[pick]) found = true;
    }
    EXPECT_TRUE(found) << "schema " << schema.name()
                       << " not retrieved for its own attributes: "
                       << keywords;
    // Concepts share vocabulary (stations and survey sites both carry
    // latitude/longitude), so off-concept hits near the top can be
    // legitimate; but the query's own concept must appear in the top 3.
    size_t on_concept_top3 = 0;
    for (size_t i = 0; i < results->size() && i < 3; ++i) {
      on_concept_top3 += relevant.count((*results)[i].schema_id);
    }
    EXPECT_GE(on_concept_top3, 1u) << "no on-concept hit in the top 3 for: "
                                   << keywords;
  }
}

// Every matcher's matrix stays in [0,1] with the right shape, on real
// generated schema pairs.
TEST_P(SeededProperty, MatcherMatricesWellFormed) {
  CorpusOptions options = CorpusFor(20);
  std::vector<GeneratedSchema> corpus = GenerateCorpus(options);
  MatcherEnsemble ensemble = MatcherEnsemble::WithCodebook();
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const Schema& a = corpus[rng.NextBelow(corpus.size())].schema;
    const Schema& b = corpus[rng.NextBelow(corpus.size())].schema;
    EnsembleResult result = ensemble.Match(a, b);
    for (const SimilarityMatrix& m : result.per_matcher) {
      ASSERT_EQ(m.rows(), a.size());
      ASSERT_EQ(m.cols(), b.size());
      for (size_t r = 0; r < m.rows(); ++r) {
        for (size_t c = 0; c < m.cols(); ++c) {
          ASSERT_GE(m.at(r, c), 0.0);
          ASSERT_LE(m.at(r, c), 1.0);
        }
      }
    }
    // Combined never exceeds the max of its inputs per cell.
    for (size_t r = 0; r < result.combined.rows(); ++r) {
      for (size_t c = 0; c < result.combined.cols(); ++c) {
        double max_input = 0.0;
        for (const SimilarityMatrix& m : result.per_matcher) {
          max_input = std::max(max_input, m.at(r, c));
        }
        ASSERT_LE(result.combined.at(r, c), max_input + 1e-9);
      }
    }
  }
}

// Tightness-of-fit invariants on generated schemas with random score
// matrices: bounded by the best element score; adding foreign keys never
// lowers the score (penalties can only shrink from "unrelated" to
// "neighborhood").
TEST_P(SeededProperty, TightnessBoundsAndFkMonotonicity) {
  CorpusOptions options = CorpusFor(15);
  std::vector<GeneratedSchema> corpus = GenerateCorpus(options);
  Rng rng(GetParam() * 31);
  for (GeneratedSchema& g : corpus) {
    Schema& schema = g.schema;
    SimilarityMatrix m(3, schema.size());
    double max_score = 0.0;
    for (ElementId e = 0; e < schema.size(); ++e) {
      if (rng.NextBool(0.5)) {
        double s = rng.NextDouble();
        m.set(rng.NextBelow(3), e, s);
        if (s >= TightnessOptions{}.match_threshold) {
          max_score = std::max(max_score, s);
        }
      }
    }
    TightnessResult base = ComputeTightnessOfFit(schema, m);
    ASSERT_LE(base.score, max_score + 1e-9);
    ASSERT_GE(base.score, 0.0);

    // Fully connect all entities: no pair can still be "unrelated".
    Schema connected = schema;
    std::vector<ElementId> entities = connected.Entities();
    for (size_t i = 1; i < entities.size(); ++i) {
      ElementId attr = connected.AddAttribute(
          "link" + std::to_string(i), entities[i], DataType::kInt64);
      connected.AddForeignKey(attr, entities[0]);
    }
    // Matrix must grow to the new size (new columns scoreless).
    SimilarityMatrix m2(3, connected.size());
    for (ElementId e = 0; e < schema.size(); ++e) {
      for (size_t r = 0; r < 3; ++r) m2.set(r, e, m.at(r, e));
    }
    TightnessResult linked = ComputeTightnessOfFit(connected, m2);
    ASSERT_GE(linked.score, base.score - 1e-9)
        << "connecting entities lowered tightness for " << schema.name();
  }
}

// DDL round trip stability on every generated schema: parse(write(s))
// preserves names, types, keys, and FK count (hierarchy is flattened by
// design).
TEST_P(SeededProperty, DdlRoundTripOnGeneratedSchemas) {
  CorpusOptions options = CorpusFor(25);
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    // DDL cannot express nested entities; skip hierarchical ones.
    bool nested = false;
    for (ElementId e : g.schema.Entities()) {
      if (g.schema.element(e).parent != kNoElement) nested = true;
    }
    if (nested) continue;
    std::string ddl = WriteDdl(g.schema);
    auto round = ParseDdl(ddl, g.schema.name());
    ASSERT_TRUE(round.ok()) << round.status() << "\n" << ddl;
    EXPECT_EQ(round->NumEntities(), g.schema.NumEntities());
    EXPECT_EQ(round->NumAttributes(), g.schema.NumAttributes());
    EXPECT_EQ(round->foreign_keys().size(), g.schema.foreign_keys().size());
  }
}

// XSD round trip on generated schemas (hierarchy preserved).
TEST_P(SeededProperty, XsdRoundTripOnGeneratedSchemas) {
  CorpusOptions options = CorpusFor(25);
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    std::string xsd = WriteXsd(g.schema);
    auto round = ParseXsd(xsd, g.schema.name());
    ASSERT_TRUE(round.ok()) << round.status() << "\n" << xsd;
    EXPECT_EQ(round->NumEntities(), g.schema.NumEntities());
    EXPECT_EQ(round->NumAttributes(), g.schema.NumAttributes());
    for (ElementId i = 0; i < g.schema.size(); ++i) {
      EXPECT_EQ(round->element(i).name, g.schema.element(i).name);
    }
  }
}

// Parser robustness: mutated (bit-flipped / truncated) valid inputs must
// return clean errors or succeed -- never crash.
TEST_P(SeededProperty, ParsersSurviveMutatedInput) {
  CorpusOptions options = CorpusFor(5);
  std::vector<GeneratedSchema> corpus = GenerateCorpus(options);
  Rng rng(GetParam() * 7919);
  for (const GeneratedSchema& g : corpus) {
    std::string ddl = WriteDdl(g.schema);
    std::string xsd = WriteXsd(g.schema);
    for (int mutation = 0; mutation < 20; ++mutation) {
      std::string mutated_ddl = ddl;
      std::string mutated_xsd = xsd;
      // Flip a few characters.
      for (int k = 0; k < 3; ++k) {
        if (!mutated_ddl.empty()) {
          mutated_ddl[rng.NextBelow(mutated_ddl.size())] =
              static_cast<char>(rng.NextBelow(128));
        }
        if (!mutated_xsd.empty()) {
          mutated_xsd[rng.NextBelow(mutated_xsd.size())] =
              static_cast<char>(rng.NextBelow(128));
        }
      }
      // Or truncate.
      if (rng.NextBool(0.3)) {
        mutated_ddl.resize(rng.NextBelow(mutated_ddl.size() + 1));
        mutated_xsd.resize(rng.NextBelow(mutated_xsd.size() + 1));
      }
      // Must not crash; if parsing succeeds the result must validate.
      auto ddl_result = ParseDdl(mutated_ddl, "fuzz");
      if (ddl_result.ok()) {
        EXPECT_TRUE(ddl_result->Validate().ok());
      }
      auto xsd_result = ParseXsd(mutated_xsd, "fuzz");
      if (xsd_result.ok()) {
        EXPECT_TRUE(xsd_result->Validate().ok());
      }
    }
  }
}

// Visualization invariants on generated schemas: GraphML parses, edges
// reference existing nodes, tree layout never overlaps within a level,
// SVG parses as XML.
TEST_P(SeededProperty, VisualizationInvariants) {
  CorpusOptions options = CorpusFor(15);
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    SchemaGraphView view = BuildGraphView(g.schema);
    for (const VizEdge& edge : view.edges) {
      ASSERT_LT(edge.from, view.nodes.size());
      ASSERT_LT(edge.to, view.nodes.size());
    }
    ApplyTreeLayout(&view);
    std::set<std::pair<size_t, long>> slots;
    for (const VizNode& node : view.nodes) {
      auto key = std::make_pair(node.depth, std::lround(node.x * 100));
      ASSERT_TRUE(slots.insert(key).second)
          << "layout overlap in " << g.schema.name();
    }
    ASSERT_TRUE(ParseXml(WriteGraphMl(view)).ok());
    ASSERT_TRUE(ParseXml(WriteSvg(view)).ok());
  }
}

// Search determinism: the same query against the same fixture returns
// byte-identical rankings and scores.
TEST_P(SeededProperty, SearchIsDeterministic) {
  auto fixture = CorpusFixture::Build(CorpusFor(80));
  ASSERT_TRUE(fixture.ok());
  SearchEngine engine(fixture->repository.get(), &fixture->index());
  auto query = ParseQuery("patient height gender diagnosis");
  ASSERT_TRUE(query.ok());
  auto first = engine.Search(*query);
  auto second = engine.Search(*query);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].schema_id, (*second)[i].schema_id);
    EXPECT_DOUBLE_EQ((*first)[i].score, (*second)[i].score);
  }
}

}  // namespace
}  // namespace schemr
