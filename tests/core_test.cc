// Tests for the core search pipeline: query graph, query parser,
// candidate extraction, tightness-of-fit (including the paper's Fig. 4
// worked example), and the search engine facade with its ablations.

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/candidate_extractor.h"
#include "core/query_graph.h"
#include "core/query_parser.h"
#include "core/search_engine.h"
#include "core/tightness_of_fit.h"
#include "index/indexer.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"

namespace schemr {
namespace {

// --- query graph ----------------------------------------------------------------

TEST(QueryGraphTest, KeywordsAreOneElementTrees) {
  QueryGraph query;
  query.AddKeyword("patient");
  query.AddKeyword("height gender");  // splits into two
  EXPECT_EQ(query.keywords().size(), 3u);
  EXPECT_EQ(query.NumElements(), 3u);

  const Schema& merged = query.AsSchema();
  EXPECT_EQ(merged.size(), 3u);
  for (ElementId id = 0; id < merged.size(); ++id) {
    EXPECT_EQ(merged.element(id).parent, kNoElement);
    EXPECT_TRUE(query.IsKeywordElement(id));
  }
}

TEST(QueryGraphTest, FragmentsMergeWithRebasedIds) {
  QueryGraph query;
  query.AddFragment(SchemaBuilder("f1")
                        .Entity("patient")
                        .Attribute("height")
                        .Build());
  query.AddFragment(SchemaBuilder("f2")
                        .Entity("visit")
                        .Attribute("patient_id", DataType::kInt64)
                        .References("visit")  // self-ref keeps fk in-fragment
                        .Build());
  query.AddKeyword("diagnosis");

  const Schema& merged = query.AsSchema();
  ASSERT_EQ(merged.size(), 5u);
  // Fragment 2's parent links were rebased past fragment 1's elements.
  auto visit = merged.FindByName("visit", ElementKind::kEntity);
  auto patient_id = merged.FindByName("patient_id");
  ASSERT_TRUE(visit && patient_id);
  EXPECT_EQ(merged.element(*patient_id).parent, *visit);
  // FKs rebased too.
  ASSERT_EQ(merged.foreign_keys().size(), 1u);
  EXPECT_EQ(merged.foreign_keys()[0].target_entity, *visit);
  // Keyword is last and flagged.
  EXPECT_TRUE(query.IsKeywordElement(4));
  EXPECT_FALSE(query.IsKeywordElement(0));
  EXPECT_TRUE(merged.Validate().ok());
}

TEST(QueryGraphTest, FlattenTermsUsesAnalyzer) {
  QueryGraph query;
  query.AddKeyword("Patients");
  query.AddFragment(SchemaBuilder("f")
                        .Entity("visit")
                        .Attribute("dateOfBirth")
                        .Build());
  Analyzer analyzer;
  std::vector<std::string> terms = query.FlattenTerms(analyzer);
  // patient (stemmed), visit, date, birth ("of" is a stopword).
  EXPECT_EQ(terms, (std::vector<std::string>{"patient", "visit", "date",
                                             "birth"}));
}

// --- query parser ----------------------------------------------------------------

TEST(QueryParserTest, KeywordsOnly) {
  auto query = ParseQuery("patient, height;gender\tdiagnosis");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->keywords().size(), 4u);
  EXPECT_TRUE(query->fragments().empty());
}

TEST(QueryParserTest, DetectsDdlAndXsd) {
  EXPECT_EQ(DetectFragmentFormat("CREATE TABLE t (x INT)"),
            FragmentFormat::kDdl);
  EXPECT_EQ(DetectFragmentFormat("  <xs:schema/>"), FragmentFormat::kXsd);
  EXPECT_EQ(DetectFragmentFormat(""), FragmentFormat::kAuto);

  auto ddl_query = ParseQuery("", "CREATE TABLE t (x INT);");
  ASSERT_TRUE(ddl_query.ok()) << ddl_query.status();
  EXPECT_EQ(ddl_query->fragments().size(), 1u);

  auto xsd_query = ParseQuery(
      "", "<xs:schema><xs:element name=\"t\" type=\"xs:string\"/>"
          "</xs:schema>");
  ASSERT_TRUE(xsd_query.ok()) << xsd_query.status();
  EXPECT_EQ(xsd_query->fragments().size(), 1u);
}

TEST(QueryParserTest, RejectsEmptyAndBadFragments) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("", "   ").ok());
  EXPECT_FALSE(ParseQuery("kw", "CREATE TABLE broken (").ok());
  EXPECT_FALSE(ParseQuery("kw", "<unclosed").ok());
}

// --- tightness-of-fit ---------------------------------------------------------------

/// Builds the paper's Fig. 4 example: entities case, patient, doctor with
/// matched elements case.doctor, case.patient, patient.height,
/// patient.gender, doctor.gender. FKs: case.patient → patient,
/// case.doctor → doctor (patient and doctor are in each other's
/// transitive-closure neighborhood via case, but not directly related).
struct Fig4 {
  Schema schema;
  ElementId e_case, e_patient, e_doctor;
  ElementId a_case_doctor, a_case_patient;
  ElementId a_patient_height, a_patient_gender, a_doctor_gender;
};

Fig4 MakeFig4() {
  Fig4 f;
  Schema& s = f.schema;
  s.set_name("fig4");
  f.e_patient = s.AddEntity("patient");
  f.a_patient_height = s.AddAttribute("height", f.e_patient,
                                      DataType::kDouble);
  f.a_patient_gender = s.AddAttribute("gender", f.e_patient);
  f.e_doctor = s.AddEntity("doctor");
  f.a_doctor_gender = s.AddAttribute("gender", f.e_doctor);
  f.e_case = s.AddEntity("case");
  f.a_case_patient = s.AddAttribute("patient", f.e_case, DataType::kInt64);
  f.a_case_doctor = s.AddAttribute("doctor", f.e_case, DataType::kInt64);
  s.AddForeignKey(f.a_case_patient, f.e_patient);
  s.AddForeignKey(f.a_case_doctor, f.e_doctor);
  EXPECT_TRUE(s.Validate().ok());
  return f;
}

/// Similarity matrix marking exactly the figure's matched elements with
/// score `s` from a single query row.
SimilarityMatrix Fig4Similarity(const Fig4& f, double s) {
  SimilarityMatrix m(1, f.schema.size());
  m.set(0, f.a_case_doctor, s);
  m.set(0, f.a_case_patient, s);
  m.set(0, f.a_patient_height, s);
  m.set(0, f.a_patient_gender, s);
  m.set(0, f.a_doctor_gender, s);
  return m;
}

TEST(TightnessOfFitTest, Fig4WorkedExample) {
  Fig4 f = MakeFig4();
  const double s = 1.0;
  SimilarityMatrix m = Fig4Similarity(f, s);
  TightnessOptions options;
  options.neighborhood_penalty = 0.2;  // "small penalty"
  options.unrelated_penalty = 0.5;     // "larger penalty"
  options.match_threshold = 0.5;

  TightnessResult result = ComputeTightnessOfFit(f.schema, m, options);

  // With the FK transitive closure, all three entities are in one
  // neighborhood, so for every anchor the penalties are: same entity → 0,
  // other entities → small. Anchor "case": case.doctor and case.patient
  // unpenalized, the other three at 0.8 → t = (2·1 + 3·0.8)/5 = 0.88.
  // Anchor "patient": 2 unpenalized (height, gender), 3 at 0.8 → same
  // 0.88. Anchor "doctor": 1 unpenalized, 4 at 0.8 → 0.84. Max = 0.88.
  EXPECT_NEAR(result.score, 0.88, 1e-9);
  EXPECT_TRUE(result.best_anchor == f.e_case ||
              result.best_anchor == f.e_patient);
  EXPECT_EQ(result.matched.size(), 5u);
}

TEST(TightnessOfFitTest, UnrelatedEntityGetsLargerPenalty) {
  // Remove the case→doctor FK: doctor becomes its own component, so under
  // anchor "patient", doctor.gender is unrelated (larger penalty).
  Fig4 f = MakeFig4();
  Schema disconnected = f.schema;
  // Rebuild without the doctor FK.
  Schema s2;
  s2.set_name("fig4_disconnected");
  Fig4 g;
  g.e_patient = s2.AddEntity("patient");
  g.a_patient_height = s2.AddAttribute("height", g.e_patient);
  g.a_patient_gender = s2.AddAttribute("gender", g.e_patient);
  g.e_doctor = s2.AddEntity("doctor");
  g.a_doctor_gender = s2.AddAttribute("gender", g.e_doctor);
  g.e_case = s2.AddEntity("case");
  g.a_case_patient = s2.AddAttribute("patient", g.e_case);
  g.a_case_doctor = s2.AddAttribute("doctor", g.e_case);
  s2.AddForeignKey(g.a_case_patient, g.e_patient);
  g.schema = s2;

  SimilarityMatrix m = Fig4Similarity(g, 1.0);
  TightnessOptions options;
  options.match_threshold = 0.5;
  TightnessResult result = ComputeTightnessOfFit(g.schema, m, options);
  // Anchor case: patient-side elements small (0.8), doctor.gender
  // unrelated (0.5): t = (2 + 2·0.8 + 0.5)/5 = 0.82.
  // Anchor patient: height+gender 1.0, case elements 0.8, doctor 0.5 →
  // same 0.82. Anchor doctor: 1 + 4·0.5 = 0.6. Max = 0.82 < 0.88.
  EXPECT_NEAR(result.score, 0.82, 1e-9);
}

TEST(TightnessOfFitTest, TighterSchemasScoreHigher) {
  // Same matched scores: all in one entity vs scattered across unrelated
  // entities. Tightness must prefer co-location.
  Schema tight = SchemaBuilder("tight")
                     .Entity("patient")
                     .Attribute("height")
                     .Attribute("gender")
                     .Attribute("diagnosis")
                     .Build();
  Schema scattered = SchemaBuilder("scattered")
                         .Entity("a")
                         .Attribute("height")
                         .Entity("b")
                         .Attribute("gender")
                         .Entity("c")
                         .Attribute("diagnosis")
                         .Build();
  auto mark = [](const Schema& schema) {
    SimilarityMatrix m(1, schema.size());
    for (ElementId e = 0; e < schema.size(); ++e) {
      if (schema.element(e).kind == ElementKind::kAttribute) m.set(0, e, 0.9);
    }
    return m;
  };
  double tight_score =
      ComputeTightnessOfFit(tight, mark(tight)).score;
  double scattered_score =
      ComputeTightnessOfFit(scattered, mark(scattered)).score;
  EXPECT_GT(tight_score, scattered_score);
  EXPECT_NEAR(tight_score, 0.9, 1e-9);  // no penalties at all
}

TEST(TightnessOfFitTest, ThresholdExcludesWeakMatches) {
  Schema schema = SchemaBuilder("s")
                      .Entity("e")
                      .Attribute("strong")
                      .Attribute("weak")
                      .Build();
  SimilarityMatrix m(1, schema.size());
  m.set(0, 1, 0.9);   // strong
  m.set(0, 2, 0.05);  // below threshold
  TightnessResult result = ComputeTightnessOfFit(schema, m);
  ASSERT_EQ(result.matched.size(), 1u);
  EXPECT_EQ(result.matched[0].element, 1u);
  EXPECT_NEAR(result.score, 0.9, 1e-9);
}

TEST(TightnessOfFitTest, EmptyAndMismatchedInputs) {
  Schema schema = SchemaBuilder("s").Entity("e").Attribute("a").Build();
  // No matches at all.
  SimilarityMatrix zero(1, schema.size());
  TightnessResult none = ComputeTightnessOfFit(schema, zero);
  EXPECT_DOUBLE_EQ(none.score, 0.0);
  EXPECT_EQ(none.best_anchor, kNoElement);
  EXPECT_TRUE(none.matched.empty());
  // Shape mismatch is rejected gracefully.
  SimilarityMatrix wrong(1, 99);
  EXPECT_DOUBLE_EQ(ComputeTightnessOfFit(schema, wrong).score, 0.0);
}

TEST(TightnessOfFitTest, ScoreNeverExceedsUnpenalizedMean) {
  // Property: penalties only subtract, so t_max ≤ mean(S) always, and
  // t_max ≥ mean(S)·(1 − unrelated_penalty).
  Fig4 f = MakeFig4();
  for (double s : {0.4, 0.6, 0.8, 1.0}) {
    SimilarityMatrix m = Fig4Similarity(f, s);
    TightnessOptions options;
    options.match_threshold = 0.3;
    TightnessResult result = ComputeTightnessOfFit(f.schema, m, options);
    EXPECT_LE(result.score, s + 1e-12);
    EXPECT_GE(result.score, s * (1.0 - options.unrelated_penalty) - 1e-12);
  }
}

// --- candidate extractor + search engine ------------------------------------------------

struct EngineFixture {
  std::unique_ptr<SchemaRepository> repo;
  std::unique_ptr<Indexer> indexer;
  SchemaId clinic_id = 0, shop_id = 0, scattered_id = 0;
};

EngineFixture MakeEngineFixture() {
  EngineFixture f;
  f.repo = SchemaRepository::OpenInMemory();
  f.clinic_id = *f.repo->Insert(SchemaBuilder("clinic")
                                    .Entity("patient")
                                    .Attribute("height", DataType::kDouble)
                                    .Attribute("gender")
                                    .Attribute("diagnosis")
                                    .Build());
  f.shop_id = *f.repo->Insert(SchemaBuilder("shop")
                                  .Entity("customer")
                                  .Attribute("name")
                                  .Attribute("email")
                                  .Build());
  // Same terms as clinic but scattered over unrelated entities.
  f.scattered_id = *f.repo->Insert(SchemaBuilder("scattered")
                                       .Entity("a")
                                       .Attribute("height")
                                       .Entity("b")
                                       .Attribute("gender")
                                       .Entity("c")
                                       .Attribute("diagnosis")
                                       .Entity("d")
                                       .Attribute("patient")
                                       .Build());
  f.indexer = std::make_unique<Indexer>();
  EXPECT_TRUE(f.indexer->RebuildFromRepository(*f.repo).ok());
  return f;
}

TEST(CandidateExtractorTest, PoolSizeAndScores) {
  EngineFixture f = MakeEngineFixture();
  CandidateExtractor extractor(&f.indexer->index());
  QueryGraph query;
  query.AddKeyword("patient height gender diagnosis");

  std::vector<Candidate> candidates = extractor.Extract(query);
  ASSERT_EQ(candidates.size(), 2u);  // shop matches nothing
  EXPECT_GT(candidates[0].coarse_score, 0.0);

  CandidateExtractorOptions options;
  options.pool_size = 1;
  EXPECT_EQ(extractor.Extract(query, options).size(), 1u);
}

TEST(SearchEngineTest, EndToEndRanksTightSchemaFirst) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.repo.get(), &f.indexer->index());
  auto results = engine.SearchKeywords("patient height gender diagnosis");
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].schema_id, f.clinic_id)
      << "co-located matches must outrank scattered ones";
  EXPECT_EQ((*results)[1].schema_id, f.scattered_id);
  EXPECT_GT((*results)[0].tightness, (*results)[1].tightness);

  const SearchResult& top = (*results)[0];
  EXPECT_EQ(top.name, "clinic");
  EXPECT_EQ(top.num_entities, 1u);
  EXPECT_EQ(top.num_attributes, 3u);
  EXPECT_GT(top.num_matches, 0u);
  EXPECT_NE(top.best_anchor, kNoElement);
  // Matched elements reported with scores for drill-in coloring.
  for (const MatchedElement& m : top.matched_elements) {
    EXPECT_LT(m.element, 4u);
    EXPECT_GT(m.score, 0.0);
    EXPECT_LE(m.score, 1.0);
  }
}

TEST(SearchEngineTest, FragmentQueryFindsStructuralMatch) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.repo.get(), &f.indexer->index());
  auto query = ParseQuery(
      "", "CREATE TABLE patient (height DOUBLE, gender VARCHAR(8));");
  ASSERT_TRUE(query.ok());
  auto results = engine.Search(*query);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  EXPECT_EQ((*results)[0].schema_id, f.clinic_id);
}

TEST(SearchEngineTest, AblationsChangeBehavior) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.repo.get(), &f.indexer->index());

  SearchEngineOptions phase1_only;
  phase1_only.enable_matching = false;
  auto coarse = engine.SearchKeywords("patient height", phase1_only);
  ASSERT_TRUE(coarse.ok());
  ASSERT_FALSE(coarse->empty());
  // Phase-1-only scores are normalized coarse scores; no match data.
  EXPECT_EQ((*coarse)[0].num_matches, 0u);
  EXPECT_DOUBLE_EQ((*coarse)[0].tightness, 0.0);

  SearchEngineOptions no_tightness;
  no_tightness.enable_tightness = false;
  auto flat = engine.SearchKeywords("patient height", no_tightness);
  ASSERT_TRUE(flat.ok());
  ASSERT_FALSE(flat->empty());
  EXPECT_GT((*flat)[0].num_matches, 0u);
  EXPECT_EQ((*flat)[0].best_anchor, kNoElement);  // tightness skipped
}

TEST(SearchEngineTest, TopKBoundsResults) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.repo.get(), &f.indexer->index());
  SearchEngineOptions options;
  options.top_k = 1;
  auto results = engine.SearchKeywords("patient height gender", options);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(SearchEngineTest, EmptyQueryRejected) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.repo.get(), &f.indexer->index());
  QueryGraph empty;
  EXPECT_FALSE(engine.Search(empty).ok());
}

TEST(SearchEngineTest, NoHitsYieldsEmptyNotError) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.repo.get(), &f.indexer->index());
  auto results = engine.SearchKeywords("zzz qqq www");
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

// --- graceful degradation ---------------------------------------------------

/// A matcher that always throws, to exercise isolation.
class ThrowingMatcher : public Matcher {
 public:
  std::string Name() const override { return "throwing"; }
  SimilarityMatrix Match(const Schema&, const Schema&) const override {
    throw std::runtime_error("matcher exploded");
  }
};

/// A matcher that burns wall time, to exercise the per-matcher budget.
class SlowMatcher : public Matcher {
 public:
  std::string Name() const override { return "slow"; }
  SimilarityMatrix Match(const Schema& query,
                         const Schema& candidate) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return SimilarityMatrix(query.size(), candidate.size());
  }
};

TEST(SearchDegradationTest, ThrowingMatcherIsIsolatedNotFatal) {
  EngineFixture f = MakeEngineFixture();
  MatcherEnsemble ensemble = MatcherEnsemble::PaperMinimal();
  ensemble.AddMatcher(std::make_unique<ThrowingMatcher>(), 1.0);
  SearchEngine engine(f.repo.get(), &f.indexer->index(), std::move(ensemble));

  SearchStats stats;
  SearchEngineOptions options;
  options.stats = &stats;
  auto results =
      engine.SearchKeywords("patient height gender diagnosis", options);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].schema_id, f.clinic_id)
      << "the surviving matchers must still rank the tight schema first";
  EXPECT_TRUE(stats.degraded);
  ASSERT_EQ(stats.dropped_matchers.size(), 1u);
  EXPECT_EQ(stats.dropped_matchers[0], "throwing");
  for (const SearchResult& r : *results) EXPECT_TRUE(r.degraded);
}

TEST(SearchDegradationTest, HealthySearchIsNotFlaggedDegraded) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.repo.get(), &f.indexer->index());
  SearchStats stats;
  SearchEngineOptions options;
  options.stats = &stats;
  options.deadline_seconds = 60.0;
  options.matcher_budget_seconds = 60.0;
  auto results =
      engine.SearchKeywords("patient height gender diagnosis", options);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(stats.degraded);
  EXPECT_TRUE(stats.dropped_matchers.empty());
  for (const SearchResult& r : *results) EXPECT_FALSE(r.degraded);
}

TEST(SearchDegradationTest, DeadlineFallsBackToCoarseRanking) {
  EngineFixture f = MakeEngineFixture();
  SearchEngine engine(f.repo.get(), &f.indexer->index());
  SearchStats stats;
  SearchEngineOptions options;
  options.stats = &stats;
  options.deadline_seconds = 1e-9;  // expires before the first candidate
  auto results =
      engine.SearchKeywords("patient height gender diagnosis", options);
  ASSERT_TRUE(results.ok()) << "a blown deadline must not become an error: "
                            << results.status();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_TRUE(stats.degraded);
  EXPECT_TRUE(stats.deadline_hit);
  EXPECT_EQ(stats.coarse_only_candidates, 2u);
  // Coarse-only ranking: scores are the normalized phase-1 scores.
  EXPECT_GT((*results)[0].score, 0.0);
  EXPECT_EQ((*results)[0].tightness, 0.0);
  for (const SearchResult& r : *results) EXPECT_TRUE(r.degraded);
}

TEST(SearchDegradationTest, MatcherBudgetBenchesSlowMatcher) {
  EngineFixture f = MakeEngineFixture();
  MatcherEnsemble ensemble = MatcherEnsemble::PaperMinimal();
  ensemble.AddMatcher(std::make_unique<SlowMatcher>(), 1.0);
  SearchEngine engine(f.repo.get(), &f.indexer->index(), std::move(ensemble));

  SearchStats stats;
  SearchEngineOptions options;
  options.stats = &stats;
  options.matcher_budget_seconds = 2.5e-3;  // the 5ms matcher blows this
  auto results =
      engine.SearchKeywords("patient height gender diagnosis", options);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_FALSE(results->empty());
  EXPECT_TRUE(stats.degraded);
  // The fast matchers may squeak under the budget or not depending on
  // machine load; the slow one must always be benched.
  EXPECT_NE(std::find(stats.dropped_matchers.begin(),
                      stats.dropped_matchers.end(), "slow (budget)"),
            stats.dropped_matchers.end())
      << "the 5ms matcher must be dropped for blowing its budget";
}

TEST(SearchDegradationTest, AllMatchersFailingStillReturnsRankedResults) {
  EngineFixture f = MakeEngineFixture();
  MatcherEnsemble ensemble;
  ensemble.AddMatcher(std::make_unique<ThrowingMatcher>(), 1.0);
  SearchEngine engine(f.repo.get(), &f.indexer->index(), std::move(ensemble));

  SearchStats stats;
  SearchEngineOptions options;
  options.stats = &stats;
  auto results =
      engine.SearchKeywords("patient height gender diagnosis", options);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.dropped_matchers.size(), 1u);
  EXPECT_GE(stats.coarse_only_candidates, 1u)
      << "with every matcher benched the pool falls back to coarse scores";
  // The coarse ranking still orders results deterministically.
  EXPECT_GE((*results)[0].score, (*results)[1].score);
}

}  // namespace
}  // namespace schemr
