// Unit tests for src/text: tokenizer, Porter stemmer, stopwords, n-grams,
// analyzer chain.

#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/lexicon.h"
#include "text/ngram.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace schemr {
namespace {

// --- tokenizer ---------------------------------------------------------------

TEST(TokenizerTest, SplitsOnDelimiters) {
  EXPECT_EQ(TokenizeToStrings("date_of_birth"),
            (std::vector<std::string>{"date", "of", "birth"}));
  EXPECT_EQ(TokenizeToStrings("date-of.birth/x"),
            (std::vector<std::string>{"date", "of", "birth", "x"}));
  EXPECT_EQ(TokenizeToStrings("first name"),
            (std::vector<std::string>{"first", "name"}));
}

TEST(TokenizerTest, SplitsCamelCase) {
  EXPECT_EQ(TokenizeToStrings("dateOfBirth"),
            (std::vector<std::string>{"date", "Of", "Birth"}));
  EXPECT_EQ(TokenizeToStrings("DateOfBirth"),
            (std::vector<std::string>{"Date", "Of", "Birth"}));
}

TEST(TokenizerTest, SplitsAcronymBoundary) {
  EXPECT_EQ(TokenizeToStrings("XMLSchema"),
            (std::vector<std::string>{"XML", "Schema"}));
  EXPECT_EQ(TokenizeToStrings("parseHTMLPage"),
            (std::vector<std::string>{"parse", "HTML", "Page"}));
}

TEST(TokenizerTest, SplitsLetterDigitBoundary) {
  EXPECT_EQ(TokenizeToStrings("address2"),
            (std::vector<std::string>{"address", "2"}));
  EXPECT_EQ(TokenizeToStrings("2ndPlace"),
            (std::vector<std::string>{"2", "nd", "Place"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeToStrings("").empty());
  EXPECT_TRUE(TokenizeToStrings("--- ___ ...").empty());
}

TEST(TokenizerTest, PositionsAreSequential) {
  std::vector<Token> tokens = Tokenize("a_b c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 1u);
  EXPECT_EQ(tokens[2].position, 2u);
}

TEST(TokenizerTest, AllUppercaseStaysTogether) {
  EXPECT_EQ(TokenizeToStrings("HTML"), (std::vector<std::string>{"HTML"}));
  EXPECT_EQ(TokenizeToStrings("DATE_OF_BIRTH"),
            (std::vector<std::string>{"DATE", "OF", "BIRTH"}));
}

// --- Porter stemmer -------------------------------------------------------------

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemTest, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().input), GetParam().expected)
      << "input: " << GetParam().input;
}

// Reference outputs from Porter's published vocabulary.
INSTANTIATE_TEST_SUITE_P(
    ReferenceVocabulary, PorterStemTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"digitizer", "digit"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"formaliti", "formal"}, StemCase{"triplicate", "triplic"},
        StemCase{"formative", "form"}, StemCase{"formalize", "formal"},
        StemCase{"electriciti", "electr"}, StemCase{"electrical", "electr"},
        StemCase{"hopeful", "hope"}, StemCase{"goodness", "good"},
        StemCase{"revival", "reviv"}, StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"}, StemCase{"airliner", "airlin"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemTest, DomainWordsConflate) {
  // The property schema search needs: grammatical variants share a stem.
  EXPECT_EQ(PorterStem("diagnosed"), PorterStem("diagnose"));
  EXPECT_EQ(PorterStem("observations"), PorterStem("observation"));
  EXPECT_EQ(PorterStem("enrollments"), PorterStem("enrollment"));
  EXPECT_EQ(PorterStem("payments"), PorterStem("payment"));
}

TEST(PorterStemTest, ShortAndNonAlphaUnchanged) {
  EXPECT_EQ(PorterStem("id"), "id");
  EXPECT_EQ(PorterStem("ab"), "ab");
  EXPECT_EQ(PorterStem("x1y"), "x1y");
  EXPECT_EQ(PorterStem("Name"), "Name");  // uppercase not handled: unchanged
}

// --- stopwords ---------------------------------------------------------------------

TEST(StopwordsTest, ClassicWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_FALSE(IsStopword("patient"));
  EXPECT_FALSE(IsStopword(""));
  EXPECT_FALSE(IsStopword("The"));  // caller lowercases first
}

// --- n-grams -----------------------------------------------------------------------

TEST(NgramTest, BandedExtraction) {
  std::vector<std::string> grams = ExtractNgrams("abcd", 2, 3);
  EXPECT_EQ(grams, (std::vector<std::string>{"ab", "bc", "cd", "abc", "bcd"}));
}

TEST(NgramTest, ExhaustiveMatchesPaperDefinition) {
  // "all possible n-grams, ranging in length from one character to the
  // length of the word": for "abc" that is a,b,c,ab,bc,abc.
  std::vector<std::string> grams = ExtractAllNgrams("abc");
  EXPECT_EQ(grams.size(), 6u);
}

TEST(NgramTest, ClampAndEmpty) {
  EXPECT_TRUE(ExtractNgrams("", 1, 3).empty());
  EXPECT_EQ(ExtractNgrams("ab", 2, 10),
            (std::vector<std::string>{"ab"}));  // max_n clamped to len
  EXPECT_TRUE(ExtractNgrams("abc", 4, 5).empty());  // min_n beyond length
}

TEST(NgramTest, DiceIdenticalIsOne) {
  NgramProfile p = BuildNgramProfile("patient", 2, 4);
  EXPECT_DOUBLE_EQ(DiceSimilarity(p, p), 1.0);
}

TEST(NgramTest, DiceDisjointIsZero) {
  NgramProfile a = BuildNgramProfile("abc", 2, 3);
  NgramProfile b = BuildNgramProfile("xyz", 2, 3);
  EXPECT_DOUBLE_EQ(DiceSimilarity(a, b), 0.0);
}

TEST(NgramTest, DiceSymmetricAndBounded) {
  const char* words[] = {"patient", "pat", "doctor", "patientname", "a"};
  for (const char* wa : words) {
    for (const char* wb : words) {
      NgramProfile a = BuildNgramProfile(wa, 1, 4);
      NgramProfile b = BuildNgramProfile(wb, 1, 4);
      double ab = DiceSimilarity(a, b);
      double ba = DiceSimilarity(b, a);
      EXPECT_DOUBLE_EQ(ab, ba);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
}

TEST(NgramTest, AbbreviationScoresAboveUnrelated) {
  NgramProfile full = BuildNgramProfile("patient", 1, 4);
  NgramProfile abbrev = BuildNgramProfile("pat", 1, 4);
  NgramProfile unrelated = BuildNgramProfile("order", 1, 4);
  EXPECT_GT(DiceSimilarity(full, abbrev), DiceSimilarity(full, unrelated));
}

TEST(NgramTest, JaccardLessOrEqualDice) {
  NgramProfile a = BuildNgramProfile("height", 1, 4);
  NgramProfile b = BuildNgramProfile("weight", 1, 4);
  EXPECT_LE(JaccardSimilarity(a, b), DiceSimilarity(a, b));
  EXPECT_GT(JaccardSimilarity(a, b), 0.0);
}

TEST(NgramTest, EmptyProfilesScoreZero) {
  NgramProfile empty;
  NgramProfile p = BuildNgramProfile("x", 1, 2);
  EXPECT_DOUBLE_EQ(DiceSimilarity(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(empty, p), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(empty, empty), 0.0);
}

// --- lexicon -----------------------------------------------------------------------

TEST(LexiconTest, TablesNonEmptyAndLowercase) {
  EXPECT_FALSE(AbbreviationTable().empty());
  EXPECT_FALSE(SynonymTable().empty());
  for (const auto& [word, abbrevs] : AbbreviationTable()) {
    EXPECT_EQ(word, ToLowerAscii(word));
    EXPECT_FALSE(abbrevs.empty());
  }
}

TEST(LexiconTest, SynonymLookupIsSymmetric) {
  auto of_gender = SynonymsOf("gender");
  EXPECT_NE(std::find(of_gender.begin(), of_gender.end(), "sex"),
            of_gender.end());
  EXPECT_TRUE(AreSynonyms("gender", "sex"));
  EXPECT_TRUE(AreSynonyms("sex", "gender"));
  EXPECT_FALSE(AreSynonyms("gender", "gender"));  // identity ≠ synonymy
  EXPECT_FALSE(AreSynonyms("gender", "height"));
}

TEST(LexiconTest, AreSynonymsWorksOnStemmedForms) {
  // The matcher sees Porter-stemmed words: telephone → "telephon".
  EXPECT_TRUE(AreSynonyms(PorterStem("telephone"), PorterStem("phone")));
  EXPECT_TRUE(AreSynonyms(PorterStem("customers"), PorterStem("clients")));
}

// --- analyzer ------------------------------------------------------------------------

TEST(AnalyzerTest, FullChain) {
  Analyzer analyzer;
  // lowercase + stopword removal + stemming.
  EXPECT_EQ(analyzer.AnalyzeToStrings("The Dates of Births"),
            (std::vector<std::string>{"date", "birth"}));
}

TEST(AnalyzerTest, CamelAndSnakeProduceSameTerms) {
  Analyzer analyzer;
  EXPECT_EQ(analyzer.AnalyzeToStrings("dateOfBirth"),
            analyzer.AnalyzeToStrings("date_of_birth"));
  EXPECT_EQ(analyzer.AnalyzeToStrings("PatientHeight"),
            analyzer.AnalyzeToStrings("patient height"));
}

TEST(AnalyzerTest, OptionsDisableStages) {
  AnalyzerOptions options;
  options.stem = false;
  options.remove_stopwords = false;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.AnalyzeToStrings("The Dates"),
            (std::vector<std::string>{"the", "dates"}));
}

TEST(AnalyzerTest, MinTokenLengthFilters) {
  AnalyzerOptions options;
  options.min_token_length = 3;
  Analyzer analyzer(options);
  EXPECT_EQ(analyzer.AnalyzeToStrings("id of patient x"),
            (std::vector<std::string>{"patient"}));
}

TEST(AnalyzerTest, PositionsPreservedAcrossFiltering) {
  Analyzer analyzer;  // removes stopwords
  std::vector<Token> tokens = analyzer.Analyze("date of birth");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 2u);  // gap where "of" was
}

TEST(AnalyzerTest, NormalizeWordSkipsFiltering) {
  Analyzer analyzer;
  // Stopwords survive NormalizeWord (matchers must not lose terms).
  EXPECT_EQ(analyzer.NormalizeWord("The"), "the");
  EXPECT_EQ(analyzer.NormalizeWord("Patients"), "patient");
}

}  // namespace
}  // namespace schemr
