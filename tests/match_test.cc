// Tests for the match engine: similarity matrix, the four matchers, the
// ensemble combiner and the logistic meta-learner.

#include <gtest/gtest.h>

#include <cmath>

#include "corpus/search_history.h"
#include "match/context_matcher.h"
#include "match/ensemble.h"
#include "match/meta_learner.h"
#include "match/name_matcher.h"
#include "match/structure_matcher.h"
#include "match/type_matcher.h"
#include "schema/schema_builder.h"

namespace schemr {
namespace {

Schema PatientFragment() {
  return SchemaBuilder("fragment")
      .Entity("patient")
      .Attribute("height", DataType::kDouble)
      .Attribute("gender", DataType::kString)
      .Build();
}

Schema ClinicCandidate() {
  return SchemaBuilder("clinic")
      .Entity("pat")  // abbreviated entity name
      .Attribute("pat_id", DataType::kInt64)
      .PrimaryKey()
      .Attribute("ht", DataType::kDouble)         // abbreviated height
      .Attribute("sex", DataType::kString)        // synonym of gender
      .Attribute("dateOfBirth", DataType::kDate)  // camelCase
      .Entity("order")
      .Attribute("total", DataType::kDecimal)
      .Build();
}

// --- similarity matrix ----------------------------------------------------------

TEST(SimilarityMatrixTest, SetClampsAndAccessors) {
  SimilarityMatrix m(2, 3);
  m.set(0, 0, 0.5);
  m.set(0, 1, 1.7);   // clamped to 1
  m.set(1, 2, -0.3);  // clamped to 0
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.ColumnMax(1), 1.0);
  EXPECT_DOUBLE_EQ(m.RowMax(0), 1.0);
  EXPECT_DOUBLE_EQ(m.ColumnMax(2), 0.0);
  EXPECT_NEAR(m.Mean(), 1.5 / 6.0, 1e-12);
}

TEST(SimilarityMatrixTest, WeightedCombine) {
  SimilarityMatrix a(1, 2), b(1, 2);
  a.set(0, 0, 1.0);
  a.set(0, 1, 0.0);
  b.set(0, 0, 0.0);
  b.set(0, 1, 1.0);
  SimilarityMatrix combined =
      SimilarityMatrix::WeightedCombine({&a, &b}, {3.0, 1.0});
  EXPECT_DOUBLE_EQ(combined.at(0, 0), 0.75);
  EXPECT_DOUBLE_EQ(combined.at(0, 1), 0.25);

  // Zero total weight yields zeros, not NaNs.
  SimilarityMatrix zeros =
      SimilarityMatrix::WeightedCombine({&a, &b}, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(zeros.at(0, 0), 0.0);
  // Negative weights are ignored.
  SimilarityMatrix pos =
      SimilarityMatrix::WeightedCombine({&a, &b}, {-5.0, 1.0});
  EXPECT_DOUBLE_EQ(pos.at(0, 1), 1.0);
}

// --- name matcher -----------------------------------------------------------------

TEST(NameMatcherTest, ExactMatchScoresOne) {
  NameMatcher matcher;
  EXPECT_DOUBLE_EQ(matcher.NameSimilarity("patient", "patient"), 1.0);
  // Delimiter/case variants normalize to the same words.
  EXPECT_DOUBLE_EQ(matcher.NameSimilarity("date_of_birth", "dateOfBirth"),
                   1.0);
  EXPECT_DOUBLE_EQ(matcher.NameSimilarity("DATE-OF-BIRTH", "date of birth"),
                   1.0);
}

TEST(NameMatcherTest, AbbreviationsScoreHigh) {
  // "particularly helpful for properly ranking schemas containing
  // abbreviated terms"
  NameMatcher matcher;
  EXPECT_GT(matcher.NameSimilarity("patient", "pat"), 0.5);
  EXPECT_GT(matcher.NameSimilarity("patient", "pat"),
            matcher.NameSimilarity("patient", "order"));
  EXPECT_GT(matcher.NameSimilarity("patient_name", "pat_name"), 0.6);
}

TEST(NameMatcherTest, SynonymsRecognizedViaLexicon) {
  NameMatcher matcher;
  // gender↔sex share no character grams; only the lexicon catches them.
  EXPECT_GE(matcher.NameSimilarity("gender", "sex"), 0.85);
  EXPECT_GE(matcher.NameSimilarity("customer", "client"), 0.85);
  EXPECT_GE(matcher.NameSimilarity("patient_gender", "patient_sex"), 0.9);
  // Disabled option turns it off.
  NameMatcherOptions no_syn;
  no_syn.use_synonyms = false;
  NameMatcher strict(no_syn);
  EXPECT_LT(strict.NameSimilarity("gender", "sex"), 0.3);
}

TEST(NameMatcherTest, AcronymsRecognized) {
  // "dob" is the initials of date_of_birth; must beat unrelated words by a
  // wide margin.
  NameMatcher matcher;
  EXPECT_GE(matcher.NameSimilarity("date_of_birth", "dob"), 0.8);
  EXPECT_GE(matcher.NameSimilarity("dob", "dateOfBirth"), 0.8);  // symmetric
  EXPECT_LT(matcher.NameSimilarity("date_of_birth", "dbo"), 0.5);
}

TEST(NameMatcherTest, ConsonantSkeletonAbbreviations) {
  // Subsequence abbreviations that are not prefixes: qty, ht, wt.
  NameMatcher matcher;
  EXPECT_GT(matcher.NameSimilarity("quantity", "qty"), 0.4);
  EXPECT_GT(matcher.NameSimilarity("height", "ht"), 0.4);
  EXPECT_GT(matcher.NameSimilarity("weight", "wt"), 0.4);
  // But not arbitrary short strings.
  EXPECT_LT(matcher.NameSimilarity("quantity", "zz"), 0.2);
}

TEST(NameMatcherTest, GrammaticalFormsConflate) {
  NameMatcher matcher;
  // Porter maps "diagnosis"→"diagnosi" and "diagnoses"→"diagnose": not
  // identical stems, but the shared prefix keeps the n-gram score high.
  EXPECT_GT(matcher.NameSimilarity("diagnosis", "diagnoses"), 0.8);
  // Regular plurals conflate exactly.
  EXPECT_DOUBLE_EQ(matcher.NameSimilarity("observation", "observations"),
                   1.0);
  EXPECT_DOUBLE_EQ(matcher.NameSimilarity("enrollment", "enrollments"), 1.0);
}

TEST(NameMatcherTest, SymmetricAndBounded) {
  NameMatcher matcher;
  const char* names[] = {"patient", "pat", "patient_name", "order_total",
                         "x", ""};
  for (const char* a : names) {
    for (const char* b : names) {
      double ab = matcher.NameSimilarity(a, b);
      EXPECT_DOUBLE_EQ(ab, matcher.NameSimilarity(b, a));
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(matcher.NameSimilarity("", "patient"), 0.0);
}

TEST(NameMatcherTest, ExhaustiveVariantAlsoWorks) {
  NameMatcherOptions options;
  options.exhaustive_ngrams = true;
  NameMatcher matcher(options);
  EXPECT_DOUBLE_EQ(matcher.NameSimilarity("height", "height"), 1.0);
  EXPECT_GT(matcher.NameSimilarity("patient", "pat"), 0.4);
  EXPECT_LT(matcher.NameSimilarity("patient", "order"),
            matcher.NameSimilarity("patient", "pat"));
}

TEST(NameMatcherTest, MatrixShapeAndValues) {
  NameMatcher matcher;
  Schema query = PatientFragment();
  Schema candidate = ClinicCandidate();
  SimilarityMatrix m = matcher.Match(query, candidate);
  EXPECT_EQ(m.rows(), query.size());
  EXPECT_EQ(m.cols(), candidate.size());

  auto q_height = *query.FindByName("height");
  auto c_ht = *candidate.FindByName("ht");
  auto c_total = *candidate.FindByName("total");
  EXPECT_GT(m.at(q_height, c_ht), m.at(q_height, c_total));
}

// --- context matcher ----------------------------------------------------------------

TEST(ContextMatcherTest, NeighborhoodTermsGatherFamily) {
  ContextMatcher matcher;
  Schema schema = SchemaBuilder("s")
                      .Entity("patient")
                      .Attribute("height")
                      .Attribute("gender")
                      .Entity("visit")
                      .Attribute("patient_id", DataType::kInt64)
                      .References("patient")
                      .Build();
  auto height = *schema.FindByName("height");
  std::vector<std::string> terms = matcher.NeighborhoodTerms(schema, height);
  // parent + sibling present (terms are stemmed/lowercased).
  EXPECT_NE(std::find(terms.begin(), terms.end(), "patient"), terms.end());
  EXPECT_NE(std::find(terms.begin(), terms.end(), "gender"), terms.end());
  EXPECT_NE(std::find(terms.begin(), terms.end(), "height"), terms.end());

  // FK neighbor of the entity appears in the entity's own neighborhood.
  auto patient = *schema.FindByName("patient", ElementKind::kEntity);
  std::vector<std::string> entity_terms =
      matcher.NeighborhoodTerms(schema, patient);
  EXPECT_NE(std::find(entity_terms.begin(), entity_terms.end(), "visit"),
            entity_terms.end());
}

TEST(ContextMatcherTest, SimilarNeighborhoodsScoreHigherThanDissimilar) {
  ContextMatcher matcher;
  Schema query = PatientFragment();
  Schema candidate = ClinicCandidate();
  SimilarityMatrix m = matcher.Match(query, candidate);
  auto q_patient = *query.FindByName("patient", ElementKind::kEntity);
  auto c_pat = *candidate.FindByName("pat", ElementKind::kEntity);
  auto c_order = *candidate.FindByName("order", ElementKind::kEntity);
  EXPECT_GT(m.at(q_patient, c_pat), m.at(q_patient, c_order));
}

TEST(ContextMatcherTest, HardAlignmentIsStricter) {
  ContextMatcherOptions soft;
  ContextMatcherOptions hard;
  hard.soft_alignment = false;
  ContextMatcher soft_matcher(soft), hard_matcher(hard);
  Schema query = PatientFragment();
  Schema candidate = ClinicCandidate();
  auto q_patient = *query.FindByName("patient", ElementKind::kEntity);
  auto c_pat = *candidate.FindByName("pat", ElementKind::kEntity);
  double soft_score = soft_matcher.Match(query, candidate).at(q_patient, c_pat);
  double hard_score = hard_matcher.Match(query, candidate).at(q_patient, c_pat);
  EXPECT_GE(soft_score, hard_score);
  EXPECT_GT(soft_score, 0.0);
}

// --- type matcher ------------------------------------------------------------------------

TEST(TypeMatcherTest, CompatibilityTable) {
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kInt32, DataType::kInt32),
                   1.0);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kInt32, DataType::kInt64),
                   0.8);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kFloat, DataType::kDouble),
                   0.8);
  EXPECT_DOUBLE_EQ(
      DataTypeCompatibility(DataType::kDouble, DataType::kDecimal), 0.6);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kInt64, DataType::kFloat),
                   0.5);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kBool, DataType::kString),
                   0.3);
  EXPECT_DOUBLE_EQ(DataTypeCompatibility(DataType::kBool, DataType::kDate),
                   0.0);
  // Symmetric.
  for (int a = 0; a <= static_cast<int>(DataType::kBinary); ++a) {
    for (int b = 0; b <= static_cast<int>(DataType::kBinary); ++b) {
      EXPECT_DOUBLE_EQ(
          DataTypeCompatibility(static_cast<DataType>(a),
                                static_cast<DataType>(b)),
          DataTypeCompatibility(static_cast<DataType>(b),
                                static_cast<DataType>(a)));
    }
  }
}

TEST(TypeMatcherTest, KindMismatchScoresZero) {
  TypeMatcher matcher;
  Schema query = PatientFragment();
  Schema candidate = ClinicCandidate();
  SimilarityMatrix m = matcher.Match(query, candidate);
  auto q_patient = *query.FindByName("patient", ElementKind::kEntity);
  auto c_ht = *candidate.FindByName("ht");
  EXPECT_DOUBLE_EQ(m.at(q_patient, c_ht), 0.0);  // entity vs attribute
  auto c_pat = *candidate.FindByName("pat", ElementKind::kEntity);
  EXPECT_DOUBLE_EQ(m.at(q_patient, c_pat), 1.0);  // entity vs entity
}

// --- structure matcher ----------------------------------------------------------------------

TEST(StructureMatcherTest, DepthDecayAndKindGate) {
  StructureMatcher matcher;
  Schema query;
  ElementId q_root = query.AddEntity("a");
  query.AddAttribute("x", q_root);

  Schema candidate;
  ElementId c_root = candidate.AddEntity("b");
  ElementId c_nested = candidate.AddEntity("c", c_root);
  candidate.AddAttribute("y", c_root);    // depth 1
  candidate.AddAttribute("z", c_nested);  // depth 2

  SimilarityMatrix m = matcher.Match(query, candidate);
  // Same-depth attribute scores above deeper attribute.
  EXPECT_GT(m.at(1, 2), m.at(1, 3));
  // Entity vs attribute is zero.
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.0);
  // All values bounded.
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      EXPECT_GE(m.at(r, c), 0.0);
      EXPECT_LE(m.at(r, c), 1.0);
    }
  }
}

TEST(StructureMatcherTest, FanoutSimilarity) {
  StructureMatcher matcher;
  Schema query;
  ElementId q = query.AddEntity("q");
  for (int i = 0; i < 4; ++i) {
    query.AddAttribute("a" + std::to_string(i), q);
  }
  Schema candidate;
  ElementId same = candidate.AddEntity("same_fanout");
  for (int i = 0; i < 4; ++i) {
    candidate.AddAttribute("b" + std::to_string(i), same);
  }
  ElementId small = candidate.AddEntity("small_fanout");
  candidate.AddAttribute("only", small);

  SimilarityMatrix m = matcher.Match(query, candidate);
  EXPECT_GT(m.at(q, same), m.at(q, small));
}

// --- ensemble -------------------------------------------------------------------------------

TEST(EnsembleTest, CombinedIsWeightedAverage) {
  MatcherEnsemble ensemble = MatcherEnsemble::PaperMinimal();
  ASSERT_EQ(ensemble.NumMatchers(), 2u);
  Schema query = PatientFragment();
  Schema candidate = ClinicCandidate();
  EnsembleResult result = ensemble.Match(query, candidate);
  ASSERT_EQ(result.per_matcher.size(), 2u);
  EXPECT_EQ(result.matcher_names[0], "name");
  EXPECT_EQ(result.matcher_names[1], "context");
  // Uniform weights: each cell is the mean of the two matchers.
  for (size_t r = 0; r < result.combined.rows(); ++r) {
    for (size_t c = 0; c < result.combined.cols(); ++c) {
      double expected =
          (result.per_matcher[0].at(r, c) + result.per_matcher[1].at(r, c)) /
          2.0;
      ASSERT_NEAR(result.combined.at(r, c), expected, 1e-12);
    }
  }
}

TEST(EnsembleTest, SetWeightsChangesCombination) {
  MatcherEnsemble ensemble = MatcherEnsemble::PaperMinimal();
  Schema query = PatientFragment();
  Schema candidate = ClinicCandidate();
  ensemble.SetWeights({1.0, 0.0});  // name only
  SimilarityMatrix name_only = ensemble.MatchCombined(query, candidate);
  NameMatcher name_matcher;
  SimilarityMatrix reference = name_matcher.Match(query, candidate);
  for (size_t r = 0; r < name_only.rows(); ++r) {
    for (size_t c = 0; c < name_only.cols(); ++c) {
      ASSERT_NEAR(name_only.at(r, c), reference.at(r, c), 1e-12);
    }
  }
  // Wrong-arity weight vectors are rejected (ignored).
  ensemble.SetWeights({1.0});
  EXPECT_EQ(ensemble.weights().size(), 2u);
}

TEST(EnsembleTest, LogisticCombinerInstalled) {
  MatcherEnsemble ensemble = MatcherEnsemble::PaperMinimal();
  LogisticModel model;
  model.weights = {4.0, 4.0};
  model.bias = -2.0;
  ensemble.SetLogisticModel(model);
  ASSERT_TRUE(ensemble.HasLogisticModel());
  Schema query = PatientFragment();
  Schema candidate = ClinicCandidate();
  SimilarityMatrix combined = ensemble.MatchCombined(query, candidate);
  EnsembleResult raw = ensemble.Match(query, candidate);
  // Spot-check the logistic formula on one cell.
  double f0 = raw.per_matcher[0].at(0, 0);
  double f1 = raw.per_matcher[1].at(0, 0);
  double z = 4.0 * f0 + 4.0 * f1 - 2.0;
  EXPECT_NEAR(combined.at(0, 0), 1.0 / (1.0 + std::exp(-z)), 1e-9);

  // Wrong-arity model rejected.
  MatcherEnsemble other = MatcherEnsemble::Default();
  other.SetLogisticModel(model);  // 2 weights vs 4 matchers
  EXPECT_FALSE(other.HasLogisticModel());
}

// --- meta-learner -----------------------------------------------------------------------------

TEST(MetaLearnerTest, LearnsLinearlySeparableData) {
  // Relevant iff feature0 > 0.5; feature1 is noise.
  std::vector<TrainingRecord> records;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    TrainingRecord r;
    double f0 = rng.NextDouble();
    r.features = {f0, rng.NextDouble()};
    r.relevant = f0 > 0.5;
    records.push_back(std::move(r));
  }
  auto model = TrainLogisticModel(records);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GT(EvaluateAccuracy(*model, records), 0.95);
  EXPECT_GT(model->weights[0], std::abs(model->weights[1]));
}

TEST(MetaLearnerTest, NormalizedWeightsSumToOne) {
  LogisticModel model;
  model.weights = {2.0, -1.0, 2.0};
  std::vector<double> w = model.NormalizedWeights();
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 0.5);

  // All-negative weights fall back to uniform.
  model.weights = {-1.0, -2.0};
  w = model.NormalizedWeights();
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

TEST(MetaLearnerTest, RejectsDegenerateTrainingSets) {
  EXPECT_FALSE(TrainLogisticModel({}).ok());

  std::vector<TrainingRecord> all_positive(5);
  for (auto& r : all_positive) {
    r.features = {0.5};
    r.relevant = true;
  }
  EXPECT_FALSE(TrainLogisticModel(all_positive).ok());

  std::vector<TrainingRecord> ragged(2);
  ragged[0].features = {0.1, 0.2};
  ragged[0].relevant = true;
  ragged[1].features = {0.3};
  ragged[1].relevant = false;
  EXPECT_FALSE(TrainLogisticModel(ragged).ok());
}

TEST(MetaLearnerTest, TrainsOnSimulatedSearchHistory) {
  // End-to-end: simulated histories + logistic training separate
  // same-attribute pairs from cross-attribute pairs well above chance.
  MatcherEnsemble ensemble = MatcherEnsemble::Default();
  SearchHistoryOptions options;
  options.num_records = 300;
  std::vector<TrainingRecord> records =
      SimulateSearchHistory(ensemble, options);
  ASSERT_EQ(records.size(), 300u);
  for (const TrainingRecord& r : records) {
    ASSERT_EQ(r.features.size(), ensemble.NumMatchers());
    for (double f : r.features) {
      ASSERT_GE(f, 0.0);
      ASSERT_LE(f, 1.0);
    }
  }
  auto model = TrainLogisticModel(records);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GT(EvaluateAccuracy(*model, records), 0.8);
}

}  // namespace
}  // namespace schemr
