// Tests for the inverted index, TF/IDF searcher (incl. coordination
// factor and proximity boost), segment persistence, and the offline
// indexer.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "index/indexer.h"
#include "index/inverted_index.h"
#include "index/searcher.h"
#include "schema/schema_builder.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

Document MakeDoc(uint64_t id, std::string title,
                 std::vector<std::string> body, std::string summary = "") {
  Document doc;
  doc.external_id = id;
  doc.title = std::move(title);
  doc.summary = std::move(summary);
  doc.body = std::move(body);
  return doc;
}

// --- inverted index ------------------------------------------------------------

TEST(InvertedIndexTest, AddAndLookup) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddDocument(
      MakeDoc(1, "clinic", {"patient height", "patient gender"})).ok());
  EXPECT_EQ(index.NumDocs(), 1u);

  const std::vector<Posting>* postings =
      index.GetPostings(Field::kBody, "patient");
  ASSERT_NE(postings, nullptr);
  ASSERT_EQ(postings->size(), 1u);
  EXPECT_EQ((*postings)[0].tf, 2u);
  EXPECT_EQ((*postings)[0].positions.size(), 2u);

  // Title indexed separately.
  EXPECT_NE(index.GetPostings(Field::kTitle, "clinic"), nullptr);
  EXPECT_EQ(index.GetPostings(Field::kBody, "clinic"), nullptr);
  EXPECT_EQ(index.GetPostings(Field::kBody, "absent"), nullptr);
}

TEST(InvertedIndexTest, AnalyzerAppliedToFields) {
  InvertedIndex index;  // default analyzer: lowercase, stopwords, stem
  ASSERT_TRUE(index.AddDocument(
      MakeDoc(1, "The Patients", {"dateOfBirth"})).ok());
  EXPECT_NE(index.GetPostings(Field::kTitle, "patient"), nullptr);
  EXPECT_EQ(index.GetPostings(Field::kTitle, "the"), nullptr);  // stopword
  EXPECT_NE(index.GetPostings(Field::kBody, "date"), nullptr);
  EXPECT_NE(index.GetPostings(Field::kBody, "birth"), nullptr);
}

TEST(InvertedIndexTest, DuplicateExternalIdRejected) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddDocument(MakeDoc(5, "a", {"x"})).ok());
  EXPECT_EQ(index.AddDocument(MakeDoc(5, "b", {"y"})).code(),
            StatusCode::kAlreadyExists);
}

TEST(InvertedIndexTest, RemoveTombstonesAndVacuum) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddDocument(MakeDoc(1, "a", {"shared term"})).ok());
  ASSERT_TRUE(index.AddDocument(MakeDoc(2, "b", {"shared term"})).ok());
  ASSERT_TRUE(index.RemoveDocument(1).ok());
  EXPECT_TRUE(index.RemoveDocument(1).IsNotFound());  // already gone
  EXPECT_TRUE(index.RemoveDocument(99).IsNotFound());
  EXPECT_EQ(index.NumDocs(), 1u);
  EXPECT_FALSE(index.ContainsDocument(1));
  EXPECT_TRUE(index.ContainsDocument(2));

  // Searches skip the tombstone.
  Searcher searcher(&index);
  std::vector<ScoredDoc> hits = searcher.Search("shared");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].external_id, 2u);

  // Vacuum drops the slot and reassigns ordinals.
  index.Vacuum();
  EXPECT_EQ(index.TotalDocSlots(), 1u);
  hits = searcher.Search("shared");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].external_id, 2u);
}

TEST(InvertedIndexTest, FieldLengthsTracked) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddDocument(MakeDoc(1, "two words", {"aa bb cc", "dd ee"},
                                        "summary text here")).ok());
  const DocInfo& info = index.doc_info(0);
  EXPECT_EQ(info.field_lengths[static_cast<size_t>(Field::kTitle)], 2u);
  EXPECT_EQ(info.field_lengths[static_cast<size_t>(Field::kSummary)], 3u);
  EXPECT_EQ(info.field_lengths[static_cast<size_t>(Field::kBody)], 5u);
}

// --- searcher -------------------------------------------------------------------

InvertedIndex MakeClinicCorpus() {
  InvertedIndex index;
  EXPECT_TRUE(index.AddDocument(MakeDoc(
      1, "clinic", {"patient height", "patient gender", "case diagnosis"},
      "rural clinic visits")).ok());
  EXPECT_TRUE(index.AddDocument(MakeDoc(
      2, "shop", {"customer name", "order total", "product price"})).ok());
  EXPECT_TRUE(index.AddDocument(MakeDoc(
      3, "hospital", {"patient name", "ward number"})).ok());
  return index;
}

TEST(SearcherTest, RanksByRelevance) {
  InvertedIndex index = MakeClinicCorpus();
  Searcher searcher(&index);
  std::vector<ScoredDoc> hits =
      searcher.Search("patient height gender diagnosis");
  ASSERT_EQ(hits.size(), 2u);  // shop matches nothing
  EXPECT_EQ(hits[0].external_id, 1u);
  EXPECT_EQ(hits[1].external_id, 3u);
  EXPECT_GT(hits[0].score, hits[1].score);
  EXPECT_EQ(hits[0].matched_terms, 4u);
  EXPECT_EQ(hits[1].matched_terms, 1u);
}

TEST(SearcherTest, NoConjunctiveRequirement) {
  // "the candidate extraction algorithm need not match all search terms"
  InvertedIndex index = MakeClinicCorpus();
  Searcher searcher(&index);
  std::vector<ScoredDoc> hits = searcher.Search("patient zzzunknown");
  EXPECT_EQ(hits.size(), 2u);  // docs 1 and 3 despite missing term
}

TEST(SearcherTest, CoordinationFactorScalesByMatchedFraction) {
  InvertedIndex index;
  // doc 1 matches one of two query terms; doc 2 matches both.
  ASSERT_TRUE(index.AddDocument(MakeDoc(1, "", {"alpha gamma"})).ok());
  ASSERT_TRUE(index.AddDocument(MakeDoc(2, "", {"alpha beta"})).ok());
  Searcher searcher(&index);

  auto score_of = [&searcher](uint64_t id, bool coord) {
    SearchOptions options;
    options.use_coordination_factor = coord;
    for (const ScoredDoc& hit : searcher.Search("alpha beta", options)) {
      if (hit.external_id == id) return hit.score;
    }
    return -1.0;
  };

  // coord = matched/query terms: halves doc 1's score, leaves doc 2's.
  EXPECT_NEAR(score_of(1, true), 0.5 * score_of(1, false), 1e-12);
  EXPECT_NEAR(score_of(2, true), score_of(2, false), 1e-12);

  // And the full-match doc ranks first with coordination on.
  SearchOptions with_coord;
  std::vector<ScoredDoc> hits = searcher.Search("alpha beta", with_coord);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].external_id, 2u);
}

TEST(SearcherTest, IdfFavorsRareTerms) {
  InvertedIndex index;
  // "common" in all docs; "rare" only in doc 3.
  for (uint64_t id = 1; id <= 3; ++id) {
    std::vector<std::string> body = {"common token"};
    if (id == 3) body.push_back("rare token");
    ASSERT_TRUE(index.AddDocument(MakeDoc(id, "", body)).ok());
  }
  Searcher searcher(&index);
  std::vector<ScoredDoc> hits = searcher.Search("rare common");
  ASSERT_GE(hits.size(), 3u);
  EXPECT_EQ(hits[0].external_id, 3u);
}

TEST(SearcherTest, TitleBoostOutweighsBody) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddDocument(MakeDoc(1, "patient", {"other stuff"})).ok());
  ASSERT_TRUE(index.AddDocument(MakeDoc(2, "other", {"patient stuff"})).ok());
  Searcher searcher(&index);
  std::vector<ScoredDoc> hits = searcher.Search("patient");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].external_id, 1u);
}

TEST(SearcherTest, LengthNormalizationFavorsConciseDocs) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddDocument(MakeDoc(1, "", {"patient data"})).ok());
  std::vector<std::string> long_body = {"patient data"};
  for (int i = 0; i < 30; ++i) long_body.push_back("filler term number");
  ASSERT_TRUE(index.AddDocument(MakeDoc(2, "", long_body)).ok());
  Searcher searcher(&index);
  std::vector<ScoredDoc> hits = searcher.Search("patient");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].external_id, 1u);
}

TEST(SearcherTest, TopNTruncatesDeterministically) {
  InvertedIndex index;
  for (uint64_t id = 1; id <= 20; ++id) {
    ASSERT_TRUE(index.AddDocument(MakeDoc(id, "", {"same text"})).ok());
  }
  Searcher searcher(&index);
  SearchOptions options;
  options.top_n = 5;
  std::vector<ScoredDoc> hits = searcher.Search("same", options);
  ASSERT_EQ(hits.size(), 5u);
  // Equal scores tie-break by ascending external id.
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].external_id, i + 1);
  }
}

TEST(SearcherTest, EmptyQueryAndEmptyIndex) {
  InvertedIndex empty_index;
  Searcher empty_searcher(&empty_index);
  EXPECT_TRUE(empty_searcher.Search("anything").empty());

  InvertedIndex index = MakeClinicCorpus();
  Searcher searcher(&index);
  EXPECT_TRUE(searcher.Search("").empty());
  EXPECT_TRUE(searcher.SearchTerms({}).empty());
}

TEST(SearcherTest, ProximityBoostPrefersAdjacentTerms) {
  InvertedIndex index;
  // Both docs contain both terms in equal-length bodies; in doc 1 they are
  // adjacent, in doc 2 they are far apart.
  std::vector<std::string> near_body = {"patient height", "aa bb cc dd ee"};
  std::vector<std::string> far_body = {"patient aa", "bb cc dd ee height"};
  ASSERT_TRUE(index.AddDocument(MakeDoc(1, "", near_body)).ok());
  ASSERT_TRUE(index.AddDocument(MakeDoc(2, "", far_body)).ok());
  Searcher searcher(&index);
  SearchOptions options;
  options.proximity_boost = 1.0;
  std::vector<ScoredDoc> hits = searcher.Search("patient height", options);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].external_id, 1u);
  EXPECT_GT(hits[0].score, hits[1].score);
}

// --- persistence ----------------------------------------------------------------

TEST(IndexPersistenceTest, SaveLoadRoundTrip) {
  fs::path path = fs::temp_directory_path() / "schemr_index_test.idx";
  InvertedIndex index = MakeClinicCorpus();
  ASSERT_TRUE(index.RemoveDocument(2).ok());  // include a tombstone
  ASSERT_TRUE(index.Save(path.string()).ok());

  auto loaded = InvertedIndex::Load(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumDocs(), index.NumDocs());
  EXPECT_EQ(loaded->NumTerms(), index.NumTerms());
  EXPECT_EQ(loaded->analyzer().options(), index.analyzer().options());

  // Identical search results.
  Searcher original(&index), restored(&*loaded);
  auto a = original.Search("patient height gender diagnosis");
  auto b = restored.Search("patient height gender diagnosis");
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].external_id, b[i].external_id);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
  fs::remove(path);
}

TEST(IndexPersistenceTest, CorruptionDetected) {
  fs::path path = fs::temp_directory_path() / "schemr_index_corrupt.idx";
  InvertedIndex index = MakeClinicCorpus();
  ASSERT_TRUE(index.Save(path.string()).ok());

  // Flip a middle byte: the CRC footer must catch it.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(30);
    int c = file.get();
    file.seekp(30);
    file.put(static_cast<char>(c ^ 0x40));
  }
  EXPECT_TRUE(InvertedIndex::Load(path.string()).status().IsCorruption());

  // Truncations caught too.
  ASSERT_TRUE(index.Save(path.string()).ok());
  fs::resize_file(path, fs::file_size(path) / 2);
  EXPECT_FALSE(InvertedIndex::Load(path.string()).ok());
  fs::remove(path);
  EXPECT_FALSE(InvertedIndex::Load(path.string()).ok());  // missing file
}

// --- offline indexer -----------------------------------------------------------------

TEST(IndexerTest, FlattenSchemaCarriesEntityContext) {
  Schema schema = SchemaBuilder("clinic")
                      .Description("visit tracking")
                      .Entity("patient")
                      .Doc("a person under care")
                      .Attribute("height", DataType::kDouble)
                      .Build();
  schema.set_id(42);
  Document doc = FlattenSchema(schema);
  EXPECT_EQ(doc.external_id, 42u);
  EXPECT_EQ(doc.title, "clinic");
  // Element documentation folded into the summary.
  EXPECT_NE(doc.summary.find("visit tracking"), std::string::npos);
  EXPECT_NE(doc.summary.find("a person under care"), std::string::npos);
  // Attributes carry their entity name for proximity.
  ASSERT_EQ(doc.body.size(), 2u);
  EXPECT_EQ(doc.body[0], "patient");
  EXPECT_EQ(doc.body[1], "patient height");
}

TEST(IndexerTest, RebuildAndRefresh) {
  auto repo = SchemaRepository::OpenInMemory();
  SchemaId id1 = *repo->Insert(SchemaBuilder("one")
                                   .Entity("alpha")
                                   .Attribute("x")
                                   .Build());
  Indexer indexer;
  auto stats = indexer.RebuildFromRepository(*repo);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->schemas_indexed, 1u);
  EXPECT_TRUE(indexer.index().ContainsDocument(id1));

  // Refresh picks up inserts and removals.
  SchemaId id2 = *repo->Insert(SchemaBuilder("two")
                                   .Entity("beta")
                                   .Attribute("y")
                                   .Build());
  ASSERT_TRUE(repo->Remove(id1).ok());
  auto refresh = indexer.Refresh(*repo);
  ASSERT_TRUE(refresh.ok());
  EXPECT_EQ(refresh->schemas_indexed, 1u);
  EXPECT_EQ(refresh->schemas_removed, 1u);
  EXPECT_FALSE(indexer.index().ContainsDocument(id1));
  EXPECT_TRUE(indexer.index().ContainsDocument(id2));
  // Refresh vacuums: no tombstone slots remain.
  EXPECT_EQ(indexer.index().TotalDocSlots(), indexer.index().NumDocs());
}

TEST(IndexerTest, IndexSchemaReplacesPrevious) {
  auto repo = SchemaRepository::OpenInMemory();
  Schema schema = SchemaBuilder("replace_me")
                      .Entity("old_entity")
                      .Attribute("old_attr")
                      .Build();
  SchemaId id = *repo->Insert(schema);
  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());

  Schema updated = *repo->Get(id);
  updated.mutable_element(0)->name = "brand_new_entity";
  updated.mutable_element(1)->name = "fresh_attr";
  ASSERT_TRUE(indexer.IndexSchema(updated).ok());

  Searcher searcher(&indexer.index());
  // "old" only occurred in the replaced version ("entity" is shared by
  // both versions, so probe the distinguishing term).
  EXPECT_TRUE(searcher.Search("old").empty());
  ASSERT_EQ(searcher.Search("brand").size(), 1u);
  EXPECT_EQ(searcher.Search("brand")[0].external_id, id);
}

}  // namespace
}  // namespace schemr
