// Unit tests for src/util: status, strings, varint, crc32, rng, xml,
// fault injection.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/varint.h"
#include "util/xml_writer.h"

namespace schemr {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "parse error: bad token");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  EXPECT_EQ(ok_result.value_or(-1), 42);

  Result<int> err_result(Status::NotFound("nope"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsNotFound());
  EXPECT_EQ(err_result.value_or(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  SCHEMR_ASSIGN_OR_RETURN(int half, HalveEven(x));
  SCHEMR_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(StatusTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterViaMacro(8), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());   // inner call fails
  EXPECT_FALSE(QuarterViaMacro(5).ok());   // outer call fails
}

// --- string_util -------------------------------------------------------------

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("AbC_12"), "abc_12");
  EXPECT_EQ(ToUpperAscii("aBc-x"), "ABC-X");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("  x  y ", " "), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(Split("", ",").empty());
  EXPECT_TRUE(Split(",,,", ",").empty());
}

TEST(StringUtilTest, JoinIsInverseOfSplitForCleanInput) {
  std::vector<std::string> parts{"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, "-"), "a-bb-ccc");
  EXPECT_EQ(Split("a-bb-ccc", "-"), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Patient", "pATIENT"));
  EXPECT_FALSE(EqualsIgnoreCase("patient", "patients"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a_b_c", "_", "--"), "a--b--c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");   // empty pattern no-op
}

TEST(StringUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringUtilTest, IsMostlyAlphabetic) {
  EXPECT_TRUE(IsMostlyAlphabetic("patient name_2"));
  EXPECT_FALSE(IsMostlyAlphabetic("price ($)"));
  EXPECT_FALSE(IsMostlyAlphabetic("a+b"));
  EXPECT_TRUE(IsMostlyAlphabetic(""));
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("patient", "pat"), 4u);
}

// --- varint -------------------------------------------------------------------

class VarintRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTripTest, RoundTrips64) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(GetParam()));
  std::string_view view(buf);
  uint64_t out = 0;
  ASSERT_TRUE(GetVarint64(&view, &out).ok());
  EXPECT_EQ(out, GetParam());
  EXPECT_TRUE(view.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTripTest,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 255ull, 300ull, 16383ull,
                      16384ull, (1ull << 32) - 1, 1ull << 32, UINT64_MAX));

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view view(buf.data(), cut);
    uint64_t out = 0;
    EXPECT_TRUE(GetVarint64(&view, &out).IsCorruption()) << "cut=" << cut;
  }
}

TEST(VarintTest, OverlongVarintRejected) {
  std::string buf(11, '\x80');  // 11 continuation bytes: too long
  std::string_view view(buf);
  uint64_t out = 0;
  EXPECT_TRUE(GetVarint64(&view, &out).IsCorruption());
}

TEST(VarintTest, Varint32OverflowRejected) {
  std::string buf;
  PutVarint64(&buf, uint64_t{UINT32_MAX} + 1);
  std::string_view view(buf);
  uint32_t out = 0;
  EXPECT_TRUE(GetVarint32(&view, &out).IsCorruption());
}

TEST(VarintTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view view(buf);
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&view, &a).ok());
  ASSERT_TRUE(GetLengthPrefixed(&view, &b).ok());
  ASSERT_TRUE(GetLengthPrefixed(&view, &c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(view.empty());
}

TEST(VarintTest, LengthPrefixedTruncationRejected) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 2);
  std::string_view view(buf);
  std::string_view out;
  EXPECT_TRUE(GetLengthPrefixed(&view, &out).IsCorruption());
}

TEST(VarintTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  std::string_view view(buf);
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(GetFixed32(&view, &v32).ok());
  ASSERT_TRUE(GetFixed64(&view, &v64).ok());
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
}

// --- crc32 ---------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, ExtendMatchesWhole) {
  std::string data = "the quick brown fox";
  uint32_t whole = Crc32(data);
  uint32_t split = Crc32Extend(Crc32(data.substr(0, 7)), data.substr(7));
  EXPECT_EQ(whole, split);
}

TEST(Crc32Test, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xCBF43926u, 0xFFFFFFFFu}) {
    EXPECT_EQ(Crc32Unmask(Crc32Mask(crc)), crc);
    EXPECT_NE(Crc32Mask(crc), crc);
  }
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string data = "record payload";
  uint32_t before = Crc32(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc32(data), before);
}

// --- rng ------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
  EXPECT_FALSE(Rng(1).NextBool(0.0));
  EXPECT_TRUE(Rng(1).NextBool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, ZipfIsSkewedTowardLowRanks) {
  Rng rng(17);
  ZipfSampler sampler(100, 1.2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
  // Every sample in range.
  for (const auto& [rank, count] : counts) EXPECT_LT(rank, 100u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  EXPECT_NE(child.Next(), a.Next());
}

// --- xml writer --------------------------------------------------------------------

TEST(XmlWriterTest, SimpleDocument) {
  XmlWriter xml;
  xml.Open("root").Attribute("id", "r1");
  xml.SimpleElement("name", "hello & <world>");
  xml.Open("empty").Close();
  std::string doc = xml.Finish();
  EXPECT_NE(doc.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(doc.find("<root id=\"r1\">"), std::string::npos);
  EXPECT_NE(doc.find("<name>hello &amp; &lt;world&gt;</name>"),
            std::string::npos);
  EXPECT_NE(doc.find("<empty/>"), std::string::npos);
  EXPECT_NE(doc.find("</root>"), std::string::npos);
}

TEST(XmlWriterTest, AttributesEscaped) {
  XmlWriter xml(false);
  xml.Open("a").Attribute("v", "x\"y<z").Close();
  EXPECT_EQ(xml.Finish(), "<a v=\"x&quot;y&lt;z\"/>\n");
}

TEST(XmlWriterTest, FinishClosesAllOpenElements) {
  XmlWriter xml(false);
  xml.Open("a").Open("b").Open("c");
  std::string doc = xml.Finish();
  EXPECT_NE(doc.find("</b>"), std::string::npos);
  EXPECT_NE(doc.find("</a>"), std::string::npos);
}

TEST(XmlWriterTest, NumericAttributes) {
  XmlWriter xml(false);
  xml.Open("n").Attribute("d", 1.5).Attribute("i", 42ll).Close();
  std::string doc = xml.Finish();
  EXPECT_NE(doc.find("d=\"1.5\""), std::string::npos);
  EXPECT_NE(doc.find("i=\"42\""), std::string::npos);
}

TEST(LoggingTest, PluggableSinkCapturesLinesAndRestores) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, std::string_view message) {
    captured.emplace_back(level, std::string(message));
  });
  SCHEMR_LOG(kError) << "sink " << 42;
  SCHEMR_LOG(kDebug) << "below min level, not emitted";
  SetLogSink(nullptr);
  SCHEMR_LOG(kError) << "back to stderr, not captured";

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kError);
  EXPECT_NE(captured[0].second.find("sink 42"), std::string::npos);
  // The formatted prefix (level + source location) is preserved.
  EXPECT_NE(captured[0].second.find("[ERROR"), std::string::npos);
}

// --- fault injection --------------------------------------------------------

/// Guards against tests leaking armed faults into each other.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().DisarmAll(); }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

TEST_F(FaultInjectionTest, DisarmedShimsPassThrough) {
  FaultInjector& fi = FaultInjector::Global();
  EXPECT_FALSE(fi.enabled());
  EXPECT_EQ(fi.Check("some/site"), 0);
  fi.CrashPoint("some/site");  // must be a no-op
}

TEST_F(FaultInjectionTest, CheckReturnsArmedErrno) {
  FaultInjector& fi = FaultInjector::Global();
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.error_code = ENOSPC;
  fi.Arm("site/a", spec);
  EXPECT_TRUE(fi.enabled());
  EXPECT_EQ(fi.Check("site/a"), ENOSPC);
  EXPECT_EQ(fi.Check("site/b"), 0) << "only the armed site fires";
  fi.Disarm("site/a");
  EXPECT_EQ(fi.Check("site/a"), 0);
}

TEST_F(FaultInjectionTest, SkipAndCountBoundFiring) {
  FaultInjector& fi = FaultInjector::Global();
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.skip = 2;
  spec.count = 3;
  fi.Arm("site/skip", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (fi.Check("site/skip") != 0) ++fired;
  }
  EXPECT_EQ(fired, 3) << "skip 2 hits, then fire exactly 3 times";
}

TEST_F(FaultInjectionTest, CrashPointThrowsOnlyWhenArmed) {
  FaultInjector& fi = FaultInjector::Global();
  fi.CrashPoint("crash/site");
  FaultSpec spec;
  spec.kind = FaultKind::kCrash;
  fi.Arm("crash/site", spec);
  EXPECT_THROW(fi.CrashPoint("crash/site"), InjectedCrash);
  try {
    fi.CrashPoint("crash/site");
    FAIL() << "expected InjectedCrash";
  } catch (const InjectedCrash& crash) {
    EXPECT_EQ(crash.site, "crash/site");
  }
}

TEST_F(FaultInjectionTest, WriteShimInjectsShortWrite) {
  FaultInjector& fi = FaultInjector::Global();
  char path[] = "/tmp/schemr_fault_test_XXXXXX";
  int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  FaultSpec spec;
  spec.kind = FaultKind::kShortWrite;
  spec.arg = 3;
  spec.count = 1;
  fi.Arm("write/site", spec);
  errno = 0;
  EXPECT_EQ(fi.Write("write/site", fd, "0123456789", 10), -1);
  EXPECT_EQ(errno, EIO);
  // The torn prefix reached the file; the next write is clean.
  EXPECT_EQ(fi.Write("write/site", fd, "ab", 2), 2);
  EXPECT_EQ(::lseek(fd, 0, SEEK_END), 5) << "3 torn bytes + 2 clean";
  ::close(fd);
  ::unlink(path);
}

TEST_F(FaultInjectionTest, ArmFromSpecParsesAllForms) {
  FaultInjector& fi = FaultInjector::Global();
  ASSERT_TRUE(fi.ArmFromSpec("a=eio;b=enospc;c=error:28;d=short:5;"
                             "e=crash;f=delay:1;g=eio@2x3")
                  .ok());
  EXPECT_EQ(fi.Check("a"), EIO);
  EXPECT_EQ(fi.Check("b"), ENOSPC);
  EXPECT_EQ(fi.Check("c"), 28);
  EXPECT_EQ(fi.Check("d"), EIO) << "short faults report their errno";
  EXPECT_THROW(fi.Check("e"), InjectedCrash);
  EXPECT_EQ(fi.Check("f"), 0) << "delay proceeds normally";
  EXPECT_EQ(fi.Check("g"), 0) << "@2 skips the first two hits";
  EXPECT_EQ(fi.Check("g"), 0);
  EXPECT_NE(fi.Check("g"), 0);
}

TEST_F(FaultInjectionTest, ArmFromSpecRejectsMalformedSpecs) {
  FaultInjector& fi = FaultInjector::Global();
  EXPECT_FALSE(fi.ArmFromSpec("no_equals").ok());
  EXPECT_FALSE(fi.ArmFromSpec("site=unknown_kind").ok());
  EXPECT_FALSE(fi.ArmFromSpec("site=error").ok()) << "error needs :<errno>";
  EXPECT_FALSE(fi.ArmFromSpec("site=delay").ok()) << "delay needs :<ms>";
  EXPECT_FALSE(fi.ArmFromSpec("=eio").ok()) << "empty site name";
}

TEST_F(FaultInjectionTest, OpCountingAndScheduledCrash) {
  FaultInjector& fi = FaultInjector::Global();
  fi.CountOps(true);
  EXPECT_EQ(fi.ops_seen(), 0u);
  (void)fi.Check("x");
  (void)fi.Check("y");
  (void)fi.Check("z");
  EXPECT_EQ(fi.ops_seen(), 3u);

  fi.ScheduleCrashAtOp(2);
  EXPECT_EQ(fi.ops_seen(), 0u) << "scheduling restarts the counter";
  (void)fi.Check("x");
  EXPECT_THROW(fi.Check("y"), InjectedCrash);
  fi.DisarmAll();
  EXPECT_FALSE(fi.enabled());
  (void)fi.Check("x");
  EXPECT_EQ(fi.ops_seen(), 0u) << "DisarmAll stops counting";
}

TEST_F(FaultInjectionTest, FiredFaultsAreCounted) {
  FaultInjector& fi = FaultInjector::Global();
  uint64_t before = fi.faults_fired();
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.count = 2;
  fi.Arm("count/site", spec);
  (void)fi.Check("count/site");
  (void)fi.Check("count/site");
  (void)fi.Check("count/site");  // dormant: count exhausted
  EXPECT_EQ(fi.faults_fired(), before + 2);
  fi.DisarmAll();
  EXPECT_EQ(fi.faults_fired(), before + 2)
      << "DisarmAll keeps the lifetime total";
}

}  // namespace
}  // namespace schemr
