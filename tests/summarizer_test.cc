// Tests for schema summarization (the paper's cited Yu & Jagadish-style
// plan for very large schemas).

#include <gtest/gtest.h>

#include "corpus/schema_generator.h"
#include "parse/xml_parser.h"
#include "schema/schema_builder.h"
#include "viz/layout.h"
#include "viz/summarizer.h"
#include "viz/svg_writer.h"

namespace schemr {
namespace {

/// A star schema: one fact table linked to 4 dimensions, plus two
/// isolated small tables.
Schema MakeStarSchema() {
  SchemaBuilder builder("warehouse");
  builder.Entity("fact_sales");
  builder.Attribute("sale_id", DataType::kInt64).PrimaryKey();
  for (const char* dim : {"product", "store", "customer", "calendar"}) {
    builder.Attribute(std::string(dim) + "_id", DataType::kInt64)
        .References(dim);
  }
  builder.Attribute("amount", DataType::kDecimal);
  for (const char* dim : {"product", "store", "customer", "calendar"}) {
    builder.Entity(dim);
    builder.Attribute("id", DataType::kInt64).PrimaryKey();
    builder.Attribute("name");
  }
  builder.Entity("tiny_lookup_a").Attribute("x");
  builder.Entity("tiny_lookup_b").Attribute("y");
  return builder.Build();
}

TEST(SummarizerTest, HubEntityRanksFirst) {
  Schema schema = MakeStarSchema();
  auto importance = ComputeEntityImportance(schema);
  ElementId fact = *schema.FindByName("fact_sales", ElementKind::kEntity);
  ElementId tiny = *schema.FindByName("tiny_lookup_a", ElementKind::kEntity);
  EXPECT_GT(importance[fact], importance[tiny]);
  // Dimensions beat isolated tables (diffusion from the hub + degree).
  ElementId product = *schema.FindByName("product", ElementKind::kEntity);
  EXPECT_GT(importance[product], importance[tiny]);

  std::vector<ElementId> top = SelectSummaryEntities(schema);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0], fact);
}

TEST(SummarizerTest, SelectionRespectsBudget) {
  Schema schema = MakeStarSchema();
  SummaryOptions options;
  options.max_entities = 3;
  EXPECT_EQ(SelectSummaryEntities(schema, options).size(), 3u);
  options.max_entities = 100;
  EXPECT_EQ(SelectSummaryEntities(schema, options).size(),
            schema.NumEntities());
}

TEST(SummarizerTest, SummaryViewStructure) {
  Schema schema = MakeStarSchema();
  SummaryOptions options;
  options.max_entities = 5;  // fact + 4 dimensions; drops the tiny tables
  options.max_attributes_per_entity = 3;
  SchemaGraphView view = BuildSummaryView(schema, {}, options);

  // 5 entities, each with ≤3 attributes.
  size_t entity_nodes = 0, attr_nodes = 0;
  for (const VizNode& node : view.nodes) {
    if (node.kind == ElementKind::kEntity) {
      ++entity_nodes;
      EXPECT_TRUE(node.collapsed);  // entities were dropped: expandable
    } else {
      ++attr_nodes;
    }
  }
  EXPECT_EQ(entity_nodes, 5u);
  EXPECT_LE(attr_nodes, 15u);
  // Tiny tables are gone.
  EXPECT_EQ(view.NodeIndexOf(
                *schema.FindByName("tiny_lookup_a", ElementKind::kEntity)),
            SIZE_MAX);

  // FK edges among the kept entities survive (4 star arms).
  size_t fk_edges = 0;
  for (const VizEdge& edge : view.edges) fk_edges += edge.is_foreign_key;
  EXPECT_EQ(fk_edges, 4u);

  // Keys and FK attributes outrank plain attributes in the trim.
  ElementId fact = *schema.FindByName("fact_sales", ElementKind::kEntity);
  bool has_pk = false;
  for (const VizNode& node : view.nodes) {
    if (node.kind == ElementKind::kAttribute &&
        schema.EntityOf(node.element) == fact &&
        schema.element(node.element).primary_key) {
      has_pk = true;
    }
  }
  EXPECT_TRUE(has_pk);
}

TEST(SummarizerTest, SummaryRendersAndLaysOut) {
  Schema schema = MakeStarSchema();
  SchemaGraphView view = BuildSummaryView(schema);
  ApplyTreeLayout(&view);
  std::string svg = WriteSvg(view);
  EXPECT_TRUE(ParseXml(svg).ok());
}

TEST(SummarizerTest, ScoresAttach) {
  Schema schema = MakeStarSchema();
  ElementId amount = *schema.FindByName("amount");
  SchemaGraphView view = BuildSummaryView(schema, {{amount, 0.9}});
  size_t idx = view.NodeIndexOf(amount);
  ASSERT_NE(idx, SIZE_MAX);
  EXPECT_DOUBLE_EQ(view.nodes[idx].similarity, 0.9);
}

TEST(SummarizerTest, WorksOnGeneratedCorpus) {
  CorpusOptions options;
  options.num_schemas = 30;
  options.seed = 123;
  for (const GeneratedSchema& g : GenerateCorpus(options)) {
    SummaryOptions summary_options;
    summary_options.max_entities = 2;
    SchemaGraphView view = BuildSummaryView(g.schema, {}, summary_options);
    size_t entities = 0;
    for (const VizNode& node : view.nodes) {
      entities += (node.kind == ElementKind::kEntity);
    }
    EXPECT_LE(entities, 2u);
    EXPECT_GE(entities, 1u);
    for (const VizEdge& edge : view.edges) {
      ASSERT_LT(edge.from, view.nodes.size());
      ASSERT_LT(edge.to, view.nodes.size());
    }
  }
}

TEST(SummarizerTest, EmptySchemaIsSafe) {
  Schema empty("empty");
  EXPECT_TRUE(ComputeEntityImportance(empty).empty());
  EXPECT_TRUE(SelectSummaryEntities(empty).empty());
  SchemaGraphView view = BuildSummaryView(empty);
  EXPECT_TRUE(view.nodes.empty());
}

}  // namespace
}  // namespace schemr
