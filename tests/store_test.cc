// Tests for the log-structured KV store: CRUD, persistence, torn-tail
// recovery, corruption detection, compaction, and a model-based property
// test against std::map.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>

#include "store/kv_store.h"
#include "util/rng.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

class KvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemr_store_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<KvStore> OpenStore(KvStoreOptions options = {}) {
    auto result = KvStore::Open(dir_.string(), options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  /// Path of the first (and in small tests only) segment file.
  fs::path FirstSegment() {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      return entry.path();
    }
    return {};
  }

  fs::path dir_;
};

TEST_F(KvStoreTest, PutGetDelete) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("alpha", "1").ok());
  ASSERT_TRUE(store->Put("beta", "2").ok());
  EXPECT_EQ(store->Size(), 2u);
  EXPECT_EQ(*store->Get("alpha"), "1");
  EXPECT_EQ(*store->Get("beta"), "2");
  EXPECT_TRUE(store->Get("gamma").status().IsNotFound());
  EXPECT_TRUE(store->Contains("alpha"));

  ASSERT_TRUE(store->Delete("alpha").ok());
  EXPECT_TRUE(store->Get("alpha").status().IsNotFound());
  EXPECT_FALSE(store->Contains("alpha"));
  EXPECT_EQ(store->Size(), 1u);
  // Deleting a missing key is OK (idempotent).
  EXPECT_TRUE(store->Delete("alpha").ok());
}

TEST_F(KvStoreTest, OverwriteKeepsLatest) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("k", "old").ok());
  ASSERT_TRUE(store->Put("k", "new").ok());
  EXPECT_EQ(*store->Get("k"), "new");
  EXPECT_EQ(store->Size(), 1u);
  EXPECT_GE(store->GetStats().dead_records, 1u);
}

TEST_F(KvStoreTest, EmptyKeysAndValues) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("", "empty key").ok());
  ASSERT_TRUE(store->Put("empty value", "").ok());
  EXPECT_EQ(*store->Get(""), "empty key");
  EXPECT_EQ(*store->Get("empty value"), "");
}

TEST_F(KvStoreTest, BinarySafeKeysAndValues) {
  auto store = OpenStore();
  std::string key("k\0ey", 4);
  std::string value("v\0al\xFF\x80", 6);
  ASSERT_TRUE(store->Put(key, value).ok());
  EXPECT_EQ(*store->Get(key), value);
}

TEST_F(KvStoreTest, PersistsAcrossReopen) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->Put("a", "1").ok());
    ASSERT_TRUE(store->Put("b", "2").ok());
    ASSERT_TRUE(store->Delete("a").ok());
    ASSERT_TRUE(store->Put("c", "3").ok());
  }
  auto store = OpenStore();
  EXPECT_EQ(store->Size(), 2u);
  EXPECT_TRUE(store->Get("a").status().IsNotFound());
  EXPECT_EQ(*store->Get("b"), "2");
  EXPECT_EQ(*store->Get("c"), "3");
}

TEST_F(KvStoreTest, KeysAreSorted) {
  auto store = OpenStore();
  for (const char* k : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(store->Put(k, "v").ok());
  }
  EXPECT_EQ(store->Keys(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST_F(KvStoreTest, ForEachVisitsAllLivePairs) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("a", "1").ok());
  ASSERT_TRUE(store->Put("b", "2").ok());
  ASSERT_TRUE(store->Delete("a").ok());
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(store
                  ->ForEach([&seen](std::string_view k, std::string_view v) {
                    seen[std::string(k)] = std::string(v);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, (std::map<std::string, std::string>{{"b", "2"}}));
}

TEST_F(KvStoreTest, SegmentRollover) {
  KvStoreOptions options;
  options.max_segment_bytes = 256;  // force frequent rolls
  auto store = OpenStore(options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i),
                           std::string(40, 'x')).ok());
  }
  EXPECT_GT(store->GetStats().segment_count, 3u);
  // Everything still readable.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(store->Contains("key" + std::to_string(i)));
  }
  // And after reopen.
  store.reset();
  store = OpenStore(options);
  EXPECT_EQ(store->Size(), 100u);
}

TEST_F(KvStoreTest, TornTailIsTruncatedOnRecovery) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->Put("good", "value").ok());
    ASSERT_TRUE(store->Put("torn", "this one will be cut").ok());
  }
  // Simulate a crash mid-write: chop bytes off the live segment.
  fs::path segment = FirstSegment();
  ASSERT_FALSE(segment.empty());
  fs::resize_file(segment, fs::file_size(segment) - 5);

  auto store = OpenStore();
  EXPECT_EQ(*store->Get("good"), "value");
  EXPECT_TRUE(store->Get("torn").status().IsNotFound());
  // The store is writable again and the tail stays consistent.
  ASSERT_TRUE(store->Put("after", "crash").ok());
  store.reset();
  store = OpenStore();
  EXPECT_EQ(*store->Get("after"), "crash");
}

TEST_F(KvStoreTest, CorruptPayloadDetectedOnRead) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("key", "valuevaluevalue").ok());
  ASSERT_TRUE(store->Flush().ok());
  // Flip a payload byte in place (not a truncation: same size).
  fs::path segment = FirstSegment();
  {
    std::fstream file(segment, std::ios::in | std::ios::out |
                                   std::ios::binary);
    file.seekp(-3, std::ios::end);
    file.put('X');
  }
  auto result = store->Get("key");
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(KvStoreTest, CorruptMiddleSegmentFailsOpen) {
  KvStoreOptions options;
  options.max_segment_bytes = 128;
  {
    auto store = OpenStore(options);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(store->Put("k" + std::to_string(i),
                             std::string(30, 'y')).ok());
    }
    ASSERT_GT(store->GetStats().segment_count, 2u);
  }
  // Corrupt the FIRST (immutable) segment: open must fail loudly, not
  // silently drop data.
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());
  {
    std::fstream file(segments.front(), std::ios::in | std::ios::out |
                                            std::ios::binary);
    file.seekp(10);
    file.put('Z');
  }
  auto result = KvStore::Open(dir_.string(), options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(KvStoreTest, CompactionReclaimsSpaceAndPreservesData) {
  auto store = OpenStore();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put("churn", "version" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Put("keep" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store->Delete("keep0").ok());
  uint64_t before = store->GetStats().total_bytes;
  ASSERT_TRUE(store->Compact().ok());
  KvStoreStats after = store->GetStats();
  EXPECT_LT(after.total_bytes, before);
  EXPECT_EQ(after.dead_records, 0u);
  EXPECT_EQ(store->Size(), 20u);  // churn + keep1..keep19
  EXPECT_EQ(*store->Get("churn"), "version49");
  EXPECT_TRUE(store->Get("keep0").status().IsNotFound());
  // Compacted store persists.
  store.reset();
  store = OpenStore();
  EXPECT_EQ(store->Size(), 20u);
  EXPECT_EQ(*store->Get("churn"), "version49");
}

TEST_F(KvStoreTest, CompactionOutputCanSpanSegments) {
  KvStoreOptions options;
  options.max_segment_bytes = 200;
  auto store = OpenStore(options);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        store->Put("key" + std::to_string(i), std::string(50, 'p')).ok());
  }
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->Size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(store->Get("key" + std::to_string(i))->size(), 50u);
  }
}

// Model-based property test: random operation sequences agree with a
// std::map reference model, across compaction and reopen boundaries.
TEST_F(KvStoreTest, ModelBasedRandomOperations) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    fs::remove_all(dir_);
    Rng rng(seed);
    std::map<std::string, std::string> model;
    KvStoreOptions options;
    options.max_segment_bytes = 512;
    auto store = OpenStore(options);
    for (int op = 0; op < 600; ++op) {
      double roll = rng.NextDouble();
      std::string key = "k" + std::to_string(rng.NextBelow(40));
      if (roll < 0.55) {
        std::string value = "v" + std::to_string(rng.Next() % 1000);
        ASSERT_TRUE(store->Put(key, value).ok());
        model[key] = value;
      } else if (roll < 0.75) {
        ASSERT_TRUE(store->Delete(key).ok());
        model.erase(key);
      } else if (roll < 0.80) {
        ASSERT_TRUE(store->Compact().ok());
      } else if (roll < 0.85) {
        store.reset();
        store = OpenStore(options);
      } else {
        auto result = store->Get(key);
        if (model.count(key)) {
          ASSERT_TRUE(result.ok()) << result.status();
          EXPECT_EQ(*result, model[key]);
        } else {
          EXPECT_TRUE(result.status().IsNotFound());
        }
      }
    }
    // Final full comparison.
    ASSERT_EQ(store->Size(), model.size()) << "seed " << seed;
    for (const auto& [key, value] : model) {
      EXPECT_EQ(*store->Get(key), value);
    }
  }
}

// --- salvage mode (byte-flip property test) ---------------------------------

/// Deterministic value so surviving records can be verified exactly.
std::string ValueFor(const std::string& key) {
  return key + ":" + std::string(20, 'v');
}

/// Flips one byte at a random offset of a random segment. Damage in the
/// newest segment must recover via torn-tail truncation; damage in an
/// older segment must fail the default open with Corruption and open in
/// salvage mode with every undamaged record intact.
TEST_F(KvStoreTest, ByteFlipRecoveryProperty) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    fs::remove_all(dir_);
    std::mt19937_64 rng(0xf11b + seed);

    KvStoreOptions options;
    options.max_segment_bytes = 200;
    std::map<std::string, uint64_t> segment_of_key;
    uint64_t max_segment = 0;
    {
      auto store = OpenStore(options);
      for (int i = 0; i < 40; ++i) {
        std::string key = "key" + std::to_string(i);  // unique: no overwrites
        ASSERT_TRUE(store->Put(key, ValueFor(key)).ok());
        // Segment ids start at 1 and rolls increment by 1, so the count
        // doubles as the active segment's id.
        segment_of_key[key] = store->GetStats().segment_count;
      }
      max_segment = store->GetStats().segment_count;
      ASSERT_GT(max_segment, 2u);
    }

    // Flip one byte somewhere in a random segment.
    std::uniform_int_distribution<uint64_t> seg_dist(1, max_segment);
    uint64_t damaged = seg_dist(rng);
    fs::path victim;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      std::string name = entry.path().filename().string();
      if (name.find(".seg") == std::string::npos) continue;
      if (std::stoull(name) == damaged) victim = entry.path();
    }
    ASSERT_FALSE(victim.empty());
    uint64_t size = fs::file_size(victim);
    ASSERT_GT(size, 0u);
    std::uniform_int_distribution<uint64_t> off_dist(0, size - 1);
    uint64_t offset = off_dist(rng);
    {
      std::fstream file(victim,
                        std::ios::in | std::ios::out | std::ios::binary);
      file.seekg(static_cast<std::streamoff>(offset));
      char byte = 0;
      file.get(byte);
      file.seekp(static_cast<std::streamoff>(offset));
      file.put(static_cast<char>(byte ^ 0x40));
    }

    auto verify_surviving = [&](KvStore* store) {
      for (const auto& [key, seg] : segment_of_key) {
        auto value = store->Get(key);
        if (seg != damaged) {
          ASSERT_TRUE(value.ok())
              << "key '" << key << "' in undamaged segment " << seg
              << " lost (damage was in segment " << damaged << "): "
              << value.status();
          EXPECT_EQ(*value, ValueFor(key));
        } else if (value.ok()) {
          // Survivors of the damaged segment must still read back
          // exactly; a record can be lost but never silently altered.
          EXPECT_EQ(*value, ValueFor(key));
        } else {
          EXPECT_TRUE(value.status().IsNotFound()) << value.status();
        }
      }
    };

    if (damaged == max_segment) {
      // Newest segment: the torn-tail rule applies, default open succeeds.
      auto store = KvStore::Open(dir_.string(), options);
      ASSERT_TRUE(store.ok()) << store.status();
      verify_surviving(store->get());
    } else {
      // Older segment: default open refuses; salvage opens and counts.
      auto strict = KvStore::Open(dir_.string(), options);
      ASSERT_FALSE(strict.ok());
      EXPECT_TRUE(strict.status().IsCorruption()) << strict.status();

      KvStoreOptions salvage = options;
      salvage.salvage_corrupt_segments = true;
      auto store = KvStore::Open(dir_.string(), salvage);
      ASSERT_TRUE(store.ok()) << store.status();
      const KvRepairReport& report = (*store)->repair_report();
      EXPECT_TRUE(report.AnyDamage());
      EXPECT_EQ(report.corrupt_segments, 1u);
      EXPECT_GE(report.corrupt_regions, 1u);
      EXPECT_GT(report.skipped_bytes, 0u);
      EXPECT_NE(report.ToString().find("quarantined"), std::string::npos);
      verify_surviving(store->get());

      // A salvaged store stays writable, and compaction rewrites it into
      // clean segments that then pass a strict open.
      ASSERT_TRUE((*store)->Put("post_salvage", "ok").ok());
      ASSERT_TRUE((*store)->Compact().ok());
      store->reset();
      auto reopened = KvStore::Open(dir_.string(), options);
      ASSERT_TRUE(reopened.ok()) << reopened.status();
      EXPECT_EQ(*(*reopened)->Get("post_salvage"), "ok");
    }
  }
}

}  // namespace
}  // namespace schemr
