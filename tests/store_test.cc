// Tests for the log-structured KV store: CRUD, persistence, torn-tail
// recovery, corruption detection, compaction, and a model-based property
// test against std::map.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "store/kv_store.h"
#include "util/rng.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

class KvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("schemr_store_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<KvStore> OpenStore(KvStoreOptions options = {}) {
    auto result = KvStore::Open(dir_.string(), options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result).value();
  }

  /// Path of the first (and in small tests only) segment file.
  fs::path FirstSegment() {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      return entry.path();
    }
    return {};
  }

  fs::path dir_;
};

TEST_F(KvStoreTest, PutGetDelete) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("alpha", "1").ok());
  ASSERT_TRUE(store->Put("beta", "2").ok());
  EXPECT_EQ(store->Size(), 2u);
  EXPECT_EQ(*store->Get("alpha"), "1");
  EXPECT_EQ(*store->Get("beta"), "2");
  EXPECT_TRUE(store->Get("gamma").status().IsNotFound());
  EXPECT_TRUE(store->Contains("alpha"));

  ASSERT_TRUE(store->Delete("alpha").ok());
  EXPECT_TRUE(store->Get("alpha").status().IsNotFound());
  EXPECT_FALSE(store->Contains("alpha"));
  EXPECT_EQ(store->Size(), 1u);
  // Deleting a missing key is OK (idempotent).
  EXPECT_TRUE(store->Delete("alpha").ok());
}

TEST_F(KvStoreTest, OverwriteKeepsLatest) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("k", "old").ok());
  ASSERT_TRUE(store->Put("k", "new").ok());
  EXPECT_EQ(*store->Get("k"), "new");
  EXPECT_EQ(store->Size(), 1u);
  EXPECT_GE(store->GetStats().dead_records, 1u);
}

TEST_F(KvStoreTest, EmptyKeysAndValues) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("", "empty key").ok());
  ASSERT_TRUE(store->Put("empty value", "").ok());
  EXPECT_EQ(*store->Get(""), "empty key");
  EXPECT_EQ(*store->Get("empty value"), "");
}

TEST_F(KvStoreTest, BinarySafeKeysAndValues) {
  auto store = OpenStore();
  std::string key("k\0ey", 4);
  std::string value("v\0al\xFF\x80", 6);
  ASSERT_TRUE(store->Put(key, value).ok());
  EXPECT_EQ(*store->Get(key), value);
}

TEST_F(KvStoreTest, PersistsAcrossReopen) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->Put("a", "1").ok());
    ASSERT_TRUE(store->Put("b", "2").ok());
    ASSERT_TRUE(store->Delete("a").ok());
    ASSERT_TRUE(store->Put("c", "3").ok());
  }
  auto store = OpenStore();
  EXPECT_EQ(store->Size(), 2u);
  EXPECT_TRUE(store->Get("a").status().IsNotFound());
  EXPECT_EQ(*store->Get("b"), "2");
  EXPECT_EQ(*store->Get("c"), "3");
}

TEST_F(KvStoreTest, KeysAreSorted) {
  auto store = OpenStore();
  for (const char* k : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(store->Put(k, "v").ok());
  }
  EXPECT_EQ(store->Keys(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST_F(KvStoreTest, ForEachVisitsAllLivePairs) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("a", "1").ok());
  ASSERT_TRUE(store->Put("b", "2").ok());
  ASSERT_TRUE(store->Delete("a").ok());
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(store
                  ->ForEach([&seen](std::string_view k, std::string_view v) {
                    seen[std::string(k)] = std::string(v);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, (std::map<std::string, std::string>{{"b", "2"}}));
}

TEST_F(KvStoreTest, SegmentRollover) {
  KvStoreOptions options;
  options.max_segment_bytes = 256;  // force frequent rolls
  auto store = OpenStore(options);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store->Put("key" + std::to_string(i),
                           std::string(40, 'x')).ok());
  }
  EXPECT_GT(store->GetStats().segment_count, 3u);
  // Everything still readable.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(store->Contains("key" + std::to_string(i)));
  }
  // And after reopen.
  store.reset();
  store = OpenStore(options);
  EXPECT_EQ(store->Size(), 100u);
}

TEST_F(KvStoreTest, TornTailIsTruncatedOnRecovery) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->Put("good", "value").ok());
    ASSERT_TRUE(store->Put("torn", "this one will be cut").ok());
  }
  // Simulate a crash mid-write: chop bytes off the live segment.
  fs::path segment = FirstSegment();
  ASSERT_FALSE(segment.empty());
  fs::resize_file(segment, fs::file_size(segment) - 5);

  auto store = OpenStore();
  EXPECT_EQ(*store->Get("good"), "value");
  EXPECT_TRUE(store->Get("torn").status().IsNotFound());
  // The store is writable again and the tail stays consistent.
  ASSERT_TRUE(store->Put("after", "crash").ok());
  store.reset();
  store = OpenStore();
  EXPECT_EQ(*store->Get("after"), "crash");
}

TEST_F(KvStoreTest, CorruptPayloadDetectedOnRead) {
  auto store = OpenStore();
  ASSERT_TRUE(store->Put("key", "valuevaluevalue").ok());
  ASSERT_TRUE(store->Flush().ok());
  // Flip a payload byte in place (not a truncation: same size).
  fs::path segment = FirstSegment();
  {
    std::fstream file(segment, std::ios::in | std::ios::out |
                                   std::ios::binary);
    file.seekp(-3, std::ios::end);
    file.put('X');
  }
  auto result = store->Get("key");
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(KvStoreTest, CorruptMiddleSegmentFailsOpen) {
  KvStoreOptions options;
  options.max_segment_bytes = 128;
  {
    auto store = OpenStore(options);
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(store->Put("k" + std::to_string(i),
                             std::string(30, 'y')).ok());
    }
    ASSERT_GT(store->GetStats().segment_count, 2u);
  }
  // Corrupt the FIRST (immutable) segment: open must fail loudly, not
  // silently drop data.
  std::vector<fs::path> segments;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());
  {
    std::fstream file(segments.front(), std::ios::in | std::ios::out |
                                            std::ios::binary);
    file.seekp(10);
    file.put('Z');
  }
  auto result = KvStore::Open(dir_.string(), options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(KvStoreTest, CompactionReclaimsSpaceAndPreservesData) {
  auto store = OpenStore();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store->Put("churn", "version" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store->Put("keep" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(store->Delete("keep0").ok());
  uint64_t before = store->GetStats().total_bytes;
  ASSERT_TRUE(store->Compact().ok());
  KvStoreStats after = store->GetStats();
  EXPECT_LT(after.total_bytes, before);
  EXPECT_EQ(after.dead_records, 0u);
  EXPECT_EQ(store->Size(), 20u);  // churn + keep1..keep19
  EXPECT_EQ(*store->Get("churn"), "version49");
  EXPECT_TRUE(store->Get("keep0").status().IsNotFound());
  // Compacted store persists.
  store.reset();
  store = OpenStore();
  EXPECT_EQ(store->Size(), 20u);
  EXPECT_EQ(*store->Get("churn"), "version49");
}

TEST_F(KvStoreTest, CompactionOutputCanSpanSegments) {
  KvStoreOptions options;
  options.max_segment_bytes = 200;
  auto store = OpenStore(options);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        store->Put("key" + std::to_string(i), std::string(50, 'p')).ok());
  }
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->Size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(store->Get("key" + std::to_string(i))->size(), 50u);
  }
}

// Model-based property test: random operation sequences agree with a
// std::map reference model, across compaction and reopen boundaries.
TEST_F(KvStoreTest, ModelBasedRandomOperations) {
  for (uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    fs::remove_all(dir_);
    Rng rng(seed);
    std::map<std::string, std::string> model;
    KvStoreOptions options;
    options.max_segment_bytes = 512;
    auto store = OpenStore(options);
    for (int op = 0; op < 600; ++op) {
      double roll = rng.NextDouble();
      std::string key = "k" + std::to_string(rng.NextBelow(40));
      if (roll < 0.55) {
        std::string value = "v" + std::to_string(rng.Next() % 1000);
        ASSERT_TRUE(store->Put(key, value).ok());
        model[key] = value;
      } else if (roll < 0.75) {
        ASSERT_TRUE(store->Delete(key).ok());
        model.erase(key);
      } else if (roll < 0.80) {
        ASSERT_TRUE(store->Compact().ok());
      } else if (roll < 0.85) {
        store.reset();
        store = OpenStore(options);
      } else {
        auto result = store->Get(key);
        if (model.count(key)) {
          ASSERT_TRUE(result.ok()) << result.status();
          EXPECT_EQ(*result, model[key]);
        } else {
          EXPECT_TRUE(result.status().IsNotFound());
        }
      }
    }
    // Final full comparison.
    ASSERT_EQ(store->Size(), model.size()) << "seed " << seed;
    for (const auto& [key, value] : model) {
      EXPECT_EQ(*store->Get(key), value);
    }
  }
}

}  // namespace
}  // namespace schemr
