// Network chaos tests for the search front end (DESIGN.md §13): the
// byte-identical serving contract (a POST /search response equals the
// in-process HandleSearchXml XML for the same request), the shed →
// wire mapping (ShedReason onto 503 / Retry-After / X-Schemr-Shed),
// client-deadline propagation via X-Schemr-Deadline-Ms, and a chaos
// torture loop that runs full serve/drain cycles while socket faults
// fire and clients kill connections mid-request and mid-response.
// SCHEMR_TORTURE_CYCLES scales the torture loop (CI runs it at 100
// under TSan with SCHEMR_PERTURB=1).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/serving_corpus.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "service/http_server.h"
#include "service/schemr_service.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace schemr {
namespace {

Schema ClinicSchema(const std::string& name) {
  return SchemaBuilder(name)
      .Description("rural clinic data")
      .Entity("patient")
      .Attribute("height", DataType::kDouble)
      .Attribute("gender")
      .Entity("case")
      .Attribute("patient_id", DataType::kInt64)
      .References("patient")
      .Attribute("diagnosis")
      .Build();
}

Result<std::unique_ptr<ServingCorpus>> MakeCorpus(size_t seed_schemas) {
  auto corpus = ServingCorpus::Create(SchemaRepository::OpenInMemory());
  if (!corpus.ok()) return corpus.status();
  for (size_t i = 0; i < seed_schemas; ++i) {
    auto id = (*corpus)->Ingest(ClinicSchema("seed_" + std::to_string(i)));
    if (!id.ok()) return id.status();
  }
  return corpus;
}

SearchRequest ClinicQuery() {
  SearchRequest request;
  request.keywords = "patient height diagnosis";
  request.top_k = 5;
  request.candidate_pool = 20;
  return request;
}

/// POSTs `body` to the service's /search and returns the reply.
Result<HttpReply> PostSearch(const SchemrService& service,
                             const std::string& body,
                             HttpCallOptions options = {}) {
  options.method = "POST";
  options.body = body;
  return HttpCall("127.0.0.1", service.search_server()->port(), "/search",
                  options);
}

// --- the serving contract ---------------------------------------------------

TEST(SearchFrontEndTest, SocketServedSearchIsByteIdenticalToInProcess) {
  auto corpus = MakeCorpus(8);
  ASSERT_TRUE(corpus.ok());
  SchemrService service(corpus->get());
  ServingOptions serving;
  serving.search_port = 0;
  ASSERT_TRUE(service.StartServing(serving).ok());
  ASSERT_NE(service.search_server(), nullptr);
  ASSERT_GT(service.search_server()->port(), 0);

  const SearchRequest request = ClinicQuery();
  const std::string in_process = service.HandleSearchXml(request);
  ASSERT_NE(in_process.find("<results"), std::string::npos) << in_process;

  auto reply = PostSearch(service, SearchRequestToXml(request));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 200);
  EXPECT_EQ(reply->body, in_process);
  ASSERT_NE(reply->headers.find("content-type"), reply->headers.end());
  EXPECT_EQ(reply->headers.at("content-type"), "application/xml");

  EXPECT_TRUE(service.Shutdown(2.0).ok());
}

TEST(SearchFrontEndTest, RequestXmlRoundTrips) {
  SearchRequest request = ClinicQuery();
  request.fragment = "CREATE TABLE patient (height DOUBLE);";
  request.explain = true;
  request.cache_bypass = true;
  auto parsed = ParseSearchRequestXml(SearchRequestToXml(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->keywords, request.keywords);
  EXPECT_EQ(parsed->fragment, request.fragment);
  EXPECT_EQ(parsed->top_k, request.top_k);
  EXPECT_EQ(parsed->candidate_pool, request.candidate_pool);
  EXPECT_TRUE(parsed->explain);
  EXPECT_TRUE(parsed->cache_bypass);
}

TEST(SearchFrontEndTest, MalformedRequestBodyIs400) {
  auto corpus = MakeCorpus(2);
  ASSERT_TRUE(corpus.ok());
  SchemrService service(corpus->get());
  ServingOptions serving;
  serving.search_port = 0;
  ASSERT_TRUE(service.StartServing(serving).ok());

  for (const char* body : {"not xml at all", "<wrong-root/>",
                           "<query keywords=\"x\" top_k=\"banana\"/>"}) {
    auto reply = PostSearch(service, body);
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->status, 400) << body;
    EXPECT_NE(reply->body.find("<error"), std::string::npos) << reply->body;
  }
  EXPECT_TRUE(service.Shutdown(2.0).ok());
}

TEST(SearchFrontEndTest, QueueFullShedMapsTo503RetryAfterAndShedHeader) {
  auto corpus = MakeCorpus(2);
  ASSERT_TRUE(corpus.ok());
  SchemrService service(corpus->get());
  ServingOptions serving;
  serving.search_port = 0;
  // Admission sheds when queue_depth >= max_queue_depth, so a zero cap
  // refuses every request deterministically.
  serving.admission.max_queue_depth = 0;
  ASSERT_TRUE(service.StartServing(serving).ok());

  auto reply = PostSearch(service, SearchRequestToXml(ClinicQuery()));
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 503);
  ASSERT_NE(reply->headers.find("x-schemr-shed"), reply->headers.end());
  EXPECT_EQ(reply->headers.at("x-schemr-shed"), "queue_full");
  EXPECT_NE(reply->headers.find("retry-after"), reply->headers.end());
  EXPECT_NE(reply->body.find("overloaded"), std::string::npos) << reply->body;
  EXPECT_TRUE(service.Shutdown(2.0).ok());
}

TEST(SearchFrontEndTest, DrainShedCarriesNoRetryAfter) {
  auto corpus = MakeCorpus(2);
  ASSERT_TRUE(corpus.ok());
  SchemrService service(corpus->get());
  ASSERT_TRUE(service.StartServing({}).ok());
  ASSERT_TRUE(service.Shutdown(2.0).ok());

  // The handler itself (the socket is already down post-shutdown): a
  // drained instance answers 503 shutting_down WITHOUT Retry-After, so
  // the retrying client gives up instead of hammering a dying process.
  HttpRequest request;
  request.method = "POST";
  request.path = "/search";
  request.body = SearchRequestToXml(ClinicQuery());
  const HttpResponse response = service.HandleSearchHttp(request);
  EXPECT_EQ(response.status, 503);
  EXPECT_LT(response.retry_after_seconds, 0.0);
  bool shed_header = false;
  for (const auto& [name, value] : response.headers) {
    if (name == "X-Schemr-Shed") {
      shed_header = true;
      EXPECT_EQ(value, "shutting_down");
    }
  }
  EXPECT_TRUE(shed_header);
  EXPECT_NE(response.body.find("shutting_down"), std::string::npos);
}

TEST(SearchFrontEndTest, DeadlineHeaderPropagatesToTheSearch) {
  auto corpus = MakeCorpus(8);
  ASSERT_TRUE(corpus.ok());
  SchemrService service(corpus->get());
  ServingOptions serving;
  serving.search_port = 0;
  ASSERT_TRUE(service.StartServing(serving).ok());

  // A generous client deadline serves normally and byte-identically to
  // the in-process call under the same deadline.
  const SearchRequest request = ClinicQuery();
  const std::string in_process = service.HandleSearchXml(request, 5.0);
  HttpCallOptions options;
  options.headers.emplace_back("X-Schemr-Deadline-Ms", "5000");
  auto generous = PostSearch(service, SearchRequestToXml(request), options);
  ASSERT_TRUE(generous.ok()) << generous.status();
  EXPECT_EQ(generous->status, 200);
  EXPECT_EQ(generous->body, in_process);

  // A non-numeric deadline header falls back to the admission default
  // rather than failing the request.
  HttpCallOptions bogus;
  bogus.headers.emplace_back("X-Schemr-Deadline-Ms", "soon");
  auto fallback = PostSearch(service, SearchRequestToXml(request), bogus);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_EQ(fallback->status, 200);
  EXPECT_TRUE(service.Shutdown(2.0).ok());
}

// --- chaos torture ----------------------------------------------------------

int TortureCycles() {
  const char* env = std::getenv("SCHEMR_TORTURE_CYCLES");
  if (env != nullptr) {
    const int cycles = std::atoi(env);
    if (cycles > 0) return cycles;
  }
  return 8;
}

/// One hostile client action against the live front end: a normal call,
/// a connection killed mid-request, a reader that abandons the response
/// after a few bytes, or raw garbage.
void HostileClient(int port, const std::string& body, Rng* rng) {
  const uint64_t kind = rng->NextBelow(4);
  if (kind == 0) {
    HttpCallOptions options;
    options.method = "POST";
    options.body = body;
    options.attempt_timeout_seconds = 3.0;
    options.max_attempts = 2;  // exercise the 503+Retry-After retry path
    options.backoff_base_ms = 1.0;
    options.jitter_seed = rng->Next();
    // Any complete status and any IOError are acceptable under chaos;
    // the assertions that matter are liveness ones after the joins.
    (void)HttpCall("127.0.0.1", port, "/search", options);
    return;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return;
  }
  const std::string request = "POST /search HTTP/1.1\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body;
  if (kind == 1) {
    // Kill mid-request: send a prefix, then vanish.
    const size_t cut = 1 + rng->NextBelow(request.size());
    (void)::send(fd, request.data(), cut, MSG_NOSIGNAL);
  } else if (kind == 2) {
    // Abandon mid-response: full request, read a few bytes, vanish.
    (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
    char buf[8];
    (void)::recv(fd, buf, sizeof(buf), 0);
  } else {
    const size_t size = 1 + rng->NextBelow(256);
    std::string noise;
    noise.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      noise.push_back(static_cast<char>(rng->NextBelow(256)));
    }
    (void)::send(fd, noise.data(), noise.size(), MSG_NOSIGNAL);
  }
  ::close(fd);
}

/// Arms count-limited socket faults for one cycle. Count-limited specs
/// go dormant after firing, so cycles never leak faults into each other
/// and environment-armed faults (SCHEMR_FAULTS in CI) stay untouched.
void ArmCycleFaults(Rng* rng) {
  static const char* const kSites[] = {
      "net/accept/fail", "net/read/reset",  "net/read/short",
      "net/write/reset", "net/write/short", "net/respond/kill",
  };
  for (const char* site : kSites) {
    if (rng->NextBool(0.5)) continue;
    FaultSpec spec;
    if (std::string(site).find("short") != std::string::npos) {
      spec.kind = FaultKind::kShortWrite;
      spec.arg = 1 + rng->NextBelow(64);
    } else {
      spec.kind = FaultKind::kError;
      spec.error_code = rng->NextBool() ? ECONNRESET : EMFILE;
    }
    spec.skip = static_cast<int>(rng->NextBelow(4));
    spec.count = 1 + static_cast<int>(rng->NextBelow(3));
    FaultInjector::Global().Arm(site, spec);
  }
}

TEST(NetworkChaosTest, TortureServeDrainUnderSocketFaults) {
  const int cycles = TortureCycles();
  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerThread = 3;
  Rng rng(20260807);

  for (int cycle = 0; cycle < cycles; ++cycle) {
    auto corpus = MakeCorpus(4);
    ASSERT_TRUE(corpus.ok());
    SchemrService service(corpus->get());
    ServingOptions serving;
    serving.search_port = 0;
    serving.executor.num_workers = 2;
    // Short timeouts so killed connections give handlers back quickly.
    serving.search_http.header_timeout_seconds = 0.5;
    serving.search_http.body_timeout_seconds = 0.5;
    serving.search_http.write_timeout_seconds = 0.5;
    serving.search_http.handler_threads = 2;
    serving.search_http.max_connections = 8;
    ASSERT_TRUE(service.StartServing(serving).ok());
    const int port = service.search_server()->port();
    ASSERT_GT(port, 0);

    ArmCycleFaults(&rng);
    const std::string body = SearchRequestToXml(ClinicQuery());
    std::vector<std::thread> clients;
    clients.reserve(kClientThreads);
    for (int t = 0; t < kClientThreads; ++t) {
      Rng client_rng(rng.Next());
      clients.emplace_back([port, &body, client_rng]() mutable {
        for (int i = 0; i < kRequestsPerThread; ++i) {
          HostileClient(port, body, &client_rng);
        }
      });
    }
    // Let real traffic land first (one well-formed request from this
    // thread guarantees the cycle exercised serving, not just connect
    // refusal), then drain while clients are still attacking: Shutdown
    // must return — a wedged executor or a handler stuck on a dead
    // socket fails the test at the ctest timeout.
    HttpCallOptions probe;
    probe.method = "POST";
    probe.body = body;
    probe.attempt_timeout_seconds = 3.0;
    (void)HttpCall("127.0.0.1", port, "/search", probe);
    const Status drained = service.Shutdown(5.0);
    EXPECT_TRUE(drained.ok() || drained.code() == StatusCode::kUnavailable)
        << drained;
    for (std::thread& client : clients) client.join();
    EXPECT_FALSE(service.serving());
    EXPECT_FALSE(service.search_server()->running());
  }
  FaultInjector::Global().DisarmAll();
}

}  // namespace
}  // namespace schemr
