// Tests for the Applications-section extensions: element-mapping capture,
// collaboration annotations (comments/ratings/usage) with their ranking
// boost, the design-suggestion composer, and XSD export.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/composer.h"
#include "core/search_engine.h"
#include "index/indexer.h"
#include "match/ensemble.h"
#include "match/mapping.h"
#include "parse/xsd_importer.h"
#include "parse/xsd_writer.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

// --- mapping extraction ----------------------------------------------------------

TEST(MappingTest, MutualBestIsOneToOne) {
  SimilarityMatrix m(2, 3);
  m.set(0, 0, 0.9);
  m.set(0, 1, 0.6);
  m.set(1, 1, 0.8);
  m.set(1, 2, 0.4);
  std::vector<ElementCorrespondence> mapping = ExtractMapping(m);
  ASSERT_EQ(mapping.size(), 2u);
  EXPECT_EQ(mapping[0].query_element, 0u);
  EXPECT_EQ(mapping[0].candidate_element, 0u);
  EXPECT_EQ(mapping[1].query_element, 1u);
  EXPECT_EQ(mapping[1].candidate_element, 1u);
}

TEST(MappingTest, ContestedColumnKeepsOnlyMutualBest) {
  // Both query elements prefer candidate 0; only the stronger pair is
  // mutual-best, the weaker row maps nowhere.
  SimilarityMatrix m(2, 2);
  m.set(0, 0, 0.9);
  m.set(1, 0, 0.8);
  m.set(1, 1, 0.1);
  std::vector<ElementCorrespondence> mapping = ExtractMapping(m);
  ASSERT_EQ(mapping.size(), 1u);
  EXPECT_EQ(mapping[0].query_element, 0u);

  // Greedy extraction instead assigns the second-best pair too when it
  // clears the threshold.
  MappingOptions greedy;
  greedy.require_mutual_best = false;
  greedy.min_score = 0.05;
  mapping = ExtractMapping(m, greedy);
  ASSERT_EQ(mapping.size(), 2u);
  EXPECT_EQ(mapping[1].candidate_element, 1u);
}

TEST(MappingTest, ThresholdAndEmptyInputs) {
  SimilarityMatrix m(1, 1);
  m.set(0, 0, 0.3);
  EXPECT_TRUE(ExtractMapping(m).empty());  // below default 0.5
  MappingOptions loose;
  loose.min_score = 0.2;
  EXPECT_EQ(ExtractMapping(m, loose).size(), 1u);
  EXPECT_TRUE(ExtractMapping(SimilarityMatrix()).empty());
}

TEST(MappingTest, EndToEndWithEnsembleAndFormat) {
  Schema query = SchemaBuilder("q")
                     .Entity("patient")
                     .Attribute("height", DataType::kDouble)
                     .Attribute("gender")
                     .Build();
  Schema candidate = SchemaBuilder("c")
                         .Entity("pat")
                         .Attribute("ht", DataType::kDouble)
                         .Attribute("sex")
                         .Attribute("unrelated_thing")
                         .Build();
  MatcherEnsemble ensemble = MatcherEnsemble::Default();
  SimilarityMatrix m = ensemble.MatchCombined(query, candidate);
  MappingOptions options;
  options.min_score = 0.3;
  std::vector<ElementCorrespondence> mapping = ExtractMapping(m, options);
  ASSERT_GE(mapping.size(), 2u);  // patient↔pat and height↔ht at least
  std::string rendered = FormatMapping(mapping, query, candidate);
  EXPECT_NE(rendered.find("->"), std::string::npos);
  EXPECT_NE(rendered.find("patient"), std::string::npos);
}

// --- annotations --------------------------------------------------------------------

Schema SimpleSchema(const std::string& name) {
  return SchemaBuilder(name).Entity("e").Attribute("a").Build();
}

void RunAnnotationContract(SchemaRepository* repo) {
  SchemaId id = *repo->Insert(SimpleSchema("annotated"));

  // Comments append in order.
  EXPECT_TRUE(repo->GetComments(id)->empty());
  ASSERT_TRUE(repo->AddComment(id, {"ada", "great schema", 100}).ok());
  ASSERT_TRUE(repo->AddComment(id, {"bob", "needs a date column", 200}).ok());
  auto comments = repo->GetComments(id);
  ASSERT_TRUE(comments.ok());
  ASSERT_EQ(comments->size(), 2u);
  EXPECT_EQ((*comments)[0].author, "ada");
  EXPECT_EQ((*comments)[1].text, "needs a date column");
  EXPECT_EQ((*comments)[1].timestamp, 200u);

  // Ratings: average, and re-rating replaces.
  EXPECT_EQ(repo->GetRatingSummary(id)->num_ratings, 0u);
  ASSERT_TRUE(repo->AddRating(id, {"ada", 5}).ok());
  ASSERT_TRUE(repo->AddRating(id, {"bob", 3}).ok());
  auto summary = repo->GetRatingSummary(id);
  EXPECT_EQ(summary->num_ratings, 2u);
  EXPECT_DOUBLE_EQ(summary->average, 4.0);
  ASSERT_TRUE(repo->AddRating(id, {"bob", 5}).ok());
  EXPECT_DOUBLE_EQ(repo->GetRatingSummary(id)->average, 5.0);
  EXPECT_FALSE(repo->AddRating(id, {"eve", 0}).ok());
  EXPECT_FALSE(repo->AddRating(id, {"eve", 6}).ok());

  // Usage counter.
  EXPECT_EQ(*repo->GetUsageCount(id), 0u);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(repo->RecordUsage(id).ok());
  EXPECT_EQ(*repo->GetUsageCount(id), 3u);

  // Annotations on unknown schemas are rejected.
  EXPECT_TRUE(repo->AddComment(999, {"x", "y", 1}).IsNotFound());
  EXPECT_TRUE(repo->AddRating(999, {"x", 3}).IsNotFound());
  EXPECT_TRUE(repo->RecordUsage(999).IsNotFound());
}

TEST(AnnotationsTest, InMemoryContract) {
  auto repo = SchemaRepository::OpenInMemory();
  RunAnnotationContract(repo.get());
}

TEST(AnnotationsTest, PersistentContractAndDurability) {
  fs::path dir = fs::temp_directory_path() / "schemr_annotations_test";
  fs::remove_all(dir);
  SchemaId id = kNoSchema;
  {
    auto repo = *SchemaRepository::Open(dir.string());
    RunAnnotationContract(repo.get());
    id = *repo->Insert(SimpleSchema("durable"));
    ASSERT_TRUE(repo->AddComment(id, {"ada", "persisted", 42}).ok());
    ASSERT_TRUE(repo->AddRating(id, {"ada", 4}).ok());
    ASSERT_TRUE(repo->RecordUsage(id).ok());
  }
  {
    auto repo = *SchemaRepository::Open(dir.string());
    EXPECT_EQ((*repo->GetComments(id))[0].text, "persisted");
    EXPECT_DOUBLE_EQ(repo->GetRatingSummary(id)->average, 4.0);
    EXPECT_EQ(*repo->GetUsageCount(id), 1u);
  }
  fs::remove_all(dir);
}

TEST(AnnotationsTest, CodecRoundTripAndCorruption) {
  std::vector<SchemaComment> comments = {{"a", "text one", 1},
                                         {"b", "", 1234567890}};
  auto decoded = DecodeComments(EncodeComments(comments));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, comments);
  EXPECT_FALSE(DecodeComments("garbage!").ok());

  std::vector<SchemaRating> ratings = {{"a", 5}, {"b", 1}};
  auto decoded_ratings = DecodeRatings(EncodeRatings(ratings));
  ASSERT_TRUE(decoded_ratings.ok());
  EXPECT_EQ(*decoded_ratings, ratings);
  std::string bad = EncodeRatings(ratings);
  bad.back() = 9;  // stars out of range
  EXPECT_TRUE(DecodeRatings(bad).status().IsCorruption());
}

TEST(AnnotationsTest, BoostLiftsEndorsedSchemas) {
  auto repo = SchemaRepository::OpenInMemory();
  // Two near-identical schemas; one is highly rated and heavily used.
  SchemaId plain = *repo->Insert(SchemaBuilder("patient_data_a")
                                     .Entity("patient")
                                     .Attribute("height")
                                     .Attribute("gender")
                                     .Build());
  SchemaId endorsed = *repo->Insert(SchemaBuilder("patient_data_b")
                                        .Entity("patient")
                                        .Attribute("height")
                                        .Attribute("gender")
                                        .Build());
  ASSERT_TRUE(repo->AddRating(endorsed, {"ada", 5}).ok());
  ASSERT_TRUE(repo->AddRating(endorsed, {"bob", 5}).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(repo->RecordUsage(endorsed).ok());

  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  SearchEngine engine(repo.get(), &indexer.index());

  SearchEngineOptions boosted;
  boosted.annotation_boost = 0.5;
  auto results = engine.SearchKeywords("patient height gender", boosted);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].schema_id, endorsed);
  EXPECT_GT((*results)[0].score, (*results)[1].score);

  // Without the boost the tie falls back to id order (plain first).
  auto plain_results = engine.SearchKeywords("patient height gender");
  ASSERT_TRUE(plain_results.ok());
  EXPECT_EQ((*plain_results)[0].schema_id, plain);
}

// --- composer --------------------------------------------------------------------------

TEST(ComposerTest, SuggestsUncoveredAnchorAttributesFirst) {
  // Draft covers height+gender of patient; result schema has more patient
  // attributes and an unrelated billing entity.
  Schema draft = SchemaBuilder("draft")
                     .Entity("patient")
                     .Attribute("height", DataType::kDouble)
                     .Attribute("gender")
                     .Build();
  Schema result = SchemaBuilder("result")
                      .Entity("patient")
                      .Attribute("height", DataType::kDouble)
                      .Attribute("gender")
                      .Attribute("date_of_birth", DataType::kDate)
                      .Attribute("blood_type")
                      .Entity("billing")
                      .Attribute("invoice_number")
                      .Build();
  MatcherEnsemble ensemble = MatcherEnsemble::Default();
  ElementId anchor = *result.FindByName("patient", ElementKind::kEntity);
  std::vector<ExtensionSuggestion> suggestions =
      SuggestExtensionsForResult(draft, result, ensemble, anchor);

  ASSERT_GE(suggestions.size(), 3u);
  // Covered attributes are not suggested.
  for (const ExtensionSuggestion& s : suggestions) {
    EXPECT_NE(s.name, "height");
    EXPECT_NE(s.name, "gender");
  }
  // Anchor-entity attributes outrank the unrelated billing attribute.
  std::vector<std::string> names;
  for (const ExtensionSuggestion& s : suggestions) names.push_back(s.name);
  auto pos = [&names](const std::string& n) {
    return std::find(names.begin(), names.end(), n) - names.begin();
  };
  EXPECT_LT(pos("date_of_birth"), pos("invoice_number"));
  EXPECT_LT(pos("blood_type"), pos("invoice_number"));
  // Provenance paths point into the result schema.
  EXPECT_EQ(suggestions[0].source_path.rfind("patient.", 0), 0u);
}

TEST(ComposerTest, ApplySuggestionGrowsDraft) {
  Schema draft = SchemaBuilder("draft")
                     .Entity("patient")
                     .Attribute("height", DataType::kDouble)
                     .Build();
  ElementId entity = *draft.FindByName("patient", ElementKind::kEntity);
  ExtensionSuggestion suggestion;
  suggestion.name = "date_of_birth";
  suggestion.type = DataType::kDate;
  auto added = ApplySuggestion(&draft, entity, suggestion);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(draft.element(*added).name, "date_of_birth");
  EXPECT_EQ(draft.element(*added).type, DataType::kDate);
  EXPECT_TRUE(draft.Validate().ok());
  // Duplicate applications are rejected.
  EXPECT_EQ(ApplySuggestion(&draft, entity, suggestion).status().code(),
            StatusCode::kAlreadyExists);
  // Non-entity target rejected.
  EXPECT_FALSE(ApplySuggestion(&draft, *added, suggestion).ok());
}

TEST(ComposerTest, MismatchedMatrixYieldsNothing) {
  Schema result = SimpleSchema("r");
  SimilarityMatrix wrong(1, 99);
  EXPECT_TRUE(SuggestExtensions(result, wrong, kNoElement).empty());
}

// --- XSD export -----------------------------------------------------------------------

TEST(XsdWriterTest, RoundTripsThroughImporter) {
  Schema original = SchemaBuilder("export")
                        .Entity("observation")
                        .Doc("a field sighting")
                        .Attribute("site")
                        .Attribute("count", DataType::kInt32)
                        .NotNull()
                        .Attribute("observed_at", DataType::kDateTime)
                        .NestedEntity("detail")
                        .Attribute("weather")
                        .End()
                        .Build();
  std::string xsd = WriteXsd(original);
  auto round = ParseXsd(xsd, "export");
  ASSERT_TRUE(round.ok()) << round.status() << "\n" << xsd;
  EXPECT_EQ(round->NumEntities(), original.NumEntities());
  EXPECT_EQ(round->NumAttributes(), original.NumAttributes());
  for (ElementId i = 0; i < original.size(); ++i) {
    EXPECT_EQ(round->element(i).name, original.element(i).name);
    EXPECT_EQ(round->element(i).kind, original.element(i).kind);
    EXPECT_EQ(round->element(i).nullable, original.element(i).nullable)
        << original.element(i).name;
  }
  // Documentation survives.
  auto obs = round->FindByName("observation", ElementKind::kEntity);
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(round->element(*obs).documentation, "a field sighting");
}

TEST(XsdWriterTest, TypeMappingRoundTrips) {
  for (int t = 0; t <= static_cast<int>(DataType::kBinary); ++t) {
    DataType type = static_cast<DataType>(t);
    DataType round = XsdTypeToDataType(DataTypeToXsdType(type));
    if (type == DataType::kNone || type == DataType::kText) {
      EXPECT_EQ(round, DataType::kString);
    } else {
      EXPECT_EQ(round, type) << DataTypeName(type);
    }
  }
}

}  // namespace
}  // namespace schemr
