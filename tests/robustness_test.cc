// Robustness and concurrency coverage: thread-safe repository access,
// query-coverage arithmetic, deterministic generators, service escaping,
// and empty-input edge cases across the stack.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/query_parser.h"
#include "core/tightness_of_fit.h"
#include "corpus/web_tables.h"
#include "index/indexer.h"
#include "parse/xml_parser.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "service/schemr_service.h"
#include "viz/html_report.h"

namespace schemr {
namespace {

// --- QueryCoverage ---------------------------------------------------------------

TEST(QueryCoverageTest, CountsCoveredRows) {
  SimilarityMatrix m(4, 3);
  m.set(0, 0, 0.9);   // row 0 covered
  m.set(1, 2, 0.29);  // row 1 below threshold
  m.set(2, 1, 0.3);   // row 2 exactly at threshold
  // row 3 empty
  EXPECT_DOUBLE_EQ(QueryCoverage(m, 0.3), 0.5);
  EXPECT_DOUBLE_EQ(QueryCoverage(m, 0.95), 0.0);
  EXPECT_DOUBLE_EQ(QueryCoverage(m, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QueryCoverage(SimilarityMatrix(), 0.3), 1.0);
}

TEST(QueryCoverageTest, CoverageScalingCanBeDisabled) {
  // One of two query rows matches: coverage halves the score unless
  // disabled.
  Schema schema = SchemaBuilder("s").Entity("e").Attribute("a").Build();
  SimilarityMatrix m(2, schema.size());
  m.set(0, 1, 0.8);
  TightnessOptions scaled;
  TightnessOptions unscaled;
  unscaled.scale_by_query_coverage = false;
  double with = ComputeTightnessOfFit(schema, m, scaled).score;
  double without = ComputeTightnessOfFit(schema, m, unscaled).score;
  EXPECT_NEAR(with, without / 2.0, 1e-12);
}

// --- repository thread safety -------------------------------------------------------

TEST(RepositoryConcurrencyTest, ParallelReadersAndWriters) {
  auto repo = SchemaRepository::OpenInMemory();
  // Seed with some schemas.
  std::vector<SchemaId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(*repo->Insert(SchemaBuilder("seed" + std::to_string(i))
                                    .Entity("e")
                                    .Attribute("a")
                                    .Build()));
  }
  std::atomic<bool> failed{false};
  auto writer = [&repo, &failed](int thread_id) {
    for (int i = 0; i < 50; ++i) {
      Schema schema = SchemaBuilder("w" + std::to_string(thread_id) + "_" +
                                    std::to_string(i))
                          .Entity("e")
                          .Attribute("a")
                          .Build();
      if (!repo->Insert(std::move(schema)).ok()) failed = true;
    }
  };
  auto reader = [&repo, &ids, &failed] {
    for (int i = 0; i < 200; ++i) {
      auto schema = repo->Get(ids[static_cast<size_t>(i) % ids.size()]);
      if (!schema.ok()) failed = true;
      if (!repo->ListAll().ok()) failed = true;
    }
  };
  auto annotator = [&repo, &ids, &failed] {
    for (int i = 0; i < 100; ++i) {
      SchemaId id = ids[static_cast<size_t>(i) % ids.size()];
      if (!repo->RecordUsage(id).ok()) failed = true;
      if (!repo->GetUsageCount(id).ok()) failed = true;
    }
  };
  std::vector<std::thread> threads;
  threads.emplace_back(writer, 1);
  threads.emplace_back(writer, 2);
  threads.emplace_back(reader);
  threads.emplace_back(reader);
  threads.emplace_back(annotator);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed);
  EXPECT_EQ(repo->Size(), 10u + 2u * 50u);
  // Usage counters all accounted for (one annotator thread, serialized).
  uint64_t total_usage = 0;
  for (SchemaId id : ids) total_usage += *repo->GetUsageCount(id);
  EXPECT_EQ(total_usage, 100u);
}

TEST(SearchConcurrencyTest, ParallelSearchesAgree) {
  auto repo = SchemaRepository::OpenInMemory();
  for (int i = 0; i < 20; ++i) {
    (void)*repo->Insert(SchemaBuilder("s" + std::to_string(i))
                            .Entity("patient")
                            .Attribute("height")
                            .Attribute("gender")
                            .Build());
  }
  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  SearchEngine engine(repo.get(), &indexer.index());
  auto reference = engine.SearchKeywords("patient height");
  ASSERT_TRUE(reference.ok());

  std::atomic<bool> failed{false};
  auto searcher = [&engine, &reference, &failed] {
    for (int i = 0; i < 20; ++i) {
      auto results = engine.SearchKeywords("patient height");
      if (!results.ok() || results->size() != reference->size()) {
        failed = true;
        return;
      }
      for (size_t j = 0; j < results->size(); ++j) {
        if ((*results)[j].schema_id != (*reference)[j].schema_id) {
          failed = true;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(searcher);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed);
}

// --- determinism of generators --------------------------------------------------------

TEST(WebTablesDeterminismTest, SameSeedSameCrawl) {
  WebTableGenOptions options;
  options.num_tables = 500;
  options.seed = 99;
  auto a = GenerateRawWebTables(options);
  auto b = GenerateRawWebTables(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].caption, b[i].caption);
    EXPECT_EQ(a[i].columns, b[i].columns);
  }
}

// --- service escaping and empty inputs -------------------------------------------------

TEST(ServiceRobustnessTest, HostileSchemaNamesAreEscapedEverywhere) {
  auto repo = SchemaRepository::OpenInMemory();
  Schema hostile("evil \"<schema>\" & 'name'");
  ElementId e = hostile.AddEntity("entity <b>bold</b>");
  hostile.AddAttribute("attr & co", e);
  hostile.set_description("desc with <tags> & \"quotes\"");
  SchemaId id = *repo->Insert(std::move(hostile));

  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  SchemrService service(repo.get(), &indexer.index());

  SearchRequest request;
  request.keywords = "evil schema entity";
  auto xml = service.SearchXml(request);
  ASSERT_TRUE(xml.ok()) << xml.status();
  EXPECT_TRUE(ParseXml(*xml).ok()) << *xml;

  VisualizationRequest viz;
  viz.schema_id = id;
  auto graphml = service.GetSchemaGraphMl(viz);
  ASSERT_TRUE(graphml.ok());
  EXPECT_TRUE(ParseXml(*graphml).ok());
  auto svg = service.GetSchemaSvg(viz);
  ASSERT_TRUE(svg.ok());
  EXPECT_TRUE(ParseXml(*svg).ok());
}

TEST(ServiceRobustnessTest, EmptyRepositorySearches) {
  auto repo = SchemaRepository::OpenInMemory();
  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  SchemrService service(repo.get(), &indexer.index());
  SearchRequest request;
  request.keywords = "anything";
  auto results = service.Search(request);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  auto html = service.RenderHtmlReport(request);
  ASSERT_TRUE(html.ok());  // an empty report is still a valid page
}

TEST(HtmlReportTest, EmptyRowsAndPanels) {
  std::string html = WriteHtmlReport("Empty", "no results", {}, {});
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("no results"), std::string::npos);
}

// --- query parser format override -------------------------------------------------------

TEST(QueryParserTest, ExplicitFormatOverridesDetection) {
  // Force XSD parsing of something that does not start with '<': must
  // fail as XSD rather than silently trying DDL.
  auto forced = ParseQuery("kw", "CREATE TABLE t (x INT);",
                           FragmentFormat::kXsd);
  EXPECT_FALSE(forced.ok());
  // And the reverse: DDL parsing of XML fails as DDL.
  auto forced_ddl = ParseQuery("kw", "<xs:schema/>", FragmentFormat::kDdl);
  EXPECT_FALSE(forced_ddl.ok());
}

}  // namespace
}  // namespace schemr
