// Introspection-plane tests (DESIGN.md §12): the embedded HTTP listener
// (routing, error statuses, load shedding, lifecycle), the five service
// endpoints served against a live corpus, exposition conformance of the
// scraped /metrics body, ParseBenchJson-compatibility of /statusz, and
// the wire-format guarantee that tail sampling never changes a response
// byte.

#include "service/http_introspection.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/serving_corpus.h"
#include "obs/exposition.h"
#include "obs/replay.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "service/schemr_service.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

// Sends `raw` to the server verbatim and returns everything it answers.
// HttpGet only speaks well-formed GETs; the error-path tests need to
// speak badly.
std::string RawRequest(int port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// --- the listener itself ----------------------------------------------------

TEST(IntrospectionServerTest, RoutesAndRoundTrips) {
  IntrospectionServer server;
  server.Route("/hello", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "hi from " + request.path + "\n";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  auto body = HttpGet("127.0.0.1", server.port(), "/hello");
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(*body, "hi from /hello\n");
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(IntrospectionServerTest, HandlerSeesQueryString) {
  IntrospectionServer server;
  server.Route("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.query;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  auto body = HttpGet("127.0.0.1", server.port(), "/echo?window=60&x=1");
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(*body, "window=60&x=1");
  server.Stop();
}

TEST(IntrospectionServerTest, UnknownPathIs404ListingEndpoints) {
  IntrospectionServer server;
  server.Route("/metrics", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  auto result = HttpGet("127.0.0.1", server.port(), "/nope");
  ASSERT_FALSE(result.ok());
  // The 404 body names the routes that do exist.
  EXPECT_NE(result.status().message().find("404"), std::string::npos);
  EXPECT_NE(result.status().message().find("/metrics"), std::string::npos);
  server.Stop();
}

TEST(IntrospectionServerTest, NonGetIs405) {
  IntrospectionServer server;
  server.Route("/metrics", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  std::string response =
      RawRequest(server.port(), "POST /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos) << response;
  server.Stop();
}

TEST(IntrospectionServerTest, MalformedRequestLineIs400) {
  IntrospectionServer server;
  ASSERT_TRUE(server.Start().ok());
  std::string response = RawRequest(server.port(), "nonsense\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  server.Stop();
}

TEST(IntrospectionServerTest, OversizedHeadIs431) {
  IntrospectionOptions options;
  options.max_request_bytes = 256;
  IntrospectionServer server(options);
  ASSERT_TRUE(server.Start().ok());
  std::string request = "GET /" + std::string(1024, 'x') + " HTTP/1.1\r\n\r\n";
  std::string response = RawRequest(server.port(), request);
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  server.Stop();
}

TEST(IntrospectionServerTest, DoubleStartFailsStopIsIdempotent) {
  IntrospectionServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());
  int port = server.port();
  server.Stop();
  server.Stop();  // no-op
  // The socket is actually released: a fresh server can bind that port.
  IntrospectionOptions options;
  options.port = port;
  IntrospectionServer second(options);
  EXPECT_TRUE(second.Start().ok());
  second.Stop();
}

TEST(IntrospectionServerTest, ConcurrentClientsAllGetAnswers) {
  IntrospectionServer server;
  std::atomic<int> calls{0};
  server.Route("/busy", [&calls](const HttpRequest&) {
    calls.fetch_add(1);
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      auto body = HttpGet("127.0.0.1", server.port(), "/busy");
      if (body.ok()) {
        ok.fetch_add(1);
      } else {
        shed.fetch_add(1);  // a saturated pool answers 503, never hangs
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every client got an HTTP answer; at least one got through.
  EXPECT_EQ(ok.load() + shed.load(), kClients);
  EXPECT_GT(ok.load(), 0);
  server.Stop();
}

// --- service endpoints against a live corpus --------------------------------

Schema ClinicSchema(const std::string& name) {
  return SchemaBuilder(name)
      .Description("rural clinic data")
      .Entity("patient")
      .Attribute("height", DataType::kDouble)
      .Attribute("gender")
      .Entity("case")
      .Attribute("patient_id", DataType::kInt64)
      .References("patient")
      .Attribute("diagnosis")
      .Build();
}

Result<std::unique_ptr<ServingCorpus>> MakeCorpus(size_t seed_schemas) {
  auto corpus = ServingCorpus::Create(SchemaRepository::OpenInMemory());
  if (!corpus.ok()) return corpus.status();
  for (size_t i = 0; i < seed_schemas; ++i) {
    auto id = (*corpus)->Ingest(ClinicSchema("seed_" + std::to_string(i)));
    if (!id.ok()) return id.status();
  }
  return corpus;
}

class IntrospectionServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    audit_dir_ = fs::temp_directory_path() /
                 ("schemr_introspection_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    fs::remove_all(audit_dir_);
  }
  void TearDown() override { fs::remove_all(audit_dir_); }

  fs::path audit_dir_;
};

TEST_F(IntrospectionServiceTest, FiveEndpointsServeLiveData) {
  auto corpus_or = MakeCorpus(8);
  ASSERT_TRUE(corpus_or.ok());
  SchemrService service(corpus_or->get());
  ASSERT_TRUE(service.EnableAudit(audit_dir_.string()).ok());

  ServingOptions serving;
  serving.introspection_port = 0;
  serving.result_cache_capacity = 16;
  serving.trace_retention.sample_every_n = 1;  // trace everything
  ASSERT_TRUE(service.StartServing(serving).ok());
  ASSERT_NE(service.introspection(), nullptr);
  const int port = service.introspection()->port();
  ASSERT_GT(port, 0);

  SearchRequest request;
  request.keywords = "patient height diagnosis";
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(service.HandleSearchXml(request, 5.0).find("<results"),
              std::string::npos);
  }
  service.telemetry()->SampleNow();  // make the windows current

  // /metrics: a conformant Prometheus body with live series.
  auto metrics = HttpGet("127.0.0.1", port, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  Status conforms = CheckPrometheusText(*metrics);
  EXPECT_TRUE(conforms.ok()) << conforms;
  EXPECT_NE(metrics->find("schemr_service_search_xml_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics->find("schemr_result_cache_hit_ratio"),
            std::string::npos);

  // /healthz: serving and not overloaded.
  auto healthz = HttpGet("127.0.0.1", port, "/healthz");
  ASSERT_TRUE(healthz.ok()) << healthz.status();
  EXPECT_NE(healthz->find("\"status\":\"ok\""), std::string::npos)
      << *healthz;

  // /statusz: flat JSON ParseBenchJson understands, with the fields the
  // dashboard reads.
  auto statusz = HttpGet("127.0.0.1", port, "/statusz");
  ASSERT_TRUE(statusz.ok()) << statusz.status();
  auto fields = ParseBenchJson(*statusz);
  ASSERT_TRUE(fields.ok()) << fields.status();
  EXPECT_EQ(fields->at("serving"), 1.0);
  EXPECT_EQ(fields->at("corpus.index_docs"), 8.0);
  EXPECT_GT(fields->at("corpus.snapshot_version"), 0.0);
  EXPECT_GE(fields->at("uptime_seconds"), 0.0);
  EXPECT_GT(fields->at("result_cache.capacity"), 0.0);
  EXPECT_TRUE(fields->count("window_1m.qps")) << *statusz;
  EXPECT_TRUE(fields->count("window_15m.p99_ms")) << *statusz;

  // /tracez: every request above was sampled, so traces were retained.
  auto tracez = HttpGet("127.0.0.1", port, "/tracez");
  ASSERT_TRUE(tracez.ok()) << tracez.status();
  EXPECT_NE(tracez->find("\"stats\""), std::string::npos);
  EXPECT_NE(tracez->find("\"recent\""), std::string::npos) << *tracez;

  // /slowz: present and well-formed (the ring may or may not have
  // entries at these latencies).
  auto slowz = HttpGet("127.0.0.1", port, "/slowz");
  ASSERT_TRUE(slowz.ok()) << slowz.status();
  EXPECT_NE(slowz->find("\"count\""), std::string::npos);

  EXPECT_TRUE(service.Shutdown(5.0).ok());
  // Shutdown stops the listener with the rest of the serving plane.
  EXPECT_FALSE(HttpGet("127.0.0.1", port, "/healthz", 1.0).ok());
}

TEST_F(IntrospectionServiceTest, HealthzTracksServingLifecycle) {
  auto corpus_or = MakeCorpus(2);
  ASSERT_TRUE(corpus_or.ok());
  SchemrService service(corpus_or->get());

  int status = 0;
  service.HealthzJson(&status);
  EXPECT_EQ(status, 503);  // never started serving

  ASSERT_TRUE(service.StartServing().ok());
  std::string body = service.HealthzJson(&status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;

  EXPECT_TRUE(service.Shutdown(5.0).ok());
  body = service.HealthzJson(&status);
  EXPECT_EQ(status, 503);
  // A clean drain is a planned exit, distinct from a wedged executor;
  // either way the process stays out of rotation.
  EXPECT_NE(body.find("\"status\":\"shut_down\""), std::string::npos) << body;
}

TEST_F(IntrospectionServiceTest, HealthzPollDuringShutdownDoesNotDeadlock) {
  // Regression: Shutdown used to hold serving_mutex_ while stopping the
  // listener, whose Stop() joins in-flight handlers — and /healthz
  // handlers take serving_mutex_ themselves, so a poll racing a drain
  // deadlocked permanently. A balancer polling /healthz through a
  // graceful drain is the documented workload, so hammer the endpoint
  // while Shutdown runs; under the old locking this test never returns
  // (the ctest timeout is the failure mode).
  auto corpus_or = MakeCorpus(2);
  ASSERT_TRUE(corpus_or.ok());
  SchemrService service(corpus_or->get());
  ServingOptions serving;
  serving.introspection_port = 0;
  ASSERT_TRUE(service.StartServing(serving).ok());
  const int port = service.introspection()->port();
  ASSERT_GT(port, 0);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)HttpGet("127.0.0.1", port, "/healthz", 1.0);
    }
  });
  // Give the poller time to have requests in flight, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(service.Shutdown(5.0).ok());
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_FALSE(service.serving());
}

TEST_F(IntrospectionServiceTest, EndpointsWorkWithoutAuditOrTraffic) {
  auto corpus_or = MakeCorpus(1);
  ASSERT_TRUE(corpus_or.ok());
  SchemrService service(corpus_or->get());
  ServingOptions serving;
  serving.introspection_port = 0;
  ASSERT_TRUE(service.StartServing(serving).ok());
  const int port = service.introspection()->port();

  auto slowz = HttpGet("127.0.0.1", port, "/slowz");
  ASSERT_TRUE(slowz.ok()) << slowz.status();
  EXPECT_NE(slowz->find("\"count\":0"), std::string::npos) << *slowz;
  auto tracez = HttpGet("127.0.0.1", port, "/tracez");
  ASSERT_TRUE(tracez.ok()) << tracez.status();
  auto statusz = HttpGet("127.0.0.1", port, "/statusz");
  ASSERT_TRUE(statusz.ok()) << statusz.status();
  EXPECT_TRUE(ParseBenchJson(*statusz).ok());
  EXPECT_TRUE(service.Shutdown(5.0).ok());
}

TEST_F(IntrospectionServiceTest, ListenerBindFailureUnwindsStartServing) {
  // Occupy a port, then ask StartServing for exactly it.
  IntrospectionServer squatter;
  ASSERT_TRUE(squatter.Start().ok());

  auto corpus_or = MakeCorpus(1);
  ASSERT_TRUE(corpus_or.ok());
  SchemrService service(corpus_or->get());
  ServingOptions serving;
  serving.introspection_port = squatter.port();
  EXPECT_FALSE(service.StartServing(serving).ok());
  EXPECT_FALSE(service.serving());
  squatter.Stop();

  // The unwind left the service restartable.
  serving.introspection_port = 0;
  EXPECT_TRUE(service.StartServing(serving).ok());
  EXPECT_TRUE(service.serving());
  EXPECT_TRUE(service.Shutdown(5.0).ok());
}

TEST_F(IntrospectionServiceTest, TailSamplingNeverChangesTheWire) {
  auto corpus_or = MakeCorpus(6);
  ASSERT_TRUE(corpus_or.ok());

  SearchRequest request;
  request.keywords = "patient height diagnosis";

  // Same corpus, one service tracing every request, one tracing none.
  std::vector<std::string> responses[2];
  const uint32_t sample_every[2] = {1, 0};
  for (int s = 0; s < 2; ++s) {
    SchemrService service(corpus_or->get());
    ServingOptions serving;
    serving.trace_retention.sample_every_n = sample_every[s];
    ASSERT_TRUE(service.StartServing(serving).ok());
    for (int i = 0; i < 3; ++i) {
      responses[s].push_back(service.HandleSearchXml(request, 5.0));
    }
    EXPECT_TRUE(service.Shutdown(5.0).ok());
  }
  ASSERT_EQ(responses[0].size(), responses[1].size());
  for (size_t i = 0; i < responses[0].size(); ++i) {
    EXPECT_EQ(responses[0][i], responses[1][i]) << "response " << i;
  }
  // The traced service actually retained something: the guarantee is
  // "sampling is invisible", not "sampling is off".
}

TEST_F(IntrospectionServiceTest, EndpointsConcurrentWithSearchAndIngest) {
  auto corpus_or = MakeCorpus(4);
  ASSERT_TRUE(corpus_or.ok());
  ServingCorpus* corpus = corpus_or->get();
  SchemrService service(corpus);
  ASSERT_TRUE(service.EnableAudit(audit_dir_.string()).ok());
  ServingOptions serving;
  serving.introspection_port = 0;
  serving.result_cache_capacity = 32;
  ASSERT_TRUE(service.StartServing(serving).ok());
  const int port = service.introspection()->port();

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes_ok{0};
  std::thread ingester([&] {
    for (int i = 0; i < 20 && !stop.load(); ++i) {
      ASSERT_TRUE(
          corpus->Ingest(ClinicSchema("live_" + std::to_string(i))).ok());
    }
  });
  std::thread searcher([&] {
    SearchRequest request;
    request.keywords = "patient height";
    while (!stop.load()) {
      std::string xml = service.HandleSearchXml(request, 5.0);
      ASSERT_NE(xml.find("<"), std::string::npos);
    }
  });
  const char* endpoints[] = {"/metrics", "/healthz", "/statusz", "/tracez",
                             "/slowz"};
  for (int round = 0; round < 10; ++round) {
    for (const char* path : endpoints) {
      auto body = HttpGet("127.0.0.1", port, path);
      if (body.ok()) scrapes_ok.fetch_add(1);
    }
  }
  stop.store(true);
  ingester.join();
  searcher.join();
  EXPECT_GT(scrapes_ok.load(), 0);
  EXPECT_TRUE(service.Shutdown(5.0).ok());
}

}  // namespace
}  // namespace schemr
