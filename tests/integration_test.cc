// Integration tests across modules: the full architecture round trip
// (repository on disk → offline indexer → saved segment → search service →
// XML/GraphML), pipeline quality ordering (the paper's central claim that
// matching + tightness improve on text search alone), and meta-learned
// weights vs uniform.

#include <gtest/gtest.h>

#include <filesystem>

#include "corpus/search_history.h"
#include "eval/harness.h"
#include "parse/xml_parser.h"
#include "service/schemr_service.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

TEST(IntegrationTest, FullArchitectureRoundTripOnDisk) {
  fs::path dir = fs::temp_directory_path() / "schemr_integration_repo";
  fs::remove_all(dir);

  CorpusOptions corpus_options;
  corpus_options.num_schemas = 80;
  corpus_options.seed = 2011;
  std::vector<GeneratedSchema> corpus = GenerateCorpus(corpus_options);

  fs::path index_path = dir / "segment.idx";
  std::vector<SearchResult> before;

  {
    // Session 1: populate the repository, index it, run a search, persist
    // the index segment.
    auto repo = SchemaRepository::Open((dir / "store").string());
    ASSERT_TRUE(repo.ok()) << repo.status();
    for (const GeneratedSchema& g : corpus) {
      ASSERT_TRUE((*repo)->Insert(g.schema).ok());
    }
    Indexer indexer;
    ASSERT_TRUE(indexer.RebuildFromRepository(**repo).ok());
    ASSERT_TRUE(indexer.Save(index_path.string()).ok());

    SchemrService service(repo->get(), &indexer.index());
    SearchRequest request;
    request.keywords = "patient height gender diagnosis";
    auto results = service.Search(request);
    ASSERT_TRUE(results.ok()) << results.status();
    ASSERT_FALSE(results->empty());
    before = *results;
  }

  {
    // Session 2: everything reloaded from disk must behave identically.
    auto repo = SchemaRepository::Open((dir / "store").string());
    ASSERT_TRUE(repo.ok());
    EXPECT_EQ((*repo)->Size(), corpus.size());
    Indexer indexer;
    ASSERT_TRUE(indexer.LoadFrom(index_path.string()).ok());
    EXPECT_EQ(indexer.index().NumDocs(), corpus.size());

    SchemrService service(repo->get(), &indexer.index());
    SearchRequest request;
    request.keywords = "patient height gender diagnosis";
    auto results = service.Search(request);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), before.size());
    for (size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ((*results)[i].schema_id, before[i].schema_id);
      EXPECT_NEAR((*results)[i].score, before[i].score, 1e-9);
    }

    // Visualization endpoint on the top hit (Fig. 5's second request).
    VisualizationRequest viz;
    viz.schema_id = (*results)[0].schema_id;
    viz.scores = (*results)[0].matched_elements;
    auto graphml = service.GetSchemaGraphMl(viz);
    ASSERT_TRUE(graphml.ok()) << graphml.status();
    EXPECT_TRUE(ParseXml(*graphml).ok());
  }
  fs::remove_all(dir);
}

struct PipelineQuality {
  QualitySummary coarse_only;
  QualitySummary with_matching;
  QualitySummary full;
};

PipelineQuality MeasurePipelineStages() {
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 250;
  corpus_options.seed = 424;
  // Noisy names: this is where matching should help.
  corpus_options.name_noise.abbreviation_prob = 0.35;
  corpus_options.name_noise.synonym_prob = 0.15;
  auto fixture = CorpusFixture::Build(corpus_options);
  EXPECT_TRUE(fixture.ok());

  QueryWorkloadOptions workload_options;
  workload_options.num_queries = 30;
  workload_options.seed = 9;
  workload_options.keyword_noise.abbreviation_prob = 0.3;
  std::vector<WorkloadQuery> workload =
      GenerateQueryWorkload(workload_options);

  SearchEngine engine(fixture->repository.get(), &fixture->index());

  PipelineQuality q;
  SearchEngineOptions coarse;
  coarse.enable_matching = false;
  q.coarse_only = *EvaluateEngine(engine, *fixture, workload, coarse);

  SearchEngineOptions matching;
  matching.enable_tightness = false;
  q.with_matching = *EvaluateEngine(engine, *fixture, workload, matching);

  SearchEngineOptions full;
  q.full = *EvaluateEngine(engine, *fixture, workload, full);
  return q;
}

TEST(IntegrationTest, PipelineStagesImproveQuality) {
  PipelineQuality q = MeasurePipelineStages();
  // The full pipeline must not lose to TF/IDF alone on noisy corpora --
  // the paper's core claim. (Loose margins: this is a direction check,
  // not a golden number.)
  EXPECT_GE(q.full.ndcg_at_10 + 0.02, q.coarse_only.ndcg_at_10)
      << "full=" << FormatQuality(q.full)
      << " coarse=" << FormatQuality(q.coarse_only);
  EXPECT_GE(q.with_matching.mrr + 0.05, q.coarse_only.mrr);
  EXPECT_GT(q.full.mrr, 0.4);
}

TEST(IntegrationTest, MetaLearnedWeightsDoNotHurt) {
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 150;
  corpus_options.seed = 31;
  auto fixture = CorpusFixture::Build(corpus_options);
  ASSERT_TRUE(fixture.ok());

  QueryWorkloadOptions workload_options;
  workload_options.num_queries = 20;
  std::vector<WorkloadQuery> workload =
      GenerateQueryWorkload(workload_options);

  // Uniform ensemble.
  SearchEngine uniform(fixture->repository.get(), &fixture->index());
  QualitySummary uniform_quality =
      *EvaluateEngine(uniform, *fixture, workload);

  // Meta-learned ensemble (trained on simulated search histories).
  MatcherEnsemble trained_ensemble = MatcherEnsemble::Default();
  SearchHistoryOptions history_options;
  history_options.num_records = 400;
  auto records = SimulateSearchHistory(trained_ensemble, history_options);
  auto model = TrainLogisticModel(records);
  ASSERT_TRUE(model.ok());
  trained_ensemble.SetWeights(model->NormalizedWeights());
  SearchEngine trained(fixture->repository.get(), &fixture->index(),
                       std::move(trained_ensemble));
  QualitySummary trained_quality =
      *EvaluateEngine(trained, *fixture, workload);

  EXPECT_GE(trained_quality.mrr + 0.1, uniform_quality.mrr)
      << "trained=" << FormatQuality(trained_quality)
      << " uniform=" << FormatQuality(uniform_quality);
}

TEST(IntegrationTest, XsdAndDdlFragmentsAgreeOnIntent) {
  // The same logical fragment expressed as DDL and as XSD should retrieve
  // overlapping top results.
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 200;
  corpus_options.seed = 60;
  auto fixture = CorpusFixture::Build(corpus_options);
  ASSERT_TRUE(fixture.ok());
  SchemrService service(fixture->repository.get(), &fixture->index());

  SearchRequest ddl_request;
  ddl_request.keywords = "";
  ddl_request.fragment =
      "CREATE TABLE patient (height DOUBLE, gender VARCHAR(8), "
      "date_of_birth DATE);";
  SearchRequest xsd_request;
  xsd_request.fragment = R"xml(
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="patient">
    <xs:complexType><xs:sequence>
      <xs:element name="height" type="xs:double"/>
      <xs:element name="gender" type="xs:string"/>
      <xs:element name="date_of_birth" type="xs:date"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>)xml";

  auto ddl_results = service.Search(ddl_request);
  auto xsd_results = service.Search(xsd_request);
  ASSERT_TRUE(ddl_results.ok()) << ddl_results.status();
  ASSERT_TRUE(xsd_results.ok()) << xsd_results.status();
  ASSERT_GE(ddl_results->size(), 5u);
  ASSERT_GE(xsd_results->size(), 5u);
  // Top-5 overlap of at least 3.
  std::set<SchemaId> ddl_top, xsd_top;
  for (size_t i = 0; i < 5; ++i) {
    ddl_top.insert((*ddl_results)[i].schema_id);
    xsd_top.insert((*xsd_results)[i].schema_id);
  }
  size_t overlap = 0;
  for (SchemaId id : ddl_top) overlap += xsd_top.count(id);
  EXPECT_GE(overlap, 3u);
}

}  // namespace
}  // namespace schemr
