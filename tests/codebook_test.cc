// Tests for the codebook (semantic types and units) and its ensemble
// matcher, plus result pagination.

#include <gtest/gtest.h>

#include "index/indexer.h"
#include "core/search_engine.h"
#include "match/codebook.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"

namespace schemr {
namespace {

Element Attr(const std::string& name, DataType type = DataType::kString,
             bool pk = false) {
  Element e;
  e.name = name;
  e.kind = ElementKind::kAttribute;
  e.type = type;
  e.primary_key = pk;
  return e;
}

// --- classification -----------------------------------------------------------

TEST(CodebookTest, UnitSuffixesClassifyAndRecordUnit) {
  const Codebook& codebook = Codebook::Default();
  CodebookEntry height = codebook.Classify(Attr("height_cm", DataType::kDouble));
  EXPECT_EQ(height.semantic, SemanticType::kLength);
  EXPECT_EQ(height.unit, "cm");
  EXPECT_GT(height.confidence, 0.9);

  CodebookEntry weight = codebook.Classify(Attr("weightKg", DataType::kDouble));
  EXPECT_EQ(weight.semantic, SemanticType::kMass);
  EXPECT_EQ(weight.unit, "kg");

  CodebookEntry price = codebook.Classify(Attr("price_usd", DataType::kDecimal));
  EXPECT_EQ(price.semantic, SemanticType::kMoney);
  EXPECT_EQ(price.unit, "usd");

  CodebookEntry pct = codebook.Classify(Attr("adherence_percent"));
  EXPECT_EQ(pct.semantic, SemanticType::kPercentage);
}

TEST(CodebookTest, GeographicAndContactKeywords) {
  const Codebook& codebook = Codebook::Default();
  EXPECT_EQ(codebook.Classify(Attr("latitude", DataType::kDouble)).semantic,
            SemanticType::kGeoLatitude);
  EXPECT_EQ(codebook.Classify(Attr("lat", DataType::kDouble)).semantic,
            SemanticType::kGeoLatitude);
  EXPECT_EQ(codebook.Classify(Attr("lng", DataType::kDouble)).semantic,
            SemanticType::kGeoLongitude);
  EXPECT_EQ(codebook.Classify(Attr("contact_email")).semantic,
            SemanticType::kEmail);
  EXPECT_EQ(codebook.Classify(Attr("phone_number")).semantic,
            SemanticType::kPhone);  // "number" yields identifier? no: phone first
  EXPECT_EQ(codebook.Classify(Attr("website")).semantic, SemanticType::kUrl);
}

TEST(CodebookTest, TemporalByDeclaredTypeAndName) {
  const Codebook& codebook = Codebook::Default();
  EXPECT_EQ(codebook.Classify(Attr("anything", DataType::kDate)).semantic,
            SemanticType::kDate);
  EXPECT_EQ(codebook.Classify(Attr("x", DataType::kTime)).semantic,
            SemanticType::kTime);
  EXPECT_EQ(codebook.Classify(Attr("x", DataType::kDateTime)).semantic,
            SemanticType::kDateTime);
  // String-typed but date-named.
  EXPECT_EQ(codebook.Classify(Attr("visit_date")).semantic,
            SemanticType::kDate);
  EXPECT_EQ(codebook.Classify(Attr("dob")).semantic, SemanticType::kDate);
}

TEST(CodebookTest, IdentifiersAndNames) {
  const Codebook& codebook = Codebook::Default();
  EXPECT_EQ(codebook.Classify(Attr("patient_id", DataType::kInt64)).semantic,
            SemanticType::kIdentifier);
  EXPECT_EQ(
      codebook.Classify(Attr("row", DataType::kInt64, /*pk=*/true)).semantic,
      SemanticType::kIdentifier);
  EXPECT_EQ(codebook.Classify(Attr("isbn")).semantic,
            SemanticType::kIdentifier);
  EXPECT_EQ(codebook.Classify(Attr("first_name")).semantic,
            SemanticType::kPersonName);
  EXPECT_EQ(codebook.Classify(Attr("surname")).semantic,
            SemanticType::kPersonName);
}

TEST(CodebookTest, UnknownsAndEntities) {
  const Codebook& codebook = Codebook::Default();
  EXPECT_EQ(codebook.Classify(Attr("flavor")).semantic,
            SemanticType::kUnknown);
  EXPECT_DOUBLE_EQ(codebook.Classify(Attr("flavor")).confidence, 0.0);
  Element entity;
  entity.name = "latitude";  // entities are never classified
  entity.kind = ElementKind::kEntity;
  EXPECT_EQ(codebook.Classify(entity).semantic, SemanticType::kUnknown);
}

TEST(CodebookTest, AnnotateSchemaSkipsUnknowns) {
  Schema schema = SchemaBuilder("site")
                      .Entity("station")
                      .Attribute("station_id", DataType::kInt64)
                      .PrimaryKey()
                      .Attribute("latitude", DataType::kDouble)
                      .Attribute("flavor")
                      .Build();
  std::vector<AnnotatedElement> notes =
      Codebook::Default().AnnotateSchema(schema);
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_EQ(notes[0].entry.semantic, SemanticType::kIdentifier);
  EXPECT_EQ(notes[1].entry.semantic, SemanticType::kGeoLatitude);
}

TEST(CodebookTest, SemanticTypeNamesAreStable) {
  EXPECT_STREQ(SemanticTypeName(SemanticType::kGeoLatitude), "latitude");
  EXPECT_STREQ(SemanticTypeName(SemanticType::kMoney), "money");
  EXPECT_STREQ(SemanticTypeName(SemanticType::kUnknown), "unknown");
}

// --- matcher --------------------------------------------------------------------

TEST(CodebookMatcherTest, EntrySimilarityRules) {
  CodebookEntry lat{SemanticType::kGeoLatitude, "", 0.9};
  CodebookEntry lat2{SemanticType::kGeoLatitude, "", 0.7};
  CodebookEntry lon{SemanticType::kGeoLongitude, "", 0.9};
  CodebookEntry unknown{};
  EXPECT_DOUBLE_EQ(CodebookMatcher::EntrySimilarity(lat, lat2), 0.7);
  EXPECT_DOUBLE_EQ(CodebookMatcher::EntrySimilarity(lat, lon), 0.0);
  EXPECT_DOUBLE_EQ(CodebookMatcher::EntrySimilarity(lat, unknown), 0.3);

  CodebookEntry cm{SemanticType::kLength, "cm", 0.95};
  CodebookEntry inches{SemanticType::kLength, "inches", 0.95};
  EXPECT_NEAR(CodebookMatcher::EntrySimilarity(cm, inches), 0.95 * 0.85,
              1e-12);
  EXPECT_DOUBLE_EQ(CodebookMatcher::EntrySimilarity(cm, cm), 0.95);
}

TEST(CodebookMatcherTest, DisambiguatesDivergentNames) {
  // "y_coordinate"? No -- a clearer case: query "height_cm" matches
  // candidate "stature_mm" (same semantic, unit differs) above candidate
  // "height_year"... use realistic pairs: lat/latitude vs lon/longitude.
  Schema query = SchemaBuilder("q")
                     .Entity("site")
                     .Attribute("lat", DataType::kDouble)
                     .Build();
  Schema candidate = SchemaBuilder("c")
                         .Entity("station")
                         .Attribute("latitude", DataType::kDouble)
                         .Attribute("longitude", DataType::kDouble)
                         .Build();
  CodebookMatcher matcher;
  SimilarityMatrix m = matcher.Match(query, candidate);
  auto q_lat = *query.FindByName("lat");
  auto c_lat = *candidate.FindByName("latitude");
  auto c_lon = *candidate.FindByName("longitude");
  EXPECT_GT(m.at(q_lat, c_lat), 0.5);
  EXPECT_DOUBLE_EQ(m.at(q_lat, c_lon), 0.0);  // conflicting semantics
}

// --- pagination ------------------------------------------------------------------

TEST(SearchEnginePagingTest, OffsetWalksTheRanking) {
  auto repo = SchemaRepository::OpenInMemory();
  for (int i = 0; i < 6; ++i) {
    (void)*repo->Insert(SchemaBuilder("patient_data_" + std::to_string(i))
                            .Entity("patient")
                            .Attribute("height")
                            .Build());
  }
  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  SearchEngine engine(repo.get(), &indexer.index());

  SearchEngineOptions all;
  all.top_k = 6;
  auto full = engine.SearchKeywords("patient height", all);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), 6u);

  SearchEngineOptions page2;
  page2.top_k = 2;
  page2.offset = 2;
  auto page = engine.SearchKeywords("patient height", page2);
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->size(), 2u);
  EXPECT_EQ((*page)[0].schema_id, (*full)[2].schema_id);
  EXPECT_EQ((*page)[1].schema_id, (*full)[3].schema_id);

  SearchEngineOptions beyond;
  beyond.offset = 100;
  auto empty = engine.SearchKeywords("patient height", beyond);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

}  // namespace
}  // namespace schemr
