// Tests for the observability subsystem: registry semantics, percentile
// math, exposition golden strings, span nesting, the log-sink bridge, and
// the lock-free increment path under threads.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/log_bridge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace schemr {
namespace {

TEST(MetricsTest, CounterSemantics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total", "a counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same name returns the same object.
  EXPECT_EQ(registry.GetCounter("c_total"), c);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsTest, GaugeSemantics) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(7.5);
  EXPECT_DOUBLE_EQ(g->Value(), 7.5);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 5.0);
  registry.Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // bucket 0
  h.Observe(0.1);    // le=0.1 is inclusive → bucket 0
  h.Observe(0.5);    // bucket 1
  h.Observe(100.0);  // +Inf bucket
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 100.65);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 0u);
  EXPECT_EQ(snap.buckets[3], 1u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(MetricsTest, PercentileMath) {
  Histogram h({1.0, 2.0, 4.0});
  // 100 observations uniformly in (0, 1]: all land in the first bucket.
  for (int i = 1; i <= 100; ++i) h.Observe(i / 100.0);
  HistogramSnapshot snap = h.Snapshot();
  // Interpolation within [0, 1]: p50 ≈ 0.5, p99 ≈ 0.99.
  EXPECT_NEAR(snap.Quantile(0.50), 0.5, 0.02);
  EXPECT_NEAR(snap.Quantile(0.99), 0.99, 0.02);

  Histogram spread({1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) spread.Observe(0.5);  // first bucket
  for (int i = 0; i < 50; ++i) spread.Observe(3.0);  // third bucket
  HistogramSnapshot s2 = spread.Snapshot();
  EXPECT_LE(s2.Quantile(0.25), 1.0);
  EXPECT_GT(s2.Quantile(0.75), 2.0);
  EXPECT_LE(s2.Quantile(0.75), 4.0);

  // Empty histogram and clamping.
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
  EXPECT_GE(snap.Quantile(2.0), snap.Quantile(1.0));
}

TEST(MetricsTest, CollectIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zz_total");
  registry.GetGauge("aa");
  registry.GetHistogram("mm_seconds");
  auto snaps = registry.Collect();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "aa");
  EXPECT_EQ(snaps[1].name, "mm_seconds");
  EXPECT_EQ(snaps[2].name, "zz_total");
}

TEST(ExpositionTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "Total requests.")->Increment(3);
  registry.GetGauge("pool_size")->Set(12);
  Histogram* h = registry.GetHistogram("latency_seconds", "Latency.",
                                       std::vector<double>{0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);

  const char* expected =
      "# HELP latency_seconds Latency.\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{le=\"0.1\"} 1\n"
      "latency_seconds_bucket{le=\"1\"} 2\n"
      "latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "latency_seconds_sum 5.55\n"
      "latency_seconds_count 3\n"
      "# TYPE pool_size gauge\n"
      "pool_size 12\n"
      "# HELP requests_total Total requests.\n"
      "# TYPE requests_total counter\n"
      "requests_total 3\n";
  EXPECT_EQ(ToPrometheusText(registry), expected);
}

TEST(ExpositionTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(2);
  registry.GetGauge("pool_size")->Set(1.5);
  registry.GetHistogram("lat_seconds", "", std::vector<double>{1.0})
      ->Observe(0.5);

  const char* expected =
      "{\n"
      "  \"lat_seconds\": {\"count\": 1, \"sum\": 0.5, \"p50\": 0.5, "
      "\"p95\": 0.95, \"p99\": 0.99, \"buckets\": "
      "[{\"le\": 1, \"count\": 1}, {\"le\": \"+Inf\", \"count\": 0}]},\n"
      "  \"pool_size\": 1.5,\n"
      "  \"requests_total\": 2\n"
      "}\n";
  EXPECT_EQ(ToJson(registry), expected);
}

TEST(TraceTest, SpanNesting) {
  SearchTrace trace;
  {
    TraceSpan root(&trace, "search");
    {
      TraceSpan child(&trace, "phase1");
      child.Annotate("pool_size", static_cast<uint64_t>(50));
    }
    trace.AddSpan("phase2", 0.25);
    size_t grand = trace.AddSpan("matcher:name", 0.1, 1);
    (void)grand;
  }
  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "search");
  EXPECT_EQ(spans[0].parent, SearchTrace::kNoParent);
  EXPECT_EQ(spans[1].name, "phase1");
  EXPECT_EQ(spans[1].parent, 0u);
  ASSERT_EQ(spans[1].annotations.size(), 1u);
  EXPECT_EQ(spans[1].annotations[0].key, "pool_size");
  EXPECT_EQ(spans[1].annotations[0].value, "50");
  EXPECT_EQ(spans[2].parent, 0u);  // added while root still open
  EXPECT_DOUBLE_EQ(spans[2].seconds, 0.25);
  EXPECT_EQ(spans[3].parent, 1u);  // explicit parent
  // The RAII spans measured real elapsed time.
  EXPECT_GE(spans[0].seconds, spans[1].seconds);

  EXPECT_EQ(trace.ChildrenOf(SearchTrace::kNoParent),
            (std::vector<size_t>{0}));
  EXPECT_EQ(trace.ChildrenOf(0), (std::vector<size_t>{1, 2}));

  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("search"), std::string::npos);
  EXPECT_NE(rendered.find("  phase1"), std::string::npos);
  EXPECT_NE(rendered.find("pool_size=50"), std::string::npos);
}

TEST(TraceTest, NullTraceIsNoop) {
  TraceSpan span(nullptr, "ignored");
  span.Annotate("key", static_cast<uint64_t>(1));
  span.End();  // must not crash
}

TEST(MetricsTest, ConcurrentCounterIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits_total");
  Histogram* hist = registry.GetHistogram("obs_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(1e-4);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(snap.sum, kThreads * kPerThread * 1e-4, 1e-6 * kThreads *
                                                          kPerThread);
}

TEST(ScopedTimerTest, ReportsIntoHistogramOnDestruction) {
  Histogram h(Histogram::DefaultLatencyBounds());
  {
    ScopedTimer<Histogram> timer(&h);
  }
  EXPECT_EQ(h.Count(), 1u);
  {
    ScopedTimer<Histogram> timer(&h);
    timer.Stop();
    timer.Stop();  // idempotent
  }
  EXPECT_EQ(h.Count(), 2u);
  { ScopedTimer<Histogram> null_timer(nullptr); }
  EXPECT_EQ(h.Count(), 2u);
}

TEST(LogBridgeTest, CountsWarningsIntoGlobalRegistry) {
  InstallMetricsLogSink();
  Counter* warnings = MetricsRegistry::Global().GetCounter(
      "schemr_log_warnings_total");
  uint64_t before = warnings->Value();
  SCHEMR_LOG(kWarning) << "bridge test warning";
  EXPECT_EQ(warnings->Value(), before + 1);
  SetLogSink(nullptr);  // restore stderr default for other tests
}

}  // namespace
}  // namespace schemr
