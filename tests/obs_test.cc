// Tests for the observability subsystem: registry semantics, percentile
// math, exposition golden strings and Prometheus conformance checking,
// span nesting, the log-sink bridge, the lock-free increment path under
// threads, windowed telemetry (snapshot ring + window math), and
// tail-based trace retention.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/log_bridge.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace schemr {
namespace {

TEST(MetricsTest, CounterSemantics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c_total", "a counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same name returns the same object.
  EXPECT_EQ(registry.GetCounter("c_total"), c);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsTest, GaugeSemantics) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("g");
  g->Set(7.5);
  EXPECT_DOUBLE_EQ(g->Value(), 7.5);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 5.0);
  registry.Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // bucket 0
  h.Observe(0.1);    // le=0.1 is inclusive → bucket 0
  h.Observe(0.5);    // bucket 1
  h.Observe(100.0);  // +Inf bucket
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 100.65);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 0u);
  EXPECT_EQ(snap.buckets[3], 1u);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(MetricsTest, PercentileMath) {
  Histogram h({1.0, 2.0, 4.0});
  // 100 observations uniformly in (0, 1]: all land in the first bucket.
  for (int i = 1; i <= 100; ++i) h.Observe(i / 100.0);
  HistogramSnapshot snap = h.Snapshot();
  // Interpolation within [0, 1]: p50 ≈ 0.5, p99 ≈ 0.99.
  EXPECT_NEAR(snap.Quantile(0.50), 0.5, 0.02);
  EXPECT_NEAR(snap.Quantile(0.99), 0.99, 0.02);

  Histogram spread({1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) spread.Observe(0.5);  // first bucket
  for (int i = 0; i < 50; ++i) spread.Observe(3.0);  // third bucket
  HistogramSnapshot s2 = spread.Snapshot();
  EXPECT_LE(s2.Quantile(0.25), 1.0);
  EXPECT_GT(s2.Quantile(0.75), 2.0);
  EXPECT_LE(s2.Quantile(0.75), 4.0);

  // Empty histogram and clamping.
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);
  EXPECT_GE(snap.Quantile(2.0), snap.Quantile(1.0));
}

TEST(MetricsTest, CollectIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zz_total");
  registry.GetGauge("aa");
  registry.GetHistogram("mm_seconds");
  auto snaps = registry.Collect();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].name, "aa");
  EXPECT_EQ(snaps[1].name, "mm_seconds");
  EXPECT_EQ(snaps[2].name, "zz_total");
}

TEST(ExpositionTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "Total requests.")->Increment(3);
  registry.GetGauge("pool_size")->Set(12);
  Histogram* h = registry.GetHistogram("latency_seconds", "Latency.",
                                       std::vector<double>{0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);

  const char* expected =
      "# HELP latency_seconds Latency.\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{le=\"0.1\"} 1\n"
      "latency_seconds_bucket{le=\"1\"} 2\n"
      "latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "latency_seconds_sum 5.55\n"
      "latency_seconds_count 3\n"
      "# TYPE pool_size gauge\n"
      "pool_size 12\n"
      "# HELP requests_total Total requests.\n"
      "# TYPE requests_total counter\n"
      "requests_total 3\n";
  EXPECT_EQ(ToPrometheusText(registry), expected);
}

TEST(ExpositionTest, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(2);
  registry.GetGauge("pool_size")->Set(1.5);
  registry.GetHistogram("lat_seconds", "", std::vector<double>{1.0})
      ->Observe(0.5);

  const char* expected =
      "{\n"
      "  \"lat_seconds\": {\"count\": 1, \"sum\": 0.5, \"p50\": 0.5, "
      "\"p95\": 0.95, \"p99\": 0.99, \"buckets\": "
      "[{\"le\": 1, \"count\": 1}, {\"le\": \"+Inf\", \"count\": 0}]},\n"
      "  \"pool_size\": 1.5,\n"
      "  \"requests_total\": 2\n"
      "}\n";
  EXPECT_EQ(ToJson(registry), expected);
}

TEST(TraceTest, SpanNesting) {
  SearchTrace trace;
  {
    TraceSpan root(&trace, "search");
    {
      TraceSpan child(&trace, "phase1");
      child.Annotate("pool_size", static_cast<uint64_t>(50));
    }
    trace.AddSpan("phase2", 0.25);
    size_t grand = trace.AddSpan("matcher:name", 0.1, 1);
    (void)grand;
  }
  const auto& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "search");
  EXPECT_EQ(spans[0].parent, SearchTrace::kNoParent);
  EXPECT_EQ(spans[1].name, "phase1");
  EXPECT_EQ(spans[1].parent, 0u);
  ASSERT_EQ(spans[1].annotations.size(), 1u);
  EXPECT_EQ(spans[1].annotations[0].key, "pool_size");
  EXPECT_EQ(spans[1].annotations[0].value, "50");
  EXPECT_EQ(spans[2].parent, 0u);  // added while root still open
  EXPECT_DOUBLE_EQ(spans[2].seconds, 0.25);
  EXPECT_EQ(spans[3].parent, 1u);  // explicit parent
  // The RAII spans measured real elapsed time.
  EXPECT_GE(spans[0].seconds, spans[1].seconds);

  EXPECT_EQ(trace.ChildrenOf(SearchTrace::kNoParent),
            (std::vector<size_t>{0}));
  EXPECT_EQ(trace.ChildrenOf(0), (std::vector<size_t>{1, 2}));

  std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("search"), std::string::npos);
  EXPECT_NE(rendered.find("  phase1"), std::string::npos);
  EXPECT_NE(rendered.find("pool_size=50"), std::string::npos);
}

TEST(TraceTest, NullTraceIsNoop) {
  TraceSpan span(nullptr, "ignored");
  span.Annotate("key", static_cast<uint64_t>(1));
  span.End();  // must not crash
}

TEST(MetricsTest, ConcurrentCounterIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits_total");
  Histogram* hist = registry.GetHistogram("obs_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(1e-4);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(snap.sum, kThreads * kPerThread * 1e-4, 1e-6 * kThreads *
                                                          kPerThread);
}

TEST(ScopedTimerTest, ReportsIntoHistogramOnDestruction) {
  Histogram h(Histogram::DefaultLatencyBounds());
  {
    ScopedTimer<Histogram> timer(&h);
  }
  EXPECT_EQ(h.Count(), 1u);
  {
    ScopedTimer<Histogram> timer(&h);
    timer.Stop();
    timer.Stop();  // idempotent
  }
  EXPECT_EQ(h.Count(), 2u);
  { ScopedTimer<Histogram> null_timer(nullptr); }
  EXPECT_EQ(h.Count(), 2u);
}

TEST(LogBridgeTest, CountsWarningsIntoGlobalRegistry) {
  InstallMetricsLogSink();
  Counter* warnings = MetricsRegistry::Global().GetCounter(
      "schemr_log_warnings_total");
  uint64_t before = warnings->Value();
  SCHEMR_LOG(kWarning) << "bridge test warning";
  EXPECT_EQ(warnings->Value(), before + 1);
  SetLogSink(nullptr);  // restore stderr default for other tests
}

// --- Prometheus exposition conformance (DESIGN.md §12) ----------------------

TEST(ConformanceTest, RealExpositionOutputPasses) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "Total requests.")->Increment(3);
  registry.GetGauge("pool_size")->Set(12);
  Histogram* h = registry.GetHistogram("latency_seconds", "Latency.",
                                       std::vector<double>{0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);
  Status status = CheckPrometheusText(ToPrometheusText(registry));
  EXPECT_TRUE(status.ok()) << status;
}

TEST(ConformanceTest, GlobalRegistryExpositionPasses) {
  // The registry every subsystem reports into must always render a body a
  // scraper accepts, whatever metrics happen to be registered by the time
  // this test runs.
  Status status =
      CheckPrometheusText(ToPrometheusText(MetricsRegistry::Global()));
  EXPECT_TRUE(status.ok()) << status;
}

TEST(ConformanceTest, EmptyBodyPasses) {
  EXPECT_TRUE(CheckPrometheusText("").ok());
  EXPECT_TRUE(CheckPrometheusText("\n\n").ok());
}

TEST(ConformanceTest, SampleWithoutTypeFails) {
  Status status = CheckPrometheusText("orphan_total 3\n");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("TYPE"), std::string::npos) << status;
}

TEST(ConformanceTest, DuplicateTypeFails) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE a counter\n"
                                   "a 1\n"
                                   "# TYPE a counter\n"
                                   "a 2\n")
                   .ok());
}

TEST(ConformanceTest, BadMetricNameFails) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE 9lives counter\n"
                                   "9lives 1\n")
                   .ok());
}

TEST(ConformanceTest, UnknownTypeKeywordFails) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE a thingy\na 1\n").ok());
}

TEST(ConformanceTest, CounterMustBeFiniteNonNegativeInteger) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE a counter\na -1\n").ok());
  EXPECT_FALSE(CheckPrometheusText("# TYPE a counter\na 1.5\n").ok());
  EXPECT_FALSE(CheckPrometheusText("# TYPE a counter\na +Inf\n").ok());
  EXPECT_FALSE(CheckPrometheusText("# TYPE a counter\na NaN\n").ok());
  EXPECT_TRUE(CheckPrometheusText("# TYPE a counter\na 7\n").ok());
}

TEST(ConformanceTest, GaugeMayBeNegativeOrSpecial) {
  EXPECT_TRUE(CheckPrometheusText("# TYPE g gauge\ng -1.5\n").ok());
  EXPECT_TRUE(CheckPrometheusText("# TYPE g gauge\ng +Inf\n").ok());
  EXPECT_TRUE(CheckPrometheusText("# TYPE g gauge\ng NaN\n").ok());
}

TEST(ConformanceTest, UnparsableValueFails) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE g gauge\ng twelve\n").ok());
}

TEST(ConformanceTest, LabelRules) {
  // Well-formed labels, escapes, and a trailing comma are all legal.
  EXPECT_TRUE(CheckPrometheusText("# TYPE a counter\n"
                                  "a{x=\"y\",z=\"a\\\\b\\\"c\\nd\",} 1\n")
                  .ok());
  // Unquoted label value.
  EXPECT_FALSE(CheckPrometheusText("# TYPE a counter\na{x=y} 1\n").ok());
  // Unsupported escape sequence.
  EXPECT_FALSE(
      CheckPrometheusText("# TYPE a counter\na{x=\"\\t\"} 1\n").ok());
  // Label name may not contain a colon (metric names may).
  EXPECT_FALSE(
      CheckPrometheusText("# TYPE a counter\na{x:y=\"v\"} 1\n").ok());
}

TEST(ConformanceTest, HelpEscapeRules) {
  EXPECT_TRUE(CheckPrometheusText("# HELP a back\\\\slash and \\n line\n"
                                  "# TYPE a counter\n"
                                  "a 1\n")
                  .ok());
  EXPECT_FALSE(CheckPrometheusText("# HELP a bad \\t escape\n"
                                   "# TYPE a counter\n"
                                   "a 1\n")
                   .ok());
}

TEST(ConformanceTest, HistogramBucketsMustBeCumulative) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE h histogram\n"
                                   "h_bucket{le=\"0.1\"} 5\n"
                                   "h_bucket{le=\"1\"} 3\n"
                                   "h_bucket{le=\"+Inf\"} 5\n"
                                   "h_sum 1\n"
                                   "h_count 5\n")
                   .ok());
}

TEST(ConformanceTest, HistogramMustEndInInfBucket) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE h histogram\n"
                                   "h_bucket{le=\"0.1\"} 1\n"
                                   "h_bucket{le=\"1\"} 2\n"
                                   "h_sum 1\n"
                                   "h_count 2\n")
                   .ok());
}

TEST(ConformanceTest, HistogramCountMustMatchInfBucket) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE h histogram\n"
                                   "h_bucket{le=\"+Inf\"} 3\n"
                                   "h_sum 1\n"
                                   "h_count 4\n")
                   .ok());
}

TEST(ConformanceTest, HistogramMustCarrySum) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE h histogram\n"
                                   "h_bucket{le=\"+Inf\"} 1\n"
                                   "h_count 1\n")
                   .ok());
}

TEST(ConformanceTest, HistogramBucketRequiresLeLabel) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE h histogram\n"
                                   "h_bucket 1\n"
                                   "h_sum 1\n"
                                   "h_count 1\n")
                   .ok());
}

TEST(ConformanceTest, TypeAfterSamplesFails) {
  EXPECT_FALSE(CheckPrometheusText("# TYPE a counter\n"
                                   "a 1\n"
                                   "# TYPE b counter\n"
                                   "a 2\n"
                                   "# TYPE a gauge\n")
                   .ok());
}

TEST(ConformanceTest, ErrorNamesOffendingLine) {
  Status status = CheckPrometheusText("# TYPE good counter\n"
                                      "good 1\n"
                                      "orphan 2\n");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 3"), std::string::npos) << status;
}

// --- windowed telemetry (obs/telemetry.h) -----------------------------------

std::shared_ptr<const MetricsSample> MakeSample(const MetricsRegistry& registry,
                                                double when) {
  auto sample = std::make_shared<MetricsSample>();
  sample->monotonic_seconds = when;
  sample->metrics = registry.Collect();
  return sample;
}

TEST(TelemetryRingTest, NewestAndSizeTrackPushes) {
  MetricsSnapshotRing ring(4);
  EXPECT_EQ(ring.Newest(), nullptr);
  EXPECT_EQ(ring.size(), 0u);

  MetricsRegistry registry;
  for (int i = 1; i <= 6; ++i) {
    ring.Push(MakeSample(registry, i));
    EXPECT_EQ(ring.Newest()->monotonic_seconds, i);
  }
  // Capacity 4: pushes 5 and 6 evicted 1 and 2.
  EXPECT_EQ(ring.size(), 4u);
}

TEST(TelemetryRingTest, WindowAnchorPicksNewestOldEnoughSample) {
  MetricsSnapshotRing ring(16);
  MetricsRegistry registry;
  EXPECT_EQ(ring.WindowAnchor(1.0), nullptr);  // empty
  ring.Push(MakeSample(registry, 10.0));
  EXPECT_EQ(ring.WindowAnchor(1.0), nullptr);  // one sample: no window yet
  for (double t : {11.0, 12.0, 13.0, 14.0}) {
    ring.Push(MakeSample(registry, t));
  }
  // Newest is t=14; a 2s window wants the newest sample at age >= 2.
  auto anchor = ring.WindowAnchor(2.0);
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(anchor->monotonic_seconds, 12.0);
  // Asking for more history than retained falls back to the oldest.
  EXPECT_EQ(ring.WindowAnchor(100.0)->monotonic_seconds, 10.0);
}

TEST(TelemetryWindowTest, CounterDeltasBecomeRates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reqs_total");
  c->Increment(10);
  auto older = MakeSample(registry, 100.0);
  c->Increment(30);
  auto newer = MakeSample(registry, 110.0);

  WindowedView view = ComputeWindow(*older, *newer);
  EXPECT_DOUBLE_EQ(view.window_seconds, 10.0);
  const WindowedMetric* m = view.Find("reqs_total");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->rate_per_second, 3.0);  // 30 events / 10 s
}

TEST(TelemetryWindowTest, GaugeReportsNewestValue) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("depth");
  g->Set(5);
  auto older = MakeSample(registry, 0.0);
  g->Set(2);
  auto newer = MakeSample(registry, 1.0);
  WindowedView view = ComputeWindow(*older, *newer);
  const WindowedMetric* m = view.Find("depth");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->gauge_value, 2.0);
}

TEST(TelemetryWindowTest, HistogramDeltaPercentilesIgnoreOldObservations) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_seconds", "",
                                       std::vector<double>{0.01, 0.1, 1.0});
  // Old, slow traffic before the window.
  for (int i = 0; i < 100; ++i) h->Observe(0.5);
  auto older = MakeSample(registry, 0.0);
  // Fast traffic inside the window: lifetime percentiles would still be
  // dominated by the 0.5s observations; the window must not be.
  for (int i = 0; i < 100; ++i) h->Observe(0.005);
  auto newer = MakeSample(registry, 60.0);

  WindowedView view = ComputeWindow(*older, *newer);
  const WindowedMetric* m = view.Find("lat_seconds");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->delta_count, 100u);
  EXPECT_LE(m->p99, 0.01);  // every windowed observation is in bucket one
}

TEST(TelemetryWindowTest, ResetBetweenSamplesClampsToZero) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reqs_total");
  c->Increment(50);
  auto older = MakeSample(registry, 0.0);
  registry.Reset();
  c->Increment(2);
  auto newer = MakeSample(registry, 10.0);
  WindowedView view = ComputeWindow(*older, *newer);
  const WindowedMetric* m = view.Find("reqs_total");
  ASSERT_NE(m, nullptr);
  // Delta is 2 - 50 < 0: clamp, don't report a negative rate.
  EXPECT_DOUBLE_EQ(m->rate_per_second, 0.0);
}

TEST(TelemetryWindowTest, MetricRegisteredMidWindowIsRatedOverFullWindow) {
  MetricsRegistry registry;
  auto older = MakeSample(registry, 0.0);
  registry.GetCounter("late_total")->Increment(20);
  auto newer = MakeSample(registry, 10.0);
  WindowedView view = ComputeWindow(*older, *newer);
  const WindowedMetric* m = view.Find("late_total");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->rate_per_second, 2.0);
}

TEST(TelemetrySamplerTest, SampleNowFeedsWindow) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reqs_total");
  TelemetryOptions options;
  options.sample_interval_seconds = 3600;  // never fires on its own
  TelemetrySampler sampler(options, &registry);

  EXPECT_EQ(sampler.Window(60).window_seconds, 0.0);  // no samples yet
  c->Increment(5);
  sampler.SampleNow();
  EXPECT_EQ(sampler.Window(60).window_seconds, 0.0);  // one sample: no window
  c->Increment(5);
  auto newest = sampler.SampleNow();
  ASSERT_NE(newest, nullptr);
  EXPECT_EQ(newest->Find("reqs_total")->counter_value, 10u);

  WindowedView view = sampler.Window(60);
  const WindowedMetric* m = view.Find("reqs_total");
  ASSERT_NE(m, nullptr);
  // The two samples are microseconds apart; just check the delta landed.
  EXPECT_GT(m->rate_per_second, 0.0);
  EXPECT_GE(sampler.UptimeSeconds(), 0.0);
}

TEST(TelemetrySamplerTest, StartStopIdempotent) {
  MetricsRegistry registry;
  TelemetryOptions options;
  options.sample_interval_seconds = 0.001;
  TelemetrySampler sampler(options, &registry);
  sampler.Start();
  sampler.Start();  // no-op
  // The background thread publishes a sample almost immediately.
  for (int i = 0; i < 1000 && sampler.Newest() == nullptr; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(sampler.Newest(), nullptr);
  sampler.Stop();
  sampler.Stop();  // no-op
}

// --- tail-based trace retention ---------------------------------------------

RetainedTrace MakeTrace(const std::string& outcome, double seconds,
                        bool sampled = false) {
  RetainedTrace trace;
  trace.timestamp_micros = 1700000000000000ull;
  trace.fingerprint = 0x1234;
  trace.outcome = outcome;
  trace.total_seconds = seconds;
  trace.sampled = sampled;
  if (sampled) trace.spans = "search total=1ms\n";
  return trace;
}

TEST(TraceRetentionTest, ShouldSampleIsDeterministicOneInN) {
  TraceRetentionOptions options;
  options.sample_every_n = 4;
  TraceRetention retention(options);
  int sampled = 0;
  for (int i = 0; i < 40; ++i) {
    if (retention.ShouldSample()) ++sampled;
  }
  EXPECT_EQ(sampled, 10);

  options.sample_every_n = 0;  // disabled
  TraceRetention off(options);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(off.ShouldSample());
}

TEST(TraceRetentionTest, ClassifiesByOutcomeAndLatency) {
  TraceRetentionOptions options;
  options.slow_threshold_seconds = 0.25;
  TraceRetention retention(options);
  retention.Retain(MakeTrace("ok", 0.001, /*sampled=*/true));
  retention.Retain(MakeTrace("ok", 0.5));             // slow
  retention.Retain(MakeTrace("degraded", 0.01));
  retention.Retain(MakeTrace("error", 0.01));
  retention.Retain(MakeTrace("shed_queue_full", 0.0));
  retention.Retain(MakeTrace("shed_deadline", 0.0));
  retention.Retain(MakeTrace("cancelled", 0.0));

  std::vector<RetainedTrace> all = retention.Snapshot();
  int counts[5] = {0, 0, 0, 0, 0};
  for (const auto& t : all) counts[static_cast<int>(t.category)]++;
  EXPECT_EQ(counts[static_cast<int>(TraceCategory::kRecent)], 1);
  EXPECT_EQ(counts[static_cast<int>(TraceCategory::kSlow)], 1);
  EXPECT_EQ(counts[static_cast<int>(TraceCategory::kDegraded)], 1);
  EXPECT_EQ(counts[static_cast<int>(TraceCategory::kError)], 1);
  EXPECT_EQ(counts[static_cast<int>(TraceCategory::kShed)], 3);
}

TEST(TraceRetentionTest, HealthyFastUntracedRequestsAreNotRetained) {
  TraceRetention retention;
  retention.Retain(MakeTrace("ok", 0.001, /*sampled=*/false));
  EXPECT_TRUE(retention.Snapshot().empty());
  TraceRetention::Stats stats = retention.GetStats();
  EXPECT_EQ(stats.offered, 1u);
  EXPECT_EQ(stats.retained, 0u);
}

TEST(TraceRetentionTest, SlowRingKeepsSlowestNotNewest) {
  TraceRetentionOptions options;
  options.ring_capacity = 3;
  options.slow_threshold_seconds = 0.1;
  TraceRetention retention(options);
  // Offer slow requests in an order where the newest are the fastest.
  for (double s : {0.9, 0.3, 0.5, 0.2, 0.15, 0.11}) {
    retention.Retain(MakeTrace("ok", s));
  }
  std::vector<RetainedTrace> all = retention.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  // Slowest-first, and the three slowest ever offered survive.
  EXPECT_DOUBLE_EQ(all[0].total_seconds, 0.9);
  EXPECT_DOUBLE_EQ(all[1].total_seconds, 0.5);
  EXPECT_DOUBLE_EQ(all[2].total_seconds, 0.3);
}

TEST(TraceRetentionTest, RingsAreBounded) {
  TraceRetentionOptions options;
  options.ring_capacity = 2;
  TraceRetention retention(options);
  for (int i = 0; i < 10; ++i) {
    retention.Retain(MakeTrace("error", 0.01));
  }
  EXPECT_EQ(retention.Snapshot().size(), 2u);
  TraceRetention::Stats stats = retention.GetStats();
  EXPECT_EQ(stats.offered, 10u);
  EXPECT_EQ(stats.retained, 10u);  // all entered; older ones were evicted
}

TEST(TraceRetentionTest, StatsCountSampled) {
  TraceRetention retention;
  retention.Retain(MakeTrace("ok", 0.001, /*sampled=*/true));
  retention.Retain(MakeTrace("error", 0.001, /*sampled=*/false));
  TraceRetention::Stats stats = retention.GetStats();
  EXPECT_EQ(stats.offered, 2u);
  EXPECT_EQ(stats.sampled, 1u);
  EXPECT_EQ(stats.retained, 2u);
}

TEST(TraceRetentionTest, ToJsonCarriesStatsAndTraces) {
  TraceRetention retention;
  RetainedTrace trace = MakeTrace("error", 0.02, /*sampled=*/true);
  trace.spans = "span \"with quotes\"\n";
  retention.Retain(std::move(trace));
  std::string json = retention.ToJson();
  EXPECT_NE(json.find("\"stats\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"traces\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"with quotes\\\""), std::string::npos) << json;
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  std::string out;
  AppendJsonEscaped(&out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
}

}  // namespace
}  // namespace schemr
