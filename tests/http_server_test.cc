// Hardened HTTP server tests (DESIGN.md §13): the pure request-head
// and response-head parsers under property-style fuzzing (truncated,
// byte-flipped, pipelined, oversized inputs; truncated status lines,
// oversized reason phrases, duplicate Retry-After), the timeout ladder
// (408 on header and body stalls), strict Content-Length validation,
// the connection cap's inline 503, graceful drain, the socket
// fault-injection sites, and the HttpCall retry contract (retry connect
// failures and 503+Retry-After, never an ambiguous mid-body failure).

#include "service/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "service/request_id.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace schemr {
namespace {

// --- raw-socket helpers -----------------------------------------------------

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string ReadAll(int fd) {
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

/// Sends `raw` verbatim, shutting down the write side (`half_close`)
/// or not, and returns everything the server answers.
std::string RawRequest(int port, const std::string& raw,
                       bool half_close = false) {
  int fd = ConnectTo(port);
  if (fd < 0) return "";
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  if (half_close) ::shutdown(fd, SHUT_WR);
  std::string response = ReadAll(fd);
  ::close(fd);
  return response;
}

std::unique_ptr<HttpServer> MakeEchoServer(HttpServerOptions options = {}) {
  auto server = std::make_unique<HttpServer>(std::move(options));
  server->Route("POST", "/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.body;
    return response;
  });
  server->Route("GET", "/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  return server;
}

// --- pure parser ------------------------------------------------------------

TEST(ParseRequestHeadTest, ParsesMethodPathQueryHeadersAndLength) {
  ParsedRequestHead parsed;
  const std::string raw =
      "POST /search?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type:  application/xml \r\n"
      "Content-Length: 5\r\n"
      "\r\nhello";
  ASSERT_EQ(ParseRequestHead(raw, 8192, 1 << 20, &parsed),
            HttpParseOutcome::kComplete);
  EXPECT_EQ(parsed.request.method, "POST");
  EXPECT_EQ(parsed.request.path, "/search");
  EXPECT_EQ(parsed.request.query, "x=1");
  EXPECT_EQ(parsed.content_length, 5u);
  EXPECT_EQ(parsed.head_bytes, raw.size() - 5);
  ASSERT_NE(parsed.request.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*parsed.request.FindHeader("content-type"), "application/xml");
}

TEST(ParseRequestHeadTest, IncompleteHeadWantsMoreUntilTheCap) {
  ParsedRequestHead parsed;
  EXPECT_EQ(ParseRequestHead("GET / HTTP/1.1\r\nHost: x\r\n", 8192, 0, &parsed),
            HttpParseOutcome::kNeedMore);
  // Same shape, but the cap is already reached: there will never be a
  // terminator within bounds.
  const std::string oversized = "GET /" + std::string(600, 'x');
  EXPECT_EQ(ParseRequestHead(oversized, 256, 0, &parsed),
            HttpParseOutcome::kHeadTooLarge);
}

TEST(ParseRequestHeadTest, ContentLengthIsStrict) {
  ParsedRequestHead parsed;
  auto outcome = [&parsed](const std::string& value) {
    const std::string raw =
        "POST /x HTTP/1.1\r\nContent-Length: " + value + "\r\n\r\n";
    return ParseRequestHead(raw, 8192, 1024, &parsed);
  };
  EXPECT_EQ(outcome("12"), HttpParseOutcome::kComplete);
  EXPECT_EQ(outcome("-5"), HttpParseOutcome::kBadRequest);    // signed
  EXPECT_EQ(outcome("+5"), HttpParseOutcome::kBadRequest);
  EXPECT_EQ(outcome("0x10"), HttpParseOutcome::kBadRequest);  // hex
  EXPECT_EQ(outcome(""), HttpParseOutcome::kBadRequest);      // empty
  EXPECT_EQ(outcome("99999999999999999999999"),
            HttpParseOutcome::kBodyTooLarge);  // overflow
  EXPECT_EQ(outcome("2048"), HttpParseOutcome::kBodyTooLarge);  // > cap
}

TEST(ParseRequestHeadTest, DisagreeingDuplicateContentLengthIsRefused) {
  ParsedRequestHead parsed;
  EXPECT_EQ(ParseRequestHead("POST /x HTTP/1.1\r\nContent-Length: 5\r\n"
                             "Content-Length: 6\r\n\r\n",
                             8192, 1024, &parsed),
            HttpParseOutcome::kBadRequest);
  // Agreeing duplicates are merely redundant.
  EXPECT_EQ(ParseRequestHead("POST /x HTTP/1.1\r\nContent-Length: 5\r\n"
                             "Content-Length: 5\r\n\r\n",
                             8192, 1024, &parsed),
            HttpParseOutcome::kComplete);
}

TEST(ParseRequestHeadTest, MalformedInputsAreBadRequests) {
  ParsedRequestHead parsed;
  for (const char* raw : {
           "nonsense\r\n\r\n",                // no method/target
           "GET  HTTP/1.1\r\n\r\n",           // empty target
           "GET /x SMTP/1.0\r\n\r\n",         // wrong protocol
           "GET relative HTTP/1.1\r\n\r\n",   // target not absolute
           "GET /x HTTP/1.1\r\nno-colon-line\r\n\r\n",
       }) {
    EXPECT_EQ(ParseRequestHead(raw, 8192, 1024, &parsed),
              HttpParseOutcome::kBadRequest)
        << raw;
  }
  EXPECT_EQ(ParseRequestHead("POST /x HTTP/1.1\r\nTransfer-Encoding: "
                             "chunked\r\n\r\n",
                             8192, 1024, &parsed),
            HttpParseOutcome::kUnsupported);
}

// Property-style fuzz (seeded like the other property tests): whatever
// bytes arrive, the parser never crashes, never claims to have consumed
// more than it was given, and always lands in a defined outcome.
class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, ArbitraryInputsNeverCrashOrOverread) {
  Rng rng(GetParam());
  const std::string valid =
      "POST /search?q=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 10\r\n"
      "X-Schemr-Deadline-Ms: 250\r\n\r\n0123456789";
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string input = valid;
    switch (rng.NextBelow(5)) {
      case 0:  // truncate
        input.resize(rng.NextBelow(input.size() + 1));
        break;
      case 1:  // flip bytes
        for (int flips = 0; flips < 4; ++flips) {
          const size_t at = rng.NextBelow(input.size());
          input[at] = static_cast<char>(rng.NextBelow(256));
        }
        break;
      case 2:  // pipeline a second request behind the first
        input += "GET /second HTTP/1.1\r\n\r\n";
        break;
      case 3:  // oversize
        input.insert(5, std::string(rng.NextBelow(16384), 'a'));
        break;
      case 4: {  // pure noise
        input.clear();
        const size_t size = rng.NextBelow(4096);
        input.reserve(size);
        for (size_t i = 0; i < size; ++i) {
          input.push_back(static_cast<char>(rng.NextBelow(256)));
        }
        break;
      }
    }
    ParsedRequestHead parsed;
    const HttpParseOutcome outcome =
        ParseRequestHead(input, 1024, 4096, &parsed);
    if (outcome == HttpParseOutcome::kComplete) {
      ASSERT_LE(parsed.head_bytes, input.size());
      ASSERT_LE(parsed.content_length, 4096u);
    }
    const int status = HttpStatusForOutcome(outcome);
    ASSERT_TRUE(status == 0 || status == 400 || status == 413 ||
                status == 431 || status == 501)
        << status;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1u, 7u, 42u, 2026u));

// --- pure response parser ---------------------------------------------------

TEST(ParseResponseHeadTest, ParsesStatusHeadersAndHeadBytes) {
  const std::string raw =
      "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\n"
      "Content-Length: 5\r\nX-Schemr-Shed: queue_full\r\n\r\nhello";
  ParsedResponseHead parsed;
  ASSERT_EQ(ParseResponseHead(raw, 8192, &parsed),
            HttpResponseOutcome::kComplete);
  EXPECT_EQ(parsed.status, 503);
  EXPECT_EQ(parsed.headers.at("retry-after"), "2");
  EXPECT_EQ(parsed.headers.at("content-length"), "5");
  EXPECT_EQ(parsed.headers.at("x-schemr-shed"), "queue_full");
  EXPECT_EQ(parsed.head_bytes, raw.size() - 5);
}

TEST(ParseResponseHeadTest, TruncatedStatusLinesWantMoreUntilTheCap) {
  const std::string raw = "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n";
  // Every proper prefix short of the blank line is just "keep reading".
  for (size_t len = 0; len < raw.size() - 1; ++len) {
    ParsedResponseHead parsed;
    EXPECT_EQ(ParseResponseHead(raw.substr(0, len), 8192, &parsed),
              HttpResponseOutcome::kNeedMore)
        << len;
  }
  // Once the unterminated head has consumed the whole budget, it is
  // refused rather than buffered forever.
  ParsedResponseHead parsed;
  EXPECT_EQ(ParseResponseHead(std::string(256, 'a'), 256, &parsed),
            HttpResponseOutcome::kMalformed);
}

TEST(ParseResponseHeadTest, StatusCodeIsStrictlyThreeDigits) {
  ParsedResponseHead parsed;
  for (const char* raw : {
           "HTTP/1.1 50 OK\r\n\r\n",       // two digits
           "HTTP/1.1 5033 OK\r\n\r\n",     // four digits
           "HTTP/1.1 20x OK\r\n\r\n",      // non-digit
           "HTTP/1.1 099 OK\r\n\r\n",      // below 100
           "HTTP/1.1 600 OK\r\n\r\n",      // above 599
           "HTTP/1.1\r\n\r\n",             // no status at all
           "SMTP/1.0 200 OK\r\n\r\n",      // wrong protocol
           "200 OK\r\n\r\n",               // bare status
       }) {
    EXPECT_EQ(ParseResponseHead(raw, 8192, &parsed),
              HttpResponseOutcome::kMalformed)
        << raw;
  }
  // A missing reason phrase is legal.
  ASSERT_EQ(ParseResponseHead("HTTP/1.1 204\r\n\r\n", 8192, &parsed),
            HttpResponseOutcome::kComplete);
  EXPECT_EQ(parsed.status, 204);
}

TEST(ParseResponseHeadTest, OversizedReasonPhraseIsHarmless) {
  // The reason phrase is never parsed, so a huge one only counts against
  // the head budget.
  const std::string within = "HTTP/1.1 200 " + std::string(2000, 'R') +
                             "\r\nContent-Length: 0\r\n\r\n";
  ParsedResponseHead parsed;
  ASSERT_EQ(ParseResponseHead(within, 8192, &parsed),
            HttpResponseOutcome::kComplete);
  EXPECT_EQ(parsed.status, 200);
  const std::string oversized = "HTTP/1.1 200 " + std::string(9000, 'R') +
                                "\r\nContent-Length: 0\r\n\r\n";
  EXPECT_EQ(ParseResponseHead(oversized, 8192, &parsed),
            HttpResponseOutcome::kMalformed);
}

TEST(ParseResponseHeadTest, DuplicateRetryAfterLastWins) {
  ParsedResponseHead parsed;
  ASSERT_EQ(ParseResponseHead("HTTP/1.1 503 Unavailable\r\n"
                              "Retry-After: 1\r\nRetry-After: 30\r\n\r\n",
                              8192, &parsed),
            HttpResponseOutcome::kComplete);
  // Duplicates of non-load-bearing headers last-win; the retry client
  // clamps whatever value survives, so a hostile 30 cannot stall it.
  EXPECT_EQ(parsed.headers.at("retry-after"), "30");
}

TEST(ParseResponseHeadTest, DisagreeingDuplicateContentLengthIsRefused) {
  ParsedResponseHead parsed;
  ASSERT_EQ(ParseResponseHead("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n"
                              "Content-Length: 5\r\n\r\n",
                              8192, &parsed),
            HttpResponseOutcome::kComplete);
  EXPECT_EQ(ParseResponseHead("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n"
                              "Content-Length: 6\r\n\r\n",
                              8192, &parsed),
            HttpResponseOutcome::kMalformed);
}

// Property-style fuzz over the response parser, mirroring the request
// side: truncations, byte flips, oversized reason phrases, duplicated
// Retry-After, and pure noise must all land in a defined outcome with
// head_bytes never exceeding the input.
class ResponseParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResponseParserFuzzTest, ArbitraryResponsesNeverCrashOrOverread) {
  Rng rng(GetParam());
  const std::string valid =
      "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\n"
      "Content-Length: 10\r\nX-Schemr-Shed: queue_full\r\n\r\n0123456789";
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string input = valid;
    switch (rng.NextBelow(5)) {
      case 0:  // truncate (status line included)
        input.resize(rng.NextBelow(input.size() + 1));
        break;
      case 1:  // flip bytes
        for (int flips = 0; flips < 4; ++flips) {
          const size_t at = rng.NextBelow(input.size());
          input[at] = static_cast<char>(rng.NextBelow(256));
        }
        break;
      case 2:  // oversize the reason phrase
        input.insert(13, std::string(rng.NextBelow(16384), 'R'));
        break;
      case 3:  // duplicate Retry-After with a hostile value
        input.insert(input.find("\r\nContent-Length"),
                     "\r\nRetry-After: 99999999");
        break;
      case 4: {  // pure noise
        input.clear();
        const size_t size = rng.NextBelow(4096);
        input.reserve(size);
        for (size_t i = 0; i < size; ++i) {
          input.push_back(static_cast<char>(rng.NextBelow(256)));
        }
        break;
      }
    }
    ParsedResponseHead parsed;
    const HttpResponseOutcome outcome = ParseResponseHead(input, 1024, &parsed);
    if (outcome == HttpResponseOutcome::kComplete) {
      ASSERT_LE(parsed.head_bytes, input.size());
      ASSERT_GE(parsed.status, 100);
      ASSERT_LE(parsed.status, 599);
    } else {
      ASSERT_TRUE(outcome == HttpResponseOutcome::kNeedMore ||
                  outcome == HttpResponseOutcome::kMalformed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseParserFuzzTest,
                         ::testing::Values(1u, 7u, 42u, 2026u));

// --- the live server --------------------------------------------------------

TEST(HttpServerTest, RoutesByMethodAndPath) {
  auto server = MakeEchoServer();
  ASSERT_TRUE(server->Start().ok());
  HttpCallOptions post;
  post.method = "POST";
  post.body = "round trip";
  auto reply = HttpCall("127.0.0.1", server->port(), "/echo", post);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 200);
  EXPECT_EQ(reply->body, "round trip");

  // Same path, wrong method: 405, not 404.
  auto wrong_method = HttpCall("127.0.0.1", server->port(), "/echo");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
  auto wrong_path = HttpCall("127.0.0.1", server->port(), "/missing");
  ASSERT_TRUE(wrong_path.ok());
  EXPECT_EQ(wrong_path->status, 404);
  EXPECT_NE(wrong_path->body.find("/echo"), std::string::npos);
  server->Stop();
}

TEST(HttpServerTest, HeaderStallIsAnswered408) {
  HttpServerOptions options;
  options.header_timeout_seconds = 0.3;
  auto server = MakeEchoServer(std::move(options));
  ASSERT_TRUE(server->Start().ok());
  const int fd = ConnectTo(server->port());
  ASSERT_GE(fd, 0);
  // A slowloris client: half a request line, then silence.
  ASSERT_GT(::send(fd, "GET /pi", 7, MSG_NOSIGNAL), 0);
  const std::string response = ReadAll(fd);
  ::close(fd);
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  EXPECT_EQ(server->Stats().timeouts, 1u);
  server->Stop();
}

TEST(HttpServerTest, BodyStallIsAnswered408) {
  HttpServerOptions options;
  options.body_timeout_seconds = 0.3;
  auto server = MakeEchoServer(std::move(options));
  ASSERT_TRUE(server->Start().ok());
  const int fd = ConnectTo(server->port());
  ASSERT_GE(fd, 0);
  const std::string head =
      "POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial";
  ASSERT_GT(::send(fd, head.data(), head.size(), MSG_NOSIGNAL), 0);
  const std::string response = ReadAll(fd);
  ::close(fd);
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  server->Stop();
}

TEST(HttpServerTest, BodyShorterThanContentLengthIs400) {
  auto server = MakeEchoServer();
  ASSERT_TRUE(server->Start().ok());
  const std::string response = RawRequest(
      server->port(),
      "POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort",
      /*half_close=*/true);
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  server->Stop();
}

TEST(HttpServerTest, OversizedDeclaredBodyIs413BeforeTheBodyArrives) {
  HttpServerOptions options;
  options.max_body_bytes = 64;
  auto server = MakeEchoServer(std::move(options));
  ASSERT_TRUE(server->Start().ok());
  // Only the head is sent; the 413 must not wait for 1 MiB that will
  // never come.
  const std::string response = RawRequest(
      server->port(),
      "POST /echo HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n");
  EXPECT_NE(response.find("413"), std::string::npos) << response;
  server->Stop();
}

TEST(HttpServerTest, OversizedHeadIs431) {
  HttpServerOptions options;
  options.max_request_bytes = 256;
  auto server = MakeEchoServer(std::move(options));
  ASSERT_TRUE(server->Start().ok());
  const std::string response = RawRequest(
      server->port(), "GET /" + std::string(1024, 'a') + " HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  server->Stop();
}

TEST(HttpServerTest, PipelinedSecondRequestIsIgnored) {
  auto server = MakeEchoServer();
  ASSERT_TRUE(server->Start().ok());
  const std::string response = RawRequest(
      server->port(),
      "POST /echo HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /ping HTTP/1.1\r\n\r\n");
  // Exactly one response: the echo, then Connection: close.
  EXPECT_NE(response.find("200"), std::string::npos) << response;
  EXPECT_NE(response.find("hi"), std::string::npos) << response;
  EXPECT_EQ(response.find("pong"), std::string::npos) << response;
  server->Stop();
}

TEST(HttpServerTest, ConnectionCapShedsInlineWith503RetryAfter) {
  HttpServerOptions options;
  options.max_connections = 0;  // every connection is beyond the cap
  options.shed_retry_after_seconds = 2.0;
  auto server = MakeEchoServer(std::move(options));
  ASSERT_TRUE(server->Start().ok());
  auto reply = HttpCall("127.0.0.1", server->port(), "/ping");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 503);
  ASSERT_NE(reply->headers.find("retry-after"), reply->headers.end());
  EXPECT_EQ(reply->headers.at("retry-after"), "2");
  EXPECT_GE(server->Stats().shed, 1u);
  server->Stop();
}

TEST(HttpServerTest, DrainFinishesInFlightAndRefusesNewConnections) {
  HttpServerOptions options;
  options.handler_threads = 2;
  HttpServer server(std::move(options));
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  server.Route("GET", "/slow", [&](const HttpRequest&) {
    entered.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    HttpResponse response;
    response.body = "finished";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  std::thread client([port] {
    auto reply = HttpCall("127.0.0.1", port, "/slow");
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->status, 200);
    EXPECT_EQ(reply->body, "finished");
  });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.BeginDrain();
  EXPECT_TRUE(server.draining());
  // New connections are refused cleanly (the listener is closed)...
  EXPECT_LT(ConnectTo(port), 0);
  // ...while the in-flight response still completes.
  release.store(true);
  client.join();
  server.Stop();
}

TEST(HttpServerTest, StatsAndGlobalMetricsCountTraffic) {
  auto server = MakeEchoServer();
  ASSERT_TRUE(server->Start().ok());
  HttpCallOptions post;
  post.method = "POST";
  post.body = "count me";
  ASSERT_TRUE(HttpCall("127.0.0.1", server->port(), "/echo", post).ok());
  HttpServerStats stats = server->Stats();
  EXPECT_GE(stats.connections, 1u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
  // The client saw its reply, but the handler thread may not have reached
  // CloseConnection yet — give the decrement a moment instead of racing it.
  for (int i = 0; i < 200 && stats.active != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stats = server->Stats();
  }
  EXPECT_EQ(stats.active, 0u);
  bool found = false;
  for (const auto& metric : MetricsRegistry::Global().Collect()) {
    if (metric.name == "schemr_http_connections_total" &&
        metric.counter_value > 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  server->Stop();
}

// --- socket fault-injection sites -------------------------------------------

class FaultSiteTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

TEST_F(FaultSiteTest, TransientAcceptFailuresDoNotKillTheListener) {
  FaultSpec emfile;
  emfile.kind = FaultKind::kError;
  emfile.error_code = EMFILE;
  emfile.count = 3;
  FaultInjector::Global().Arm("net/accept/fail", emfile);
  auto server = MakeEchoServer();
  ASSERT_TRUE(server->Start().ok());
  // The first accepts eat injected EMFILEs (the acceptor backs off and
  // retries); the client's request still gets served afterwards.
  auto reply = HttpCall("127.0.0.1", server->port(), "/ping");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 200);
  EXPECT_TRUE(server->running());
  server->Stop();
}

TEST_F(FaultSiteTest, ReadResetClosesTheConnectionWithoutAnAnswer) {
  FaultSpec reset;
  reset.kind = FaultKind::kError;
  reset.error_code = ECONNRESET;
  reset.count = 1;
  FaultInjector::Global().Arm("net/read/reset", reset);
  auto server = MakeEchoServer();
  ASSERT_TRUE(server->Start().ok());
  EXPECT_EQ(RawRequest(server->port(), "GET /ping HTTP/1.1\r\n\r\n"), "");
  // The next, unfaulted request succeeds.
  auto reply = HttpCall("127.0.0.1", server->port(), "/ping");
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 200);
  server->Stop();
}

TEST_F(FaultSiteTest, ShortReadsOnlyFragmentTheStream) {
  FaultSpec trickle;
  trickle.kind = FaultKind::kShortWrite;
  trickle.arg = 3;  // at most 3 bytes per recv
  FaultInjector::Global().Arm("net/read/short", trickle);
  auto server = MakeEchoServer();
  ASSERT_TRUE(server->Start().ok());
  HttpCallOptions post;
  post.method = "POST";
  post.body = "reassembled from fragments";
  auto reply = HttpCall("127.0.0.1", server->port(), "/echo", post);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->body, "reassembled from fragments");
  server->Stop();
}

// --- HttpCall retry contract ------------------------------------------------

/// Binds an ephemeral port, closes it, and returns it: connecting to it
/// refuses immediately (nothing re-binds it within a test's lifetime).
int DeadPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(HttpCallTest, RetriesConnectFailuresUpToMaxAttempts) {
  const int dead_port = DeadPort();
  ASSERT_GT(dead_port, 0);
  HttpCallOptions options;
  options.max_attempts = 3;
  options.backoff_base_ms = 1.0;
  auto reply = HttpCall("127.0.0.1", dead_port, "/x", options);
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("attempt 3/3"), std::string::npos)
      << reply.status();
}

TEST(HttpCallTest, RetriesA503WithRetryAfterUntilItSucceeds) {
  HttpServer server;
  std::atomic<int> calls{0};
  server.Route("GET", "/flaky", [&](const HttpRequest&) {
    HttpResponse response;
    if (calls.fetch_add(1) < 2) {
      response.status = 503;
      response.retry_after_seconds = 0.0;  // "Retry-After: 0" — immediately
      response.body = "overloaded";
    } else {
      response.body = "recovered";
    }
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  HttpCallOptions options;
  options.max_attempts = 4;
  options.backoff_base_ms = 1.0;
  auto reply = HttpCall("127.0.0.1", server.port(), "/flaky", options);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 200);
  EXPECT_EQ(reply->body, "recovered");
  EXPECT_EQ(reply->attempts, 3);
  server.Stop();
}

TEST(HttpCallTest, A503WithoutRetryAfterIsReturnedNotRetried) {
  HttpServer server;
  std::atomic<int> calls{0};
  server.Route("GET", "/drain", [&](const HttpRequest&) {
    calls.fetch_add(1);
    HttpResponse response;
    response.status = 503;  // no Retry-After: a draining instance
    response.body = "shutting down";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  HttpCallOptions options;
  options.max_attempts = 4;
  auto reply = HttpCall("127.0.0.1", server.port(), "/drain", options);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->status, 503);
  EXPECT_EQ(reply->attempts, 1);
  EXPECT_EQ(calls.load(), 1);
  server.Stop();
}

TEST(HttpCallTest, NeverRetriesATornMidBodyResponse) {
  // Tear the response mid-write on the server side: the client saw the
  // connection open and bytes flow, so the request may have executed —
  // the one case that must never be retried, whatever max_attempts says.
  FaultSpec torn;
  torn.kind = FaultKind::kShortWrite;
  torn.arg = 30;  // enough for part of the head, never the body
  torn.count = -1;
  FaultInjector::Global().Arm("net/write/short", torn);
  auto server = MakeEchoServer();
  ASSERT_TRUE(server->Start().ok());
  HttpCallOptions post;
  post.method = "POST";
  post.body = "do not double-execute";
  post.max_attempts = 5;
  post.backoff_base_ms = 1.0;
  auto reply = HttpCall("127.0.0.1", server->port(), "/echo", post);
  FaultInjector::Global().DisarmAll();
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().message().find("attempt 1/5"), std::string::npos)
      << reply.status();
  server->Stop();
}

TEST(HttpCallTest, BackoffScheduleIsDeterministicPerSeed) {
  // Two runs with the same seed observe the same jittered backoff;
  // verified through elapsed time with a sleep large enough to dominate
  // scheduling noise but small enough to keep the test fast.
  const int dead_port = DeadPort();
  ASSERT_GT(dead_port, 0);
  HttpCallOptions options;
  options.max_attempts = 2;
  options.backoff_base_ms = 40.0;
  options.jitter_seed = 99;
  const auto elapsed = [&] {
    const auto start = std::chrono::steady_clock::now();
    (void)HttpCall("127.0.0.1", dead_port, "/x", options);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  const double first = elapsed();
  const double second = elapsed();
  // One retry with jitter in [0.5, 1.0]: both runs slept 20–40 ms, and
  // with the same seed they differ only by scheduling noise.
  EXPECT_GE(first, 18.0);
  EXPECT_LE(first, 150.0);
  EXPECT_LT(std::abs(first - second), 30.0);
}

// --- request identity -------------------------------------------------------

bool InIdAlphabet(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-';
}

TEST(RequestIdTest, ValidatesTheAlphabetAndBothLengthCaps) {
  EXPECT_TRUE(IsValidRequestId("r1a2b3-cafe-7"));
  EXPECT_TRUE(IsValidRequestId("A"));
  EXPECT_TRUE(IsValidRequestId(std::string(kMaxRequestIdBytes, 'x')));
  EXPECT_FALSE(IsValidRequestId(std::string(kMaxRequestIdBytes + 1, 'x')));
  EXPECT_TRUE(IsValidRequestId(std::string(kMaxClientRequestIdBytes, 'x'),
                               kMaxClientRequestIdBytes));
  EXPECT_FALSE(IsValidRequestId(std::string(kMaxClientRequestIdBytes + 1, 'x'),
                                kMaxClientRequestIdBytes));
  EXPECT_FALSE(IsValidRequestId(""));
  // Header-injection and log-forgery attempts must all fail closed.
  for (const char* hostile :
       {"id with space", "id\r\nX-Evil: 1", "id\nid", "id\tid", "id;id",
        "id_id", "id.id", "id\"id", "\xffid", "id\x01"}) {
    EXPECT_FALSE(IsValidRequestId(hostile)) << hostile;
  }
  std::string embedded_nul = "abc";
  embedded_nul.push_back('\0');
  EXPECT_FALSE(IsValidRequestId(embedded_nul));
}

TEST(RequestIdTest, MintedAndHopIdsAlwaysValidateAndJoin) {
  std::string previous;
  for (int i = 0; i < 64; ++i) {
    const std::string id = MintRequestId();
    EXPECT_TRUE(IsValidRequestId(id)) << id;
    EXPECT_NE(id, previous);
    previous = id;
    // A client-cap base plus any realistic hop suffix stays under the
    // replica's hard cap — the invariant the two caps exist to keep.
    EXPECT_LE(id.size(), kMaxClientRequestIdBytes);
    for (int hop : {0, 7, 123}) {
      const std::string hopped = HopRequestId(id, hop);
      EXPECT_TRUE(IsValidRequestId(hopped)) << hopped;
      EXPECT_TRUE(RequestIdMatches(id, hopped));
    }
    EXPECT_TRUE(RequestIdMatches(id, id));
    EXPECT_FALSE(RequestIdMatches(id, id + "-h"));
    EXPECT_FALSE(RequestIdMatches(id, id + "-h1x"));
    EXPECT_FALSE(RequestIdMatches(id, id + "x"));
    EXPECT_FALSE(RequestIdMatches(id, "other-h1"));
  }
}

class RequestIdFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RequestIdFuzzTest, ValidationExactlyMatchesTheSpecOnArbitraryBytes) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 5000; ++iteration) {
    std::string candidate;
    const size_t size = rng.NextBelow(kMaxRequestIdBytes + 8);
    candidate.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      // Half the time draw from the id alphabet so valid ids actually
      // occur; otherwise draw arbitrary bytes.
      if (rng.NextBelow(2) == 0) {
        static const char kAlphabet[] =
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-";
        candidate.push_back(kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)]);
      } else {
        candidate.push_back(static_cast<char>(rng.NextBelow(256)));
      }
    }
    bool want = !candidate.empty() && candidate.size() <= kMaxRequestIdBytes;
    for (char c : candidate) want = want && InIdAlphabet(c);
    EXPECT_EQ(IsValidRequestId(candidate), want) << iteration;
    // The coordinator's acceptance gate for client-offered ids.
    bool want_client = want && candidate.size() <= kMaxClientRequestIdBytes;
    EXPECT_EQ(IsValidRequestId(candidate, kMaxClientRequestIdBytes),
              want_client)
        << iteration;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequestIdFuzzTest,
                         ::testing::Values(3u, 17u, 2026u));

// End-to-end strictness at the HTTP layer: whatever survives the header
// parser still gets discarded unless it is a well-formed id, and the
// handler's echo is always well-formed.
TEST(RequestIdTest, HostileHeaderValuesAreDiscardedNotEchoed) {
  HttpServerOptions options;
  auto server = std::make_unique<HttpServer>(std::move(options));
  server->Route("POST", "/echo-id", [](const HttpRequest& request) {
    std::string id;
    if (const std::string* offered = request.FindHeader(kRequestIdHeaderLower);
        offered != nullptr &&
        IsValidRequestId(*offered, kMaxClientRequestIdBytes)) {
      id = *offered;
    } else {
      id = MintRequestId();
    }
    HttpResponse response;
    response.headers.emplace_back(kRequestIdHeader, id);
    response.body = id;
    return response;
  });
  ASSERT_TRUE(server->Start().ok());
  const int port = server->port();

  const auto round_trip = [&](const std::string& header_value) {
    const std::string raw = "POST /echo-id HTTP/1.1\r\nHost: a\r\n" +
                            std::string(kRequestIdHeader) + ": " +
                            header_value +
                            "\r\nContent-Length: 0\r\n\r\n";
    const std::string response = RawRequest(port, raw);
    const size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? std::string()
                                      : response.substr(split + 4);
  };

  EXPECT_EQ(round_trip("client-id-1"), "client-id-1");
  // Hostile offers: each must come back as a fresh, valid, *different* id.
  for (const std::string& hostile :
       {std::string("bad id"), std::string("bad\tid"), std::string("{json}"),
        std::string(kMaxClientRequestIdBytes + 1, 'x'),
        std::string("sneaky\x7f")}) {
    const std::string echoed = round_trip(hostile);
    EXPECT_TRUE(IsValidRequestId(echoed)) << echoed;
    EXPECT_NE(echoed, hostile);
  }
  server->Stop();
}

}  // namespace
}  // namespace schemr
