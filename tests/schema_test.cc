// Unit tests for src/schema: the model, builder, entity graph, validation.

#include <gtest/gtest.h>

#include "schema/entity_graph.h"
#include "schema/schema.h"
#include "schema/schema_builder.h"

namespace schemr {
namespace {

/// The paper's Fig. 4 schema: case(doctor, patient) with FKs to
/// patient(height, gender) and doctor(gender) -- wait, Fig. 4 has case
/// linked to patient and doctor *not* linked (doctor unrelated to patient).
/// We build: case references patient; doctor stands alone except case also
/// references doctor? In the figure, case links to both patient and doctor
/// via FK, while patient and doctor are mutually reachable only through
/// case. The tightness test (core_test) relies on the exact topology:
/// entities case, patient, doctor; case.patient→patient, case.doctor→doctor.
Schema MakeClinicSchema() {
  return SchemaBuilder("clinic")
      .Entity("patient")
      .Attribute("patient_id", DataType::kInt64)
      .PrimaryKey()
      .Attribute("height", DataType::kDouble)
      .Attribute("gender", DataType::kString)
      .Entity("doctor")
      .Attribute("doctor_id", DataType::kInt64)
      .PrimaryKey()
      .Attribute("gender", DataType::kString)
      .Entity("case")
      .Attribute("case_id", DataType::kInt64)
      .PrimaryKey()
      .Attribute("patient", DataType::kInt64)
      .References("patient")
      .Attribute("doctor", DataType::kInt64)
      .References("doctor")
      .Build();
}

TEST(SchemaTest, BasicCountsAndAccess) {
  Schema schema = MakeClinicSchema();
  EXPECT_EQ(schema.name(), "clinic");
  EXPECT_EQ(schema.NumEntities(), 3u);
  EXPECT_EQ(schema.NumAttributes(), 8u);
  EXPECT_EQ(schema.size(), 11u);
  EXPECT_EQ(schema.foreign_keys().size(), 2u);
  EXPECT_TRUE(schema.Validate().ok());
}

TEST(SchemaTest, RootsAndChildren) {
  Schema schema = MakeClinicSchema();
  std::vector<ElementId> roots = schema.Roots();
  ASSERT_EQ(roots.size(), 3u);
  for (ElementId root : roots) {
    EXPECT_EQ(schema.element(root).kind, ElementKind::kEntity);
  }
  auto patient = schema.FindByName("patient", ElementKind::kEntity);
  ASSERT_TRUE(patient.has_value());
  EXPECT_EQ(schema.Children(*patient).size(), 3u);
}

TEST(SchemaTest, EntityOfWalksToNearestEntity) {
  Schema schema = MakeClinicSchema();
  auto patient = schema.FindByName("patient", ElementKind::kEntity);
  auto height = schema.FindByName("height");
  ASSERT_TRUE(patient && height);
  EXPECT_EQ(schema.EntityOf(*height), *patient);
  EXPECT_EQ(schema.EntityOf(*patient), *patient);  // entity is its own
}

TEST(SchemaTest, DepthAndPath) {
  Schema schema;
  ElementId a = schema.AddEntity("a");
  ElementId b = schema.AddEntity("b", a);
  ElementId c = schema.AddAttribute("c", b);
  EXPECT_EQ(schema.Depth(a), 0u);
  EXPECT_EQ(schema.Depth(b), 1u);
  EXPECT_EQ(schema.Depth(c), 2u);
  EXPECT_EQ(schema.Path(c), "a.b.c");
}

TEST(SchemaTest, FindByNameIsCaseInsensitive) {
  Schema schema = MakeClinicSchema();
  EXPECT_TRUE(schema.FindByName("PATIENT").has_value());
  EXPECT_TRUE(schema.FindByName("Height").has_value());
  EXPECT_FALSE(schema.FindByName("nonexistent").has_value());
  // Kind filter excludes attributes.
  EXPECT_FALSE(schema.FindByName("height", ElementKind::kEntity).has_value());
}

TEST(SchemaTest, ValidateRejectsEmptyName) {
  Schema schema;
  schema.AddEntity("");
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsOutOfRangeParent) {
  Schema schema;
  Element e;
  e.name = "orphan";
  e.parent = 99;
  schema.AddElement(std::move(e));
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsAttributeWithChildren) {
  Schema schema;
  ElementId attr = schema.AddAttribute("a", kNoElement);
  schema.AddAttribute("child", attr);
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsContainmentCycle) {
  Schema schema;
  ElementId a = schema.AddEntity("a");
  ElementId b = schema.AddEntity("b", a);
  schema.mutable_element(a)->parent = b;  // cycle a <-> b
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsBadForeignKeys) {
  {
    Schema schema;
    ElementId e = schema.AddEntity("e");
    schema.AddForeignKey(e, e);  // source must be an attribute
    EXPECT_FALSE(schema.Validate().ok());
  }
  {
    Schema schema;
    ElementId e = schema.AddEntity("e");
    ElementId a = schema.AddAttribute("a", e);
    schema.AddForeignKey(a, a);  // target must be an entity
    EXPECT_FALSE(schema.Validate().ok());
  }
  {
    Schema schema;
    ElementId e = schema.AddEntity("e");
    ElementId a = schema.AddAttribute("a", e);
    schema.AddForeignKey(a, e, e);  // target attribute must be an attribute
    EXPECT_FALSE(schema.Validate().ok());
  }
}

TEST(SchemaTest, EqualityAndToString) {
  Schema a = MakeClinicSchema();
  Schema b = MakeClinicSchema();
  EXPECT_EQ(a, b);
  b.mutable_element(0)->name = "different";
  EXPECT_FALSE(a == b);
  std::string rendered = a.ToString();
  EXPECT_NE(rendered.find("patient"), std::string::npos);
  EXPECT_NE(rendered.find("fk:"), std::string::npos);
}

// --- builder ------------------------------------------------------------------

TEST(SchemaBuilderTest, NestedEntities) {
  Schema schema = SchemaBuilder("xml_like")
                      .Entity("library")
                      .Attribute("name")
                      .NestedEntity("book")
                      .Attribute("title")
                      .Attribute("isbn")
                      .End()
                      .Build();
  auto book = schema.FindByName("book", ElementKind::kEntity);
  auto library = schema.FindByName("library", ElementKind::kEntity);
  ASSERT_TRUE(book && library);
  EXPECT_EQ(schema.element(*book).parent, *library);
  EXPECT_EQ(schema.Depth(*schema.FindByName("title")), 2u);
}

TEST(SchemaBuilderTest, ForwardReferencesResolve) {
  Schema schema = SchemaBuilder("fwd")
                      .Entity("child")
                      .Attribute("parent_id", DataType::kInt64)
                      .References("parent")  // defined later
                      .Entity("parent")
                      .Attribute("id", DataType::kInt64)
                      .PrimaryKey()
                      .Build();
  ASSERT_EQ(schema.foreign_keys().size(), 1u);
  EXPECT_EQ(schema.element(schema.foreign_keys()[0].target_entity).name,
            "parent");
}

TEST(SchemaBuilderTest, DottedReferenceResolvesAttribute) {
  Schema schema = SchemaBuilder("dotted")
                      .Entity("a")
                      .Attribute("b_key", DataType::kInt64)
                      .References("b.key")
                      .Entity("b")
                      .Attribute("key", DataType::kInt64)
                      .Build();
  ASSERT_EQ(schema.foreign_keys().size(), 1u);
  const ForeignKey& fk = schema.foreign_keys()[0];
  EXPECT_EQ(schema.element(fk.target_attribute).name, "key");
}

TEST(SchemaBuilderTest, UnresolvedReferenceFailsTryBuild) {
  auto result = SchemaBuilder("bad")
                    .Entity("a")
                    .Attribute("x", DataType::kInt64)
                    .References("missing")
                    .TryBuild();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilderTest, PrimaryKeyImpliesNotNull) {
  Schema schema = SchemaBuilder("pk")
                      .Entity("t")
                      .Attribute("id", DataType::kInt64)
                      .PrimaryKey()
                      .Build();
  const Element& id = schema.element(*schema.FindByName("id"));
  EXPECT_TRUE(id.primary_key);
  EXPECT_FALSE(id.nullable);
}

TEST(SchemaBuilderTest, DocAttachesToLastElement) {
  Schema schema = SchemaBuilder("doc")
                      .Entity("t")
                      .Doc("the table")
                      .Attribute("c")
                      .Doc("the column")
                      .Build();
  EXPECT_EQ(schema.element(0).documentation, "the table");
  EXPECT_EQ(schema.element(1).documentation, "the column");
}

// --- entity graph ------------------------------------------------------------------

TEST(EntityGraphTest, FkNeighborhood) {
  Schema schema = MakeClinicSchema();
  EntityGraph graph(schema);
  auto patient = *schema.FindByName("patient", ElementKind::kEntity);
  auto doctor = *schema.FindByName("doctor", ElementKind::kEntity);
  auto clinic_case = *schema.FindByName("case", ElementKind::kEntity);

  // case connects to both; patient and doctor connect transitively.
  EXPECT_TRUE(graph.InSameNeighborhood(clinic_case, patient));
  EXPECT_TRUE(graph.InSameNeighborhood(clinic_case, doctor));
  EXPECT_TRUE(graph.InSameNeighborhood(patient, doctor));
  EXPECT_EQ(graph.NumComponents(), 1u);

  EXPECT_EQ(graph.Distance(clinic_case, patient), 1u);
  EXPECT_EQ(graph.Distance(patient, doctor), 2u);  // via case
  EXPECT_EQ(graph.Distance(patient, patient), 0u);
}

TEST(EntityGraphTest, DisconnectedComponents) {
  Schema schema = SchemaBuilder("two_islands")
                      .Entity("a")
                      .Attribute("x")
                      .Entity("b")
                      .Attribute("y")
                      .Build();
  EntityGraph graph(schema);
  auto a = *schema.FindByName("a", ElementKind::kEntity);
  auto b = *schema.FindByName("b", ElementKind::kEntity);
  EXPECT_FALSE(graph.InSameNeighborhood(a, b));
  EXPECT_EQ(graph.NumComponents(), 2u);
  EXPECT_EQ(graph.Distance(a, b), SIZE_MAX);
}

TEST(EntityGraphTest, NestedEntitiesAreNeighbors) {
  Schema schema = SchemaBuilder("nested")
                      .Entity("outer")
                      .NestedEntity("inner")
                      .Attribute("x")
                      .End()
                      .Build();
  EntityGraph graph(schema);
  auto outer = *schema.FindByName("outer", ElementKind::kEntity);
  auto inner = *schema.FindByName("inner", ElementKind::kEntity);
  EXPECT_TRUE(graph.InSameNeighborhood(outer, inner));
  EXPECT_EQ(graph.Distance(outer, inner), 1u);
}

TEST(EntityGraphTest, NeighborsHaveNoDuplicates) {
  // Two FKs between the same pair of entities must yield one edge.
  Schema schema = SchemaBuilder("dup")
                      .Entity("a")
                      .Attribute("b1", DataType::kInt64)
                      .References("b")
                      .Attribute("b2", DataType::kInt64)
                      .References("b")
                      .Entity("b")
                      .Attribute("id", DataType::kInt64)
                      .Build();
  EntityGraph graph(schema);
  auto a = *schema.FindByName("a", ElementKind::kEntity);
  EXPECT_EQ(graph.Neighbors(a).size(), 1u);
}

TEST(EntityGraphTest, SubtreeElementsRespectsDepthCap) {
  Schema schema;
  ElementId root = schema.AddEntity("root");
  ElementId l1 = schema.AddEntity("l1", root);
  ElementId l2 = schema.AddEntity("l2", l1);
  schema.AddEntity("l3", l2);
  EXPECT_EQ(SubtreeElements(schema, root, 0).size(), 1u);
  EXPECT_EQ(SubtreeElements(schema, root, 1).size(), 2u);
  EXPECT_EQ(SubtreeElements(schema, root, 3).size(), 4u);
  EXPECT_EQ(SubtreeElements(schema, root, 99).size(), 4u);
}

}  // namespace
}  // namespace schemr
