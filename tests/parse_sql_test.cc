// Tests for the SQL lexer, DDL parser and DDL writer.

#include <gtest/gtest.h>

#include "parse/ddl_parser.h"
#include "parse/ddl_writer.h"
#include "parse/sql_lexer.h"

namespace schemr {
namespace {

// --- lexer -------------------------------------------------------------------

TEST(SqlLexerTest, BasicTokens) {
  auto tokens = LexSql("CREATE TABLE t (a INT, b VARCHAR(10));");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 13u);
  EXPECT_EQ((*tokens)[0].text, "CREATE");
  EXPECT_EQ((*tokens)[0].type, SqlTokenType::kIdentifier);
  EXPECT_EQ(tokens->back().type, SqlTokenType::kEnd);
}

TEST(SqlLexerTest, QuotedIdentifiers) {
  auto tokens = LexSql(R"("case" `order` [select])");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // 3 identifiers + end
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].type, SqlTokenType::kIdentifier);
    EXPECT_TRUE((*tokens)[i].quoted);
  }
  EXPECT_EQ((*tokens)[0].text, "case");
  EXPECT_EQ((*tokens)[1].text, "order");
  EXPECT_EQ((*tokens)[2].text, "select");
}

TEST(SqlLexerTest, StringLiteralsWithEscapes) {
  auto tokens = LexSql("'it''s here'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, SqlTokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's here");
}

TEST(SqlLexerTest, CommentsSkipped) {
  auto tokens = LexSql(
      "-- line comment\n"
      "a /* block\n comment */ b");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[1].line, 3);  // line tracking through comments
}

TEST(SqlLexerTest, Numbers) {
  auto tokens = LexSql("42 3.14 .5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "3.14");
  EXPECT_EQ((*tokens)[2].text, ".5");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].type, SqlTokenType::kNumber);
  }
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(LexSql("'unterminated").ok());
  EXPECT_FALSE(LexSql("\"unterminated").ok());
  EXPECT_FALSE(LexSql("/* unterminated").ok());
  EXPECT_FALSE(LexSql("a ? b").ok());
  // Error message carries the line number.
  auto bad = LexSql("ok\nok\n'oops");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

// --- type mapping -------------------------------------------------------------

TEST(SqlTypeMappingTest, CommonTypes) {
  EXPECT_EQ(SqlTypeToDataType("INT"), DataType::kInt32);
  EXPECT_EQ(SqlTypeToDataType("integer"), DataType::kInt32);
  EXPECT_EQ(SqlTypeToDataType("BIGINT"), DataType::kInt64);
  EXPECT_EQ(SqlTypeToDataType("VarChar"), DataType::kString);
  EXPECT_EQ(SqlTypeToDataType("TEXT"), DataType::kText);
  EXPECT_EQ(SqlTypeToDataType("double"), DataType::kDouble);
  EXPECT_EQ(SqlTypeToDataType("DECIMAL"), DataType::kDecimal);
  EXPECT_EQ(SqlTypeToDataType("timestamp"), DataType::kDateTime);
  EXPECT_EQ(SqlTypeToDataType("BOOLEAN"), DataType::kBool);
  EXPECT_EQ(SqlTypeToDataType("BLOB"), DataType::kBinary);
  // Unknown types degrade to string, never fail.
  EXPECT_EQ(SqlTypeToDataType("GEOGRAPHY"), DataType::kString);
}

// --- DDL parser ------------------------------------------------------------------

TEST(DdlParserTest, SingleTable) {
  auto schema = ParseDdl(
      "CREATE TABLE patient (\n"
      "  patient_id BIGINT PRIMARY KEY,\n"
      "  name VARCHAR(100) NOT NULL,\n"
      "  height DOUBLE,\n"
      "  gender CHAR(1)\n"
      ");",
      "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->NumEntities(), 1u);
  EXPECT_EQ(schema->NumAttributes(), 4u);
  const Element& id = schema->element(*schema->FindByName("patient_id"));
  EXPECT_TRUE(id.primary_key);
  EXPECT_FALSE(id.nullable);
  EXPECT_EQ(id.type, DataType::kInt64);
  const Element& name = schema->element(*schema->FindByName("name"));
  EXPECT_FALSE(name.nullable);
  EXPECT_FALSE(name.primary_key);
}

TEST(DdlParserTest, MultipleTablesWithInlineReferences) {
  auto schema = ParseDdl(
      "CREATE TABLE a (id BIGINT PRIMARY KEY);\n"
      "CREATE TABLE b (\n"
      "  id BIGINT PRIMARY KEY,\n"
      "  a_id BIGINT REFERENCES a (id) ON DELETE CASCADE\n"
      ");",
      "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->NumEntities(), 2u);
  ASSERT_EQ(schema->foreign_keys().size(), 1u);
  const ForeignKey& fk = schema->foreign_keys()[0];
  EXPECT_EQ(schema->element(fk.target_entity).name, "a");
  EXPECT_EQ(schema->element(fk.target_attribute).name, "id");
}

TEST(DdlParserTest, TableLevelConstraints) {
  auto schema = ParseDdl(
      "CREATE TABLE t (\n"
      "  x BIGINT,\n"
      "  y BIGINT,\n"
      "  z VARCHAR(10),\n"
      "  PRIMARY KEY (x, y),\n"
      "  UNIQUE (z),\n"
      "  CONSTRAINT fk_t FOREIGN KEY (y) REFERENCES other (id),\n"
      "  CHECK (x > 0)\n"
      ");\n"
      "CREATE TABLE other (id BIGINT PRIMARY KEY);",
      "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(schema->element(*schema->FindByName("x")).primary_key);
  EXPECT_TRUE(schema->element(*schema->FindByName("y")).primary_key);
  ASSERT_EQ(schema->foreign_keys().size(), 1u);
  EXPECT_EQ(schema->element(schema->foreign_keys()[0].target_entity).name,
            "other");
}

TEST(DdlParserTest, ForwardReferenceAcrossStatements) {
  auto schema = ParseDdl(
      "CREATE TABLE child (parent_id BIGINT REFERENCES parent);\n"
      "CREATE TABLE parent (id BIGINT PRIMARY KEY);",
      "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->foreign_keys().size(), 1u);
}

TEST(DdlParserTest, DanglingReferenceIsDroppedNotFatal) {
  // Fragments reference tables outside the snippet; the edge is dropped
  // but the parse succeeds (recall over precision for search input).
  auto schema = ParseDdl(
      "CREATE TABLE visit (patient_id BIGINT REFERENCES patient);", "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(schema->foreign_keys().empty());
  EXPECT_EQ(schema->NumAttributes(), 1u);
}

TEST(DdlParserTest, DialectNoise) {
  auto schema = ParseDdl(
      "CREATE TABLE IF NOT EXISTS t (\n"
      "  id INT UNSIGNED AUTO_INCREMENT PRIMARY KEY,\n"
      "  price DECIMAL(10,2) DEFAULT 0.0,\n"
      "  label VARCHAR(50) DEFAULT 'none' COMMENT 'display label',\n"
      "  created TIMESTAMP DEFAULT CURRENT_TIMESTAMP(),\n"
      "  flag BOOLEAN DEFAULT NULL,\n"
      "  KEY idx_label (label)\n"
      ") ENGINE=InnoDB DEFAULT CHARSET=utf8 COMMENT='stuff';",
      "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->NumAttributes(), 5u);
  EXPECT_EQ(schema->element(*schema->FindByName("label")).documentation,
            "display label");
  // Table COMMENT lands on the entity.
  auto entity = schema->FindByName("t", ElementKind::kEntity);
  ASSERT_TRUE(entity.has_value());
  EXPECT_EQ(schema->element(*entity).documentation, "stuff");
}

TEST(DdlParserTest, QuotedReservedTableName) {
  auto schema = ParseDdl(
      "CREATE TABLE \"case\" (id BIGINT PRIMARY KEY);", "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(schema->FindByName("case", ElementKind::kEntity).has_value());
}

TEST(DdlParserTest, SchemaQualifiedNames) {
  auto schema = ParseDdl(
      "CREATE TABLE clinic.patient (id BIGINT PRIMARY KEY);", "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_TRUE(schema->FindByName("patient", ElementKind::kEntity).has_value());
}

TEST(DdlParserTest, CompoundTypeNames) {
  auto schema = ParseDdl(
      "CREATE TABLE t (a DOUBLE PRECISION, b CHARACTER VARYING(20));",
      "test");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->element(*schema->FindByName("a")).type,
            DataType::kDouble);
  EXPECT_EQ(schema->element(*schema->FindByName("b")).type,
            DataType::kString);
}

TEST(DdlParserTest, ErrorsCarryLineNumbers) {
  auto bad = ParseDdl("CREATE TABLE t (\n  a INT,\n  ,\n);", "test");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsParseError());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

TEST(DdlParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDdl("DROP TABLE t;", "test").ok());
  EXPECT_FALSE(ParseDdl("CREATE TABLE", "test").ok());
  EXPECT_FALSE(ParseDdl("CREATE TABLE t (", "test").ok());
  EXPECT_FALSE(ParseDdl("hello world", "test").ok());
}

TEST(DdlParserTest, EmptyScriptYieldsEmptySchema) {
  auto schema = ParseDdl("", "test");
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->empty());
}

// --- DDL writer round-trip ----------------------------------------------------------

TEST(DdlWriterTest, RoundTripPreservesStructure) {
  const char* ddl =
      "CREATE TABLE parent (id BIGINT PRIMARY KEY, name VARCHAR(10));\n"
      "CREATE TABLE child (\n"
      "  id BIGINT PRIMARY KEY,\n"
      "  parent_id BIGINT NOT NULL REFERENCES parent (id)\n"
      ");";
  auto first = ParseDdl(ddl, "round");
  ASSERT_TRUE(first.ok()) << first.status();
  std::string rendered = WriteDdl(*first);
  auto second = ParseDdl(rendered, "round");
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << rendered;
  EXPECT_EQ(first->NumEntities(), second->NumEntities());
  EXPECT_EQ(first->NumAttributes(), second->NumAttributes());
  EXPECT_EQ(first->foreign_keys().size(), second->foreign_keys().size());
  for (ElementId i = 0; i < first->size(); ++i) {
    EXPECT_EQ(first->element(i).name, second->element(i).name);
    EXPECT_EQ(first->element(i).type, second->element(i).type);
    EXPECT_EQ(first->element(i).primary_key, second->element(i).primary_key);
  }
}

TEST(DdlWriterTest, TypeNamesRoundTripThroughParser) {
  for (int t = 0; t <= static_cast<int>(DataType::kBinary); ++t) {
    DataType type = static_cast<DataType>(t);
    DataType round = SqlTypeToDataType(DataTypeToSqlType(type));
    if (type == DataType::kNone) {
      EXPECT_EQ(round, DataType::kString);
    } else {
      EXPECT_EQ(round, type) << "type " << DataTypeName(type);
    }
  }
}

}  // namespace
}  // namespace schemr
