// Round-trip and corruption tests for the binary schema codec, including
// a property-style sweep over randomly generated schemas.

#include <gtest/gtest.h>

#include "corpus/schema_generator.h"
#include "schema/schema_builder.h"
#include "schema/schema_codec.h"
#include "util/rng.h"

namespace schemr {
namespace {

Schema MakeRichSchema() {
  Schema schema = SchemaBuilder("rich")
                      .Description("a schema with all the trimmings")
                      .Source("test://rich")
                      .Entity("order")
                      .Doc("an order")
                      .Attribute("order_id", DataType::kInt64)
                      .PrimaryKey()
                      .Attribute("customer_id", DataType::kInt64)
                      .References("customer.id")
                      .Attribute("notes", DataType::kText)
                      .Entity("customer")
                      .Attribute("id", DataType::kInt64)
                      .PrimaryKey()
                      .Attribute("email", DataType::kString)
                      .NotNull()
                      .Build();
  schema.set_id(77);
  return schema;
}

TEST(SchemaCodecTest, RoundTripsRichSchema) {
  Schema original = MakeRichSchema();
  std::string encoded = EncodeSchema(original);
  Result<Schema> decoded = DecodeSchema(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, original);
}

TEST(SchemaCodecTest, RoundTripsEmptySchema) {
  Schema original("empty");
  std::string encoded = EncodeSchema(original);
  Result<Schema> decoded = DecodeSchema(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
  EXPECT_EQ(decoded->id(), kNoSchema);
}

TEST(SchemaCodecTest, RejectsBadMagic) {
  std::string encoded = EncodeSchema(MakeRichSchema());
  encoded[0] = 'X';
  EXPECT_TRUE(DecodeSchema(encoded).status().IsCorruption());
  EXPECT_TRUE(DecodeSchema("").status().IsCorruption());
  EXPECT_TRUE(DecodeSchema("SC").status().IsCorruption());
}

TEST(SchemaCodecTest, RejectsTrailingBytes) {
  std::string encoded = EncodeSchema(MakeRichSchema());
  encoded += "extra";
  EXPECT_TRUE(DecodeSchema(encoded).status().IsCorruption());
}

TEST(SchemaCodecTest, EveryTruncationFailsCleanly) {
  // Corruption property: any prefix of a valid encoding must decode to an
  // error, never crash or succeed.
  std::string encoded = EncodeSchema(MakeRichSchema());
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Result<Schema> decoded = DecodeSchema(encoded.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << cut << " decoded OK";
  }
}

TEST(SchemaCodecTest, DetectsDanglingReferences) {
  // Hand-craft: encode a schema, then decode after breaking an FK target
  // by truncating elements is covered above; here check a parent pointing
  // past the element count round-trips as an error via crafted bytes.
  Schema schema;
  schema.AddEntity("e");
  std::string encoded = EncodeSchema(schema);
  // The parent ref of element 0 is encoded as varint 0 (= none). Flip it
  // to 2 (= element id 1, out of range for a 1-element schema). The tail
  // of the encoding is: parent varint, flags byte, fk-count varint -- so
  // the parent byte sits third from the end.
  encoded[encoded.size() - 3] = 2;
  EXPECT_TRUE(DecodeSchema(encoded).status().IsCorruption());
}

class CodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecPropertyTest, GeneratedSchemasRoundTrip) {
  // Property: every schema the corpus generator can produce round-trips
  // exactly through the codec.
  CorpusOptions options;
  options.num_schemas = 25;
  options.seed = GetParam();
  for (GeneratedSchema& generated : GenerateCorpus(options)) {
    generated.schema.set_id(GetParam());
    std::string encoded = EncodeSchema(generated.schema);
    Result<Schema> decoded = DecodeSchema(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(*decoded, generated.schema);
    EXPECT_TRUE(decoded->Validate().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(SchemaCodecTest, EncodingIsDeterministic) {
  Schema schema = MakeRichSchema();
  EXPECT_EQ(EncodeSchema(schema), EncodeSchema(schema));
}

}  // namespace
}  // namespace schemr
