// Metrics federation (DESIGN.md §15): parse the Prometheus text dialect
// back into snapshots, merge scrapes bucket-wise, and derive fleet
// quantiles that match the bucket-wise merge exactly.

#include "obs/federation.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"

namespace schemr {
namespace {

using MetricKind = MetricsRegistry::MetricKind;
using MetricSnapshot = MetricsRegistry::MetricSnapshot;

const MetricSnapshot* Find(const std::vector<MetricSnapshot>& metrics,
                           const std::string& name) {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

TEST(FederationParseTest, RoundTripsTheEmittersDialect) {
  MetricsRegistry registry;
  registry.GetCounter("schemr_test_requests_total", "Requests.")
      ->Increment(42);
  registry.GetGauge("schemr_test_in_flight", "In flight.")->Set(3.5);
  Histogram* h =
      registry.GetHistogram("schemr_test_latency_seconds", "Latency.");
  for (double v : {0.0001, 0.004, 0.004, 0.25, 2.0}) h->Observe(v);

  const std::vector<MetricSnapshot> original = registry.Collect();
  auto parsed = ParsePrometheusSnapshots(ToPrometheusText(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const MetricSnapshot& want = original[i];
    const MetricSnapshot& got = (*parsed)[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.help, want.help);
    switch (want.kind) {
      case MetricKind::kCounter:
        EXPECT_EQ(got.counter_value, want.counter_value);
        break;
      case MetricKind::kGauge:
        EXPECT_DOUBLE_EQ(got.gauge_value, want.gauge_value);
        break;
      case MetricKind::kHistogram:
        EXPECT_EQ(got.histogram.bounds, want.histogram.bounds);
        EXPECT_EQ(got.histogram.buckets, want.histogram.buckets);
        EXPECT_EQ(got.histogram.count, want.histogram.count);
        EXPECT_NEAR(got.histogram.sum, want.histogram.sum,
                    1e-6 * (1.0 + want.histogram.sum));
        break;
    }
  }
}

TEST(FederationParseTest, RejectsStructurallyBrokenScrapes) {
  EXPECT_FALSE(ParsePrometheusSnapshots("# TYPE x counter\nx notanumber\n")
                   .ok());
  EXPECT_FALSE(ParsePrometheusSnapshots("# TYPE h histogram\n"
                                        "h_bucket{le=\"0.1\"} 5\n"
                                        "h_bucket{le=\"+Inf\"} 3\n"
                                        "h_sum 1\nh_count 3\n")
                   .ok())
      << "cumulative buckets must be non-decreasing";
  EXPECT_FALSE(ParsePrometheusSnapshots("# TYPE h histogram\n"
                                        "h_bucket{le=\"0.1\"} 5\n"
                                        "h_sum 1\nh_count 5\n")
                   .ok())
      << "histogram without +Inf bucket is incomplete";
}

TEST(FederationParseTest, SkipsUnannouncedAndForeignSeries) {
  auto parsed = ParsePrometheusSnapshots(
      "# some free-form comment\n"
      "orphan_sample 7\n"
      "# TYPE labeled counter\n"
      "labeled{job=\"x\"} 9\n"
      "# TYPE kept counter\n"
      "kept 4\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "kept");
  EXPECT_EQ((*parsed)[0].counter_value, 4u);
}

TEST(FederationMergeTest, CountersAndGaugesSumAcrossScrapes) {
  std::vector<std::vector<MetricSnapshot>> scrapes;
  for (uint64_t n : {3u, 5u, 11u}) {
    MetricsRegistry registry;
    registry.GetCounter("schemr_requests_total")->Increment(n);
    registry.GetGauge("schemr_live")->Set(static_cast<double>(n));
    scrapes.push_back(registry.Collect());
  }
  const std::vector<MetricSnapshot> merged = MergeMetricSnapshots(scrapes);
  const MetricSnapshot* counter = Find(merged, "schemr_requests_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->counter_value, 19u);
  const MetricSnapshot* gauge = Find(merged, "schemr_live");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->gauge_value, 19.0);
}

// The acceptance property: fleet percentiles computed from the merged
// histogram equal, EXACTLY, the percentiles of one histogram that saw
// every replica's observations — because shared bucket bounds make the
// bucket-wise sum lossless.
TEST(FederationMergeTest, MergedQuantilesMatchBucketwiseMergeExactly) {
  const std::vector<std::vector<double>> per_replica = {
      {0.0001, 0.002, 0.002, 0.3},
      {0.004, 0.004, 0.05, 1.2, 4.0},
      {0.00005, 0.9},
  };
  Histogram reference(Histogram::DefaultLatencyBounds());
  std::vector<std::vector<MetricSnapshot>> scrapes;
  for (const std::vector<double>& observations : per_replica) {
    MetricsRegistry registry;
    Histogram* h = registry.GetHistogram("schemr_service_search_xml_seconds");
    for (double v : observations) {
      h->Observe(v);
      reference.Observe(v);
    }
    // Round-trip each scrape through the text dialect, exactly as the
    // coordinator's scraper sees it.
    auto parsed = ParsePrometheusSnapshots(ToPrometheusText(registry.Collect()));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    scrapes.push_back(std::move(*parsed));
  }
  const std::vector<MetricSnapshot> merged = MergeMetricSnapshots(scrapes);
  const MetricSnapshot* m = Find(merged, "schemr_service_search_xml_seconds");
  ASSERT_NE(m, nullptr);
  const HistogramSnapshot want = reference.Snapshot();
  EXPECT_EQ(m->histogram.buckets, want.buckets);
  EXPECT_EQ(m->histogram.count, want.count);
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(m->histogram.Quantile(q), want.Quantile(q))
        << "quantile " << q;
  }
}

TEST(FederationMergeTest, BoundsDisagreementDropsTheFamily) {
  MetricsRegistry a;
  a.GetHistogram("schemr_skewed_seconds", "", {0.1, 1.0})->Observe(0.05);
  a.GetCounter("schemr_kept_total")->Increment(1);
  MetricsRegistry b;
  b.GetHistogram("schemr_skewed_seconds", "", {0.2, 2.0})->Observe(0.05);
  b.GetCounter("schemr_kept_total")->Increment(2);
  const std::vector<MetricSnapshot> merged =
      MergeMetricSnapshots({a.Collect(), b.Collect()});
  EXPECT_EQ(Find(merged, "schemr_skewed_seconds"), nullptr)
      << "version-skewed bounds must not be summed wrongly";
  const MetricSnapshot* kept = Find(merged, "schemr_kept_total");
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->counter_value, 3u);
}

TEST(FederationMergeTest, DeadReplicaIsJustAMissingScrape) {
  MetricsRegistry alive;
  alive.GetCounter("schemr_requests_total")->Increment(7);
  // The caller skips unreachable replicas; the merge only ever sees the
  // scrapes that parsed.
  const std::vector<MetricSnapshot> merged =
      MergeMetricSnapshots({alive.Collect()});
  const MetricSnapshot* counter = Find(merged, "schemr_requests_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->counter_value, 7u);
  EXPECT_TRUE(MergeMetricSnapshots({}).empty());
}

TEST(FederationRenameTest, PrefixesFleetAndStaysSortedAndEmittable) {
  MetricsRegistry registry;
  registry.GetCounter("schemr_zzz_total", "Z.")->Increment(1);
  registry.GetHistogram("schemr_service_search_xml_seconds", "Latency.")
      ->Observe(0.01);
  registry.GetCounter("unprefixed_total")->Increment(2);
  std::vector<MetricSnapshot> renamed = RenameForFleet(registry.Collect());
  ASSERT_EQ(renamed.size(), 3u);
  EXPECT_NE(Find(renamed, "schemr_fleet_zzz_total"), nullptr);
  EXPECT_NE(Find(renamed, "schemr_fleet_service_search_xml_seconds"), nullptr);
  EXPECT_NE(Find(renamed, "schemr_fleet_unprefixed_total"), nullptr);
  for (size_t i = 1; i < renamed.size(); ++i) {
    EXPECT_LT(renamed[i - 1].name, renamed[i].name);
  }
  // The renamed series must re-emit as conformant exposition text.
  const Status checked = CheckPrometheusText(ToPrometheusText(renamed));
  EXPECT_TRUE(checked.ok()) << checked.ToString();
}

}  // namespace
}  // namespace schemr
