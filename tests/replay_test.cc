// Replay-engine coverage (DESIGN.md §10): workload (de)serialization,
// digest-stable re-execution against a pinned snapshot at any thread
// count, mismatch detection against a doctored recording, loading a
// workload straight from an audit log, and the bench-report gate that
// backs tools/bench_gate.

#include "obs/replay.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/fingerprint.h"
#include "corpus/schema_generator.h"
#include "index/indexer.h"
#include "obs/audit_log.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "service/schemr_service.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

std::vector<WorkloadEntry> SampleWorkload() {
  std::vector<WorkloadEntry> workload;
  WorkloadEntry keywords_only;
  keywords_only.keywords = "customer order";
  workload.push_back(keywords_only);
  WorkloadEntry with_fragment;
  with_fragment.keywords = "invoice";
  with_fragment.fragment = "CREATE TABLE invoice (id INT, total DOUBLE);";
  with_fragment.top_k = 5;
  with_fragment.candidate_pool = 25;
  workload.push_back(with_fragment);
  WorkloadEntry fragment_only;
  fragment_only.fragment = "CREATE TABLE customer (id INT, name VARCHAR);";
  workload.push_back(fragment_only);
  return workload;
}

TEST(WorkloadXmlTest, RoundTrips) {
  std::vector<WorkloadEntry> workload = SampleWorkload();
  workload[0].fingerprint = 0x1234;
  workload[0].expected_digest = 0x5678;
  auto parsed = WorkloadFromXml(WorkloadToXml(workload));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ((*parsed)[i].keywords, workload[i].keywords) << i;
    EXPECT_EQ((*parsed)[i].fragment, workload[i].fragment) << i;
    EXPECT_EQ((*parsed)[i].top_k, workload[i].top_k) << i;
    EXPECT_EQ((*parsed)[i].candidate_pool, workload[i].candidate_pool) << i;
    EXPECT_EQ((*parsed)[i].fingerprint, workload[i].fingerprint) << i;
    EXPECT_EQ((*parsed)[i].expected_digest, workload[i].expected_digest) << i;
  }
}

TEST(WorkloadXmlTest, RejectsNonWorkloadDocuments) {
  EXPECT_FALSE(WorkloadFromXml("").ok());
  EXPECT_FALSE(WorkloadFromXml("not xml at all").ok());
  EXPECT_FALSE(WorkloadFromXml("<results></results>").ok());
}

TEST(WorkloadXmlTest, SaveAndLoadThroughAFile) {
  fs::path path =
      fs::temp_directory_path() /
      ("schemr_replay_workload_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
       ".xml");
  fs::remove(path);
  ASSERT_TRUE(SaveWorkload(path.string(), SampleWorkload()).ok());
  size_t skipped = 99;
  auto loaded = LoadWorkload(path.string(), &skipped);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), SampleWorkload().size());
  EXPECT_EQ(skipped, 0u);
  fs::remove(path);
}

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    repo_ = SchemaRepository::OpenInMemory();
    ASSERT_TRUE(repo_
                    ->Insert(SchemaBuilder("sales")
                                 .Entity("customer")
                                 .Attribute("id")
                                 .Attribute("name")
                                 .Entity("order")
                                 .Attribute("id")
                                 .Attribute("customer_id")
                                 .Attribute("total")
                                 .Build())
                    .ok());
    ASSERT_TRUE(repo_
                    ->Insert(SchemaBuilder("billing")
                                 .Entity("invoice")
                                 .Attribute("id")
                                 .Attribute("total")
                                 .Entity("payment")
                                 .Attribute("id")
                                 .Attribute("invoice_id")
                                 .Build())
                    .ok());
    ASSERT_TRUE(repo_
                    ->Insert(SchemaBuilder("crm")
                                 .Entity("customer")
                                 .Attribute("id")
                                 .Attribute("email")
                                 .Build())
                    .ok());
    ASSERT_TRUE(indexer_.RebuildFromRepository(*repo_).ok());
    snapshot_ = std::make_shared<CorpusSnapshot>();
    // Non-owning aliases: repo_/indexer_ outlive the snapshot here.
    snapshot_->index = std::shared_ptr<const InvertedIndex>(
        std::shared_ptr<void>(), &indexer_.index());
    snapshot_->schemas = repo_->View();
    snapshot_->version = repo_->version();
  }

  std::unique_ptr<SchemaRepository> repo_;
  Indexer indexer_;
  std::shared_ptr<CorpusSnapshot> snapshot_;
};

TEST_F(ReplayTest, TwoRunsProduceIdenticalDigests) {
  std::vector<WorkloadEntry> workload = SampleWorkload();
  auto first = ReplayWorkload(snapshot_, workload);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->entries, workload.size());
  EXPECT_EQ(first->executed, workload.size());
  EXPECT_EQ(first->errors, 0u);
  EXPECT_EQ(first->degraded, 0u);
  EXPECT_EQ(first->digest_mismatches, 0u);
  ASSERT_EQ(first->digests.size(), workload.size());
  for (uint64_t digest : first->digests) EXPECT_NE(digest, 0u);

  auto second = ReplayWorkload(snapshot_, workload);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->digests, first->digests);
}

TEST_F(ReplayTest, RecordedDigestsVerifyAndDoctoredOnesAreCaught) {
  std::vector<WorkloadEntry> workload = SampleWorkload();
  auto recording = ReplayWorkload(snapshot_, workload);
  ASSERT_TRUE(recording.ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    workload[i].expected_digest = recording->digests[i];
  }
  auto verified = ReplayWorkload(snapshot_, workload);
  ASSERT_TRUE(verified.ok());
  EXPECT_EQ(verified->digest_mismatches, 0u);

  workload[1].expected_digest ^= 1;  // the recording lies about one entry
  auto doctored = ReplayWorkload(snapshot_, workload);
  ASSERT_TRUE(doctored.ok());
  EXPECT_EQ(doctored->digest_mismatches, 1u);
}

TEST_F(ReplayTest, ThreadedRepeatsStayDeterministic) {
  std::vector<WorkloadEntry> workload = SampleWorkload();
  auto single = ReplayWorkload(snapshot_, workload);
  ASSERT_TRUE(single.ok());

  ReplayOptions options;
  options.threads = 4;
  options.repeat = 3;
  auto threaded = ReplayWorkload(snapshot_, workload, options);
  ASSERT_TRUE(threaded.ok()) << threaded.status();
  EXPECT_EQ(threaded->executed, workload.size() * 3);
  // Repeats cross-check against the first execution; any thread-order
  // dependence in the pipeline would show up here.
  EXPECT_EQ(threaded->digest_mismatches, 0u);
  EXPECT_EQ(threaded->errors, 0u);
  EXPECT_EQ(threaded->digests, single->digests);
}

TEST_F(ReplayTest, EngineThreadsPreserveDigests) {
  std::vector<WorkloadEntry> workload = SampleWorkload();
  auto serial = ReplayWorkload(snapshot_, workload);
  ASSERT_TRUE(serial.ok()) << serial.status();

  // Parallel candidate scoring inside every search, on top of parallel
  // workload execution and repeat cross-checks: the digests must not move.
  ReplayOptions options;
  options.threads = 2;
  options.repeat = 2;
  options.engine_threads = 8;
  auto parallel = ReplayWorkload(snapshot_, workload, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(parallel->engine_threads, 8u);
  EXPECT_EQ(parallel->errors, 0u);
  EXPECT_EQ(parallel->digest_mismatches, 0u);
  EXPECT_EQ(parallel->digests, serial->digests);
}

TEST_F(ReplayTest, CommittedSampleWorkloadIsThreadCountIndependent) {
  // The exact pairing the CI perf gate runs: the committed workload
  // against the reference corpus recipe (120 schemas, seed 42), replayed
  // serially and with 4 scoring threads. Digest divergence here means the
  // parallel pipeline went nondeterministic.
  size_t skipped = 0;
  auto workload = LoadWorkload(
      std::string(SCHEMR_SOURCE_DIR) + "/examples/sample_workload.xml",
      &skipped);
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(skipped, 0u);
  ASSERT_FALSE(workload->empty());

  auto repo = SchemaRepository::OpenInMemory();
  CorpusOptions corpus_options;
  corpus_options.num_schemas = 120;
  corpus_options.seed = 42;
  for (GeneratedSchema& generated : GenerateCorpus(corpus_options)) {
    ASSERT_TRUE(repo->Insert(std::move(generated.schema)).ok());
  }
  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  auto snapshot = std::make_shared<CorpusSnapshot>();
  snapshot->index = std::shared_ptr<const InvertedIndex>(
      std::shared_ptr<void>(), &indexer.index());
  snapshot->schemas = repo->View();
  snapshot->version = repo->version();

  auto serial = ReplayWorkload(snapshot, *workload);
  ASSERT_TRUE(serial.ok()) << serial.status();
  EXPECT_EQ(serial->errors, 0u);

  ReplayOptions options;
  options.engine_threads = 4;
  auto threaded = ReplayWorkload(snapshot, *workload, options);
  ASSERT_TRUE(threaded.ok()) << threaded.status();
  EXPECT_EQ(threaded->errors, 0u);
  EXPECT_EQ(threaded->digest_mismatches, 0u);
  EXPECT_EQ(threaded->digests, serial->digests);
}

TEST_F(ReplayTest, PipelineErrorsAreCountedNotFatal) {
  std::vector<WorkloadEntry> workload(1);  // empty query: parse error
  auto report = ReplayWorkload(snapshot_, workload);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->errors, 1u);
  EXPECT_EQ(report->digests[0], 0u);
}

TEST_F(ReplayTest, EmptyWorkloadIsInvalid) {
  EXPECT_FALSE(ReplayWorkload(snapshot_, {}).ok());
}

TEST_F(ReplayTest, LoadsWorkloadFromAnAuditLog) {
  fs::path dir =
      fs::temp_directory_path() /
      ("schemr_replay_audit_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
       "_" +
       ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove_all(dir);

  // A service with a sub-microsecond slow threshold retains query text on
  // every record, so every request becomes replayable.
  SchemrService service(repo_.get(), &indexer_.index());
  AuditLogOptions slow_everything;
  slow_everything.slow_threshold_seconds = 0.0;
  ASSERT_TRUE(service.EnableAudit(dir.string(), slow_everything).ok());
  SearchRequest request;
  request.keywords = "customer order";
  (void)service.HandleSearchXml(request);
  request.keywords = "invoice total";
  (void)service.HandleSearchXml(request);
  service.audit()->Close();

  size_t skipped = 0;
  auto workload = LoadWorkload(dir.string(), &skipped);
  ASSERT_TRUE(workload.ok()) << workload.status();
  ASSERT_EQ(workload->size(), 2u);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ((*workload)[0].keywords, "customer order");
  EXPECT_NE((*workload)[0].expected_digest, 0u);

  // The recorded digests must verify against a snapshot of the same
  // corpus — the live-service digest and the replay digest are the same
  // function of the same pipeline.
  auto report = ReplayWorkload(snapshot_, *workload);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->digest_mismatches, 0u);

  // Fast records without text are skipped, not errors.
  fs::remove_all(dir);
  SchemrService fast_service(repo_.get(), &indexer_.index());
  ASSERT_TRUE(fast_service.EnableAudit(dir.string()).ok());  // 250ms bar
  request.keywords = "customer";
  (void)fast_service.HandleSearchXml(request);
  fast_service.audit()->Close();
  skipped = 0;
  auto textless = LoadWorkload(dir.string(), &skipped);
  EXPECT_FALSE(textless.ok());  // nothing replayable survives
  EXPECT_EQ(skipped, 1u);

  fs::remove_all(dir);
}

// --- bench report + gate ----------------------------------------------------

ReplayReport MakeReport(double scale) {
  ReplayReport report;
  report.entries = 3;
  report.executed = 6;
  report.threads = 2;
  report.repeat = 2;
  report.engine_threads = 4;
  report.wall_seconds = 0.5 * scale;
  report.qps = 12.0 / scale;
  report.total = {0.010 * scale, 0.020 * scale, 0.030 * scale};
  report.phase1 = {0.002 * scale, 0.004 * scale, 0.005 * scale};
  report.phase2 = {0.006 * scale, 0.012 * scale, 0.020 * scale};
  report.phase3 = {0.002 * scale, 0.004 * scale, 0.005 * scale};
  report.digests = {1, 2, 3};
  return report;
}

TEST(BenchJsonTest, JsonRoundTripsThroughTheFlatParser) {
  auto flat = ParseBenchJson(ReplayReportToJson(MakeReport(1.0)));
  ASSERT_TRUE(flat.ok()) << flat.status();
  EXPECT_DOUBLE_EQ(flat->at("entries"), 3.0);
  EXPECT_DOUBLE_EQ(flat->at("executed"), 6.0);
  EXPECT_DOUBLE_EQ(flat->at("digest_mismatches"), 0.0);
  EXPECT_NEAR(flat->at("latency_seconds.total.p95"), 0.020, 1e-12);
  EXPECT_NEAR(flat->at("latency_seconds.phase2.p99"), 0.020, 1e-12);
  EXPECT_NEAR(flat->at("qps"), 12.0, 1e-9);
  EXPECT_DOUBLE_EQ(flat->at("engine_threads"), 4.0);
}

TEST(BenchJsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseBenchJson("").ok());
  EXPECT_FALSE(ParseBenchJson("{").ok());
  EXPECT_FALSE(ParseBenchJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseBenchJson("[1, 2]").ok());
}

TEST(BenchGateTest, SameReportPasses) {
  std::string json = ReplayReportToJson(MakeReport(1.0));
  auto gate = CompareBenchReports(json, json);
  ASSERT_TRUE(gate.ok()) << gate.status();
  EXPECT_TRUE(gate->pass)
      << (gate->violations.empty() ? "" : gate->violations[0]);
  EXPECT_TRUE(gate->violations.empty());
}

TEST(BenchGateTest, RegressionBeyondToleranceFails) {
  std::string baseline = ReplayReportToJson(MakeReport(1.0));
  // 5% slower: inside the +10% tolerance.
  auto small = CompareBenchReports(baseline, ReplayReportToJson(MakeReport(1.05)));
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(small->pass);
  // 50% slower: out.
  auto big = CompareBenchReports(baseline, ReplayReportToJson(MakeReport(1.5)));
  ASSERT_TRUE(big.ok());
  EXPECT_FALSE(big->pass);
  EXPECT_FALSE(big->violations.empty());
}

TEST(BenchGateTest, ScaledBaselineIsTheNegativeTest) {
  // Identical runs, baseline artificially halved: the gate MUST fail —
  // this is exactly the CI job that proves the gate can fail.
  std::string json = ReplayReportToJson(MakeReport(1.0));
  GateOptions options;
  options.baseline_scale = 0.5;
  auto gate = CompareBenchReports(json, json, options);
  ASSERT_TRUE(gate.ok());
  EXPECT_FALSE(gate->pass);
}

TEST(BenchGateTest, DigestMismatchesFailRegardlessOfLatency) {
  ReplayReport bad = MakeReport(0.5);  // twice as FAST, but...
  bad.digest_mismatches = 1;
  auto gate = CompareBenchReports(ReplayReportToJson(MakeReport(1.0)),
                                  ReplayReportToJson(bad));
  ASSERT_TRUE(gate.ok());
  EXPECT_FALSE(gate->pass);

  GateOptions lenient;
  lenient.max_digest_mismatches = 2;
  auto tolerated = CompareBenchReports(ReplayReportToJson(MakeReport(1.0)),
                                       ReplayReportToJson(bad), lenient);
  ASSERT_TRUE(tolerated.ok());
  EXPECT_TRUE(tolerated->pass);
}

TEST(BenchGateTest, ThroughputCollapseFails) {
  // Latency percentiles can look fine while throughput craters (lock
  // convoys, pool starvation). Baseline qps 12 with the default 75%
  // tolerance requires >= 3.
  ReplayReport bad = MakeReport(1.0);
  bad.qps = 1.0;
  auto gate = CompareBenchReports(ReplayReportToJson(MakeReport(1.0)),
                                  ReplayReportToJson(bad));
  ASSERT_TRUE(gate.ok());
  EXPECT_FALSE(gate->pass);
  ASSERT_FALSE(gate->violations.empty());
  EXPECT_NE(gate->violations[0].find("qps"), std::string::npos);

  // A looser operator-chosen tolerance admits the same report.
  GateOptions lenient;
  lenient.qps_tolerance = 0.95;  // requires >= 0.6
  auto tolerated = CompareBenchReports(ReplayReportToJson(MakeReport(1.0)),
                                       ReplayReportToJson(bad), lenient);
  ASSERT_TRUE(tolerated.ok());
  EXPECT_TRUE(tolerated->pass);
}

TEST(BenchGateTest, NewErrorsFail) {
  ReplayReport bad = MakeReport(1.0);
  bad.errors = 2;
  auto gate = CompareBenchReports(ReplayReportToJson(MakeReport(1.0)),
                                  ReplayReportToJson(bad));
  ASSERT_TRUE(gate.ok());
  EXPECT_FALSE(gate->pass);
}

}  // namespace
}  // namespace schemr
