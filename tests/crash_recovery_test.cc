// Crash-recovery torture harness and graceful-degradation acceptance
// tests (DESIGN.md §8).
//
// The torture tests run hundreds of randomized kill-point cycles: each
// cycle replays a seeded workload against a fresh store, kills it
// in-process at a random fault-shim hit (InjectedCrash), reopens the
// directory, and asserts that every fsync-acknowledged write survived
// exactly. SCHEMR_TORTURE_CYCLES overrides the per-test cycle count (the
// CI torture job raises it).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <random>
#include <string>

#include "core/search_engine.h"
#include "index/indexer.h"
#include "repo/schema_repository.h"
#include "schema/schema_builder.h"
#include "store/kv_store.h"
#include "util/fault_injection.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

size_t CyclesOrDefault(size_t default_cycles) {
  const char* env = std::getenv("SCHEMR_TORTURE_CYCLES");
  if (env == nullptr || *env == '\0') return default_cycles;
  size_t cycles = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  return cycles > 0 ? cycles : default_cycles;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("schemr_crash_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().DisarmAll();
    fs::remove_all(dir_);
  }

  std::string SubDir(const std::string& name) {
    fs::path p = dir_ / name;
    fs::remove_all(p);
    return p.string();
  }

  fs::path dir_;
};

/// Options for all torture stores: every acked write is fsynced (so it
/// must survive any crash), and tiny segments force frequent rolls and
/// multi-segment recovery.
KvStoreOptions TortureOptions() {
  KvStoreOptions options;
  options.sync_on_write = true;
  options.max_segment_bytes = 256;
  return options;
}

struct Op {
  bool is_put = true;
  std::string key;
  std::string value;
};

std::vector<Op> MakeWorkload(std::mt19937_64* rng, size_t num_ops) {
  std::uniform_int_distribution<int> key_dist(0, 11);
  std::uniform_int_distribution<int> len_dist(0, 60);
  std::uniform_int_distribution<int> byte_dist('a', 'z');
  std::uniform_int_distribution<int> kind_dist(0, 9);
  std::vector<Op> ops;
  ops.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    Op op;
    op.key = "key" + std::to_string(key_dist(*rng));
    op.is_put = kind_dist(*rng) < 7;  // 70% put, 30% delete
    if (op.is_put) {
      int len = len_dist(*rng);
      for (int b = 0; b < len; ++b) {
        op.value.push_back(static_cast<char>(byte_dist(*rng)));
      }
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

Status Apply(KvStore* store, const Op& op) {
  return op.is_put ? store->Put(op.key, op.value) : store->Delete(op.key);
}

void ApplyToModel(std::map<std::string, std::string>* model, const Op& op) {
  if (op.is_put) {
    (*model)[op.key] = op.value;
  } else {
    model->erase(op.key);
  }
}

std::map<std::string, std::string> Dump(const KvStore& store) {
  std::map<std::string, std::string> contents;
  Status st = store.ForEach([&](std::string_view key, std::string_view value) {
    contents.emplace(std::string(key), std::string(value));
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st;
  return contents;
}

/// Every cycle: measure a clean run's shim-op count, then replay the same
/// workload killing the store at a uniformly random shim hit. On reopen,
/// the store must hold exactly the acknowledged state -- the one
/// in-flight operation may have landed or not, nothing else may differ.
TEST_F(CrashRecoveryTest, WritePathTortureLosesNoAcknowledgedWrite) {
  const size_t cycles = CyclesOrDefault(120);
  FaultInjector& fi = FaultInjector::Global();
  for (size_t cycle = 0; cycle < cycles; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    std::mt19937_64 rng(0x5eed0000 + cycle);
    std::vector<Op> ops = MakeWorkload(&rng, 40);

    // Clean run: count how many shim hits the workload produces.
    uint64_t total_ops = 0;
    {
      auto store = KvStore::Open(SubDir("clean"), TortureOptions());
      ASSERT_TRUE(store.ok()) << store.status();
      fi.CountOps(true);
      for (const Op& op : ops) ASSERT_TRUE(Apply(store->get(), op).ok());
      total_ops = fi.ops_seen();
      fi.DisarmAll();
    }
    ASSERT_GT(total_ops, 0u);

    // Crash run: kill at a random shim hit.
    std::uniform_int_distribution<uint64_t> kill_dist(1, total_ops);
    uint64_t kill_at = kill_dist(rng);
    std::string crash_dir = SubDir("crash");
    std::map<std::string, std::string> acked;
    size_t next_op = 0;
    {
      auto store = KvStore::Open(crash_dir, TortureOptions());
      ASSERT_TRUE(store.ok()) << store.status();
      fi.ScheduleCrashAtOp(kill_at);
      try {
        for (; next_op < ops.size(); ++next_op) {
          Status st = Apply(store->get(), ops[next_op]);
          ASSERT_TRUE(st.ok()) << st;
          ApplyToModel(&acked, ops[next_op]);
        }
      } catch (const InjectedCrash&) {
        // ops[next_op] was in flight; everything before it was acked
        // (Put/Delete returned OK after an fsync).
      }
      fi.DisarmAll();
      // The store object is abandoned as a real kill would abandon the
      // process; only its destructor (close) runs.
    }

    auto reopened = KvStore::Open(crash_dir, TortureOptions());
    ASSERT_TRUE(reopened.ok())
        << "reopen after crash at op " << kill_at << ": "
        << reopened.status();
    std::map<std::string, std::string> recovered = Dump(**reopened);

    // Allowed states: exactly the acked model, or the acked model plus
    // the in-flight op applied. Any other difference is lost or invented
    // data.
    if (recovered != acked) {
      ASSERT_LT(next_op, ops.size())
          << "crash at op " << kill_at
          << ": state differs from the model but no op was in flight";
      std::map<std::string, std::string> with_in_flight = acked;
      ApplyToModel(&with_in_flight, ops[next_op]);
      EXPECT_EQ(recovered, with_in_flight)
          << "crash at op " << kill_at << " (in-flight op " << next_op
          << "): recovered state is neither the acked model nor the model "
          << "plus the in-flight op";
    }

    // The recovered store must accept writes again.
    ASSERT_TRUE((*reopened)->Put("post_crash", "ok").ok());
    auto back = (*reopened)->Get("post_crash");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, "ok");
  }
}

/// Compaction must never change logical state, no matter where it dies:
/// each cycle builds two identical stores, measures the shim-op count of
/// a clean Compact() on one, kills the other's Compact() at a random hit,
/// and requires the reopened store to hold exactly the pre-compaction
/// contents. A follow-up Compact() must then succeed.
TEST_F(CrashRecoveryTest, CompactionTorturePreservesAllData) {
  const size_t cycles = CyclesOrDefault(100);
  FaultInjector& fi = FaultInjector::Global();
  for (size_t cycle = 0; cycle < cycles; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    std::mt19937_64 rng(0xc0de0000 + cycle);
    std::vector<Op> ops = MakeWorkload(&rng, 50);

    std::map<std::string, std::string> model;
    auto build = [&](const std::string& dir)
        -> Result<std::unique_ptr<KvStore>> {
      auto store = KvStore::Open(dir, TortureOptions());
      if (!store.ok()) return store.status();
      for (const Op& op : ops) {
        Status st = Apply(store->get(), op);
        if (!st.ok()) return st;
      }
      return std::move(*store);
    };

    uint64_t total_ops = 0;
    {
      auto clean = build(SubDir("clean"));
      ASSERT_TRUE(clean.ok()) << clean.status();
      fi.CountOps(true);
      ASSERT_TRUE((*clean)->Compact().ok());
      total_ops = fi.ops_seen();
      fi.DisarmAll();
    }
    ASSERT_GT(total_ops, 0u);
    for (const Op& op : ops) ApplyToModel(&model, op);

    std::string crash_dir = SubDir("crash");
    {
      auto store = build(crash_dir);
      ASSERT_TRUE(store.ok()) << store.status();
      std::uniform_int_distribution<uint64_t> kill_dist(1, total_ops);
      fi.ScheduleCrashAtOp(kill_dist(rng));
      bool crashed = false;
      try {
        Status st = (*store)->Compact();
        // A scheduled crash can only surface as InjectedCrash; any error
        // status would mean the crash was mis-handled as a fault.
        EXPECT_TRUE(st.ok()) << st;
      } catch (const InjectedCrash&) {
        crashed = true;
      }
      fi.DisarmAll();
      EXPECT_TRUE(crashed) << "scheduled kill never fired";
    }

    auto reopened = KvStore::Open(crash_dir, TortureOptions());
    ASSERT_TRUE(reopened.ok()) << "reopen after compaction crash: "
                               << reopened.status();
    EXPECT_EQ(Dump(**reopened), model)
        << "compaction crash changed logical state";

    // The recovered store must be able to finish the job.
    ASSERT_TRUE((*reopened)->Compact().ok());
    EXPECT_EQ(Dump(**reopened), model);
  }
}

// --- named crash points: the compaction marker protocol ---------------------

TEST_F(CrashRecoveryTest, CrashAfterMarkerRollsCompactionBack) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*store)->Put("k" + std::to_string(i % 5), std::string(40, 'v')).ok());
  }
  std::map<std::string, std::string> before = Dump(**store);

  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  fi.Arm("kv/compact/after_marker", crash);
  EXPECT_THROW((void)(*store)->Compact(), InjectedCrash);
  fi.DisarmAll();

  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(Dump(**reopened), before);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "COMPACTING"));
}

TEST_F(CrashRecoveryTest, CrashBeforeMarkerClearRollsCompactionBack) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*store)->Put("k" + std::to_string(i % 5), std::string(40, 'v')).ok());
  }
  std::map<std::string, std::string> before = Dump(**store);

  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  fi.Arm("kv/compact/before_clear_marker", crash);
  EXPECT_THROW((void)(*store)->Compact(), InjectedCrash);
  fi.DisarmAll();

  // The full output was written and fsynced, but the marker still stands:
  // recovery must discard the output and serve the old segments.
  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(Dump(**reopened), before);
}

TEST_F(CrashRecoveryTest, CrashAfterMarkerClearKeepsCompactedState) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*store)->Put("k" + std::to_string(i % 5), std::string(40, 'v')).ok());
  }
  std::map<std::string, std::string> before = Dump(**store);

  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  fi.Arm("kv/compact/after_clear_marker", crash);
  EXPECT_THROW((void)(*store)->Compact(), InjectedCrash);
  fi.DisarmAll();

  // Committed: old segments linger until the interrupted deletes are
  // redone by a later compaction, but replay order keeps them harmless.
  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(Dump(**reopened), before);
  ASSERT_TRUE((*reopened)->Compact().ok());
  EXPECT_EQ(Dump(**reopened), before);
}

TEST_F(CrashRecoveryTest, CrashMidOldSegmentDeletionIsHarmless) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        (*store)->Put("k" + std::to_string(i % 7), std::string(40, 'v')).ok());
  }
  std::map<std::string, std::string> before = Dump(**store);

  // Let the first deletion happen, crash on the second.
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.skip = 1;
  fi.Arm("kv/compact/delete_old", crash);
  EXPECT_THROW((void)(*store)->Compact(), InjectedCrash);
  fi.DisarmAll();

  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(Dump(**reopened), before);
}

// --- error faults (no crash): the store degrades, never corrupts ------------

TEST_F(CrashRecoveryTest, FailedCompactionRestoresOldViewAndRetries) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(
        (*store)->Put("k" + std::to_string(i % 6), std::string(30, 'x')).ok());
  }
  std::map<std::string, std::string> before = Dump(**store);

  // Fail the 4th record append inside the compaction output.
  FaultSpec eio;
  eio.kind = FaultKind::kError;
  eio.error_code = EIO;
  eio.skip = 3;
  eio.count = 1;
  fi.Arm("kv/append/write", eio);
  Status st = (*store)->Compact();
  fi.DisarmAll();
  EXPECT_FALSE(st.ok());

  // Satellite check: the failed compaction restored the old view -- all
  // data readable, writes accepted, retry succeeds.
  EXPECT_EQ(Dump(**store), before);
  ASSERT_TRUE((*store)->Put("after_failure", "ok").ok());
  ASSERT_TRUE((*store)->Compact().ok());
  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto recovered = Dump(**reopened);
  before["after_failure"] = "ok";
  EXPECT_EQ(recovered, before);
}

TEST_F(CrashRecoveryTest, AppendEnospcSurfacesErrorAndKeepsStoreUsable) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("stable", "value").ok());

  FaultSpec enospc;
  enospc.kind = FaultKind::kError;
  enospc.error_code = ENOSPC;
  enospc.count = 1;
  fi.Arm("kv/append/write", enospc);
  Status st = (*store)->Put("doomed", "value");
  fi.DisarmAll();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("No space"), std::string::npos) << st;

  // The failed write was rolled back; the store keeps serving.
  EXPECT_FALSE((*store)->Contains("doomed"));
  EXPECT_EQ(*(*store)->Get("stable"), "value");
  ASSERT_TRUE((*store)->Put("next", "fine").ok());
  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*(*reopened)->Get("next"), "fine");
  EXPECT_FALSE((*reopened)->Contains("doomed"));
}

TEST_F(CrashRecoveryTest, AppendFsyncFailureRollsRecordBack) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("stable", "value").ok());

  // The record is fully written before the fsync fails; without the
  // ftruncate rollback the orphan record desyncs the O_APPEND position
  // from active_offset_, and every later read in the segment returns
  // Corruption until reopen.
  FaultSpec eio;
  eio.kind = FaultKind::kError;
  eio.error_code = EIO;
  eio.count = 1;
  fi.Arm("kv/append/fsync", eio);
  Status st = (*store)->Put("doomed", std::string(40, 'd'));
  fi.DisarmAll();
  ASSERT_FALSE(st.ok());

  EXPECT_FALSE((*store)->Contains("doomed"));
  ASSERT_TRUE((*store)->Put("next", "fine").ok());
  EXPECT_EQ(*(*store)->Get("next"), "fine");
  EXPECT_EQ(*(*store)->Get("stable"), "value");
  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(*(*reopened)->Get("next"), "fine");
  EXPECT_FALSE((*reopened)->Contains("doomed"));
}

TEST_F(CrashRecoveryTest, FailedMarkerFsyncDoesNotPoisonFutureSegments) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        (*store)->Put("k" + std::to_string(i), std::string(20, 'x')).ok());
  }

  // The marker payload lands but its fsync fails: the complete COMPACTING
  // marker may survive on disk. Compact must remove it before returning,
  // or a later segment roll mints the marker's first_output_id and the
  // next Recover() silently discards that segment as compaction output.
  FaultSpec eio;
  eio.kind = FaultKind::kError;
  eio.error_code = EIO;
  eio.count = 1;
  fi.Arm("kv/compact/marker_fsync", eio);
  Status st = (*store)->Compact();
  fi.DisarmAll();
  ASSERT_FALSE(st.ok());

  // Keep writing past max_segment_bytes so the store rolls into the id
  // the failed compaction would have claimed.
  std::map<std::string, std::string> model = Dump(**store);
  for (int i = 0; i < 40; ++i) {
    std::string key = "roll" + std::to_string(i);
    std::string value(30, 'r');
    ASSERT_TRUE((*store)->Put(key, value).ok());
    model[key] = value;
  }
  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(Dump(**reopened), model);
}

TEST_F(CrashRecoveryTest, TornShortWriteIsTruncatedNotReplayed) {
  FaultInjector& fi = FaultInjector::Global();
  std::string dir = SubDir("store");
  auto store = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("whole", "value").ok());

  FaultSpec torn;
  torn.kind = FaultKind::kShortWrite;
  torn.arg = 7;  // persist 7 bytes of the record, then fail
  torn.count = 1;
  fi.Arm("kv/append/write", torn);
  Status st = (*store)->Put("torn", std::string(50, 't'));
  fi.DisarmAll();
  ASSERT_FALSE(st.ok());

  // The torn prefix must not poison later appends.
  ASSERT_TRUE((*store)->Put("later", "fine").ok());
  auto reopened = KvStore::Open(dir, TortureOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(*(*reopened)->Get("whole"), "value");
  EXPECT_EQ(*(*reopened)->Get("later"), "fine");
  EXPECT_FALSE((*reopened)->Contains("torn"));
}

// --- graceful degradation up the stack --------------------------------------

/// With a matcher forced to fail via fault injection, Search must still
/// return ranked results -- flagged degraded, never an error.
TEST_F(CrashRecoveryTest, SearchSurvivesInjectedMatcherFailure) {
  auto repo = SchemaRepository::OpenInMemory();
  ASSERT_TRUE(repo->Insert(SchemaBuilder("clinic")
                               .Entity("patient")
                               .Attribute("height", DataType::kDouble)
                               .Attribute("diagnosis")
                               .Build())
                  .ok());
  ASSERT_TRUE(repo->Insert(SchemaBuilder("shop")
                               .Entity("customer")
                               .Attribute("name")
                               .Build())
                  .ok());
  Indexer indexer;
  ASSERT_TRUE(indexer.RebuildFromRepository(*repo).ok());
  SearchEngine engine(repo.get(), &indexer.index());

  FaultInjector& fi = FaultInjector::Global();
  FaultSpec eio;
  eio.kind = FaultKind::kError;
  eio.error_code = EIO;
  fi.Arm("match/name", eio);

  SearchStats stats;
  SearchEngineOptions options;
  options.stats = &stats;
  auto results = engine.SearchKeywords("patient height diagnosis", options);
  fi.DisarmAll();

  ASSERT_TRUE(results.ok()) << "degradation must never become an error: "
                            << results.status();
  ASSERT_FALSE(results->empty());
  EXPECT_TRUE(stats.degraded);
  ASSERT_EQ(stats.dropped_matchers.size(), 1u);
  EXPECT_EQ(stats.dropped_matchers[0], "name");
  for (const SearchResult& r : *results) {
    EXPECT_TRUE(r.degraded);
    EXPECT_GE(r.score, 0.0);
  }
  EXPECT_GE(FaultInjector::Global().faults_fired(), 1u);
}

}  // namespace
}  // namespace schemr
