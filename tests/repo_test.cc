// Tests for the schema repository, both backends.

#include <gtest/gtest.h>

#include <filesystem>

#include "repo/schema_repository.h"
#include "schema/schema_builder.h"

namespace schemr {
namespace {

namespace fs = std::filesystem;

Schema MakeSchema(const std::string& name) {
  return SchemaBuilder(name)
      .Entity("thing")
      .Attribute("id", DataType::kInt64)
      .PrimaryKey()
      .Attribute("label")
      .Build();
}

/// Shared contract test run against both backends.
void RunCrudContract(SchemaRepository* repo) {
  auto id1 = repo->Insert(MakeSchema("first"));
  ASSERT_TRUE(id1.ok()) << id1.status();
  auto id2 = repo->Insert(MakeSchema("second"));
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
  EXPECT_EQ(repo->Size(), 2u);
  EXPECT_TRUE(repo->Contains(*id1));

  auto fetched = repo->Get(*id1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->name(), "first");
  EXPECT_EQ(fetched->id(), *id1);

  // Update.
  Schema updated = *fetched;
  updated.set_description("updated description");
  ASSERT_TRUE(repo->Update(updated).ok());
  EXPECT_EQ(repo->Get(*id1)->description(), "updated description");

  // Update of unknown id fails.
  Schema ghost = MakeSchema("ghost");
  ghost.set_id(9999);
  EXPECT_TRUE(repo->Update(ghost).IsNotFound());
  // Update without id fails.
  EXPECT_FALSE(repo->Update(MakeSchema("no_id")).ok());

  // Listing.
  auto summaries = repo->ListAll();
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries->size(), 2u);
  EXPECT_EQ((*summaries)[0].name, "first");
  EXPECT_EQ((*summaries)[0].num_entities, 1u);
  EXPECT_EQ((*summaries)[0].num_attributes, 2u);

  // Remove.
  ASSERT_TRUE(repo->Remove(*id2).ok());
  EXPECT_TRUE(repo->Remove(*id2).IsNotFound());
  EXPECT_TRUE(repo->Get(*id2).status().IsNotFound());
  EXPECT_EQ(repo->Size(), 1u);

  // Ids are never reused after removal.
  auto id3 = repo->Insert(MakeSchema("third"));
  ASSERT_TRUE(id3.ok());
  EXPECT_GT(*id3, *id2);
}

TEST(SchemaRepositoryTest, InMemoryCrud) {
  auto repo = SchemaRepository::OpenInMemory();
  RunCrudContract(repo.get());
}

TEST(SchemaRepositoryTest, PersistentCrud) {
  fs::path dir = fs::temp_directory_path() / "schemr_repo_test_crud";
  fs::remove_all(dir);
  auto repo = SchemaRepository::Open(dir.string());
  ASSERT_TRUE(repo.ok()) << repo.status();
  RunCrudContract(repo->get());
  fs::remove_all(dir);
}

TEST(SchemaRepositoryTest, InsertRejectsInvalidSchema) {
  auto repo = SchemaRepository::OpenInMemory();
  Schema bad;
  bad.AddEntity("");  // empty name fails validation
  EXPECT_FALSE(repo->Insert(std::move(bad)).ok());
  EXPECT_EQ(repo->Size(), 0u);
}

TEST(SchemaRepositoryTest, PersistsAcrossReopenWithIdContinuity) {
  fs::path dir = fs::temp_directory_path() / "schemr_repo_test_reopen";
  fs::remove_all(dir);
  SchemaId first_id = kNoSchema;
  {
    auto repo = SchemaRepository::Open(dir.string());
    ASSERT_TRUE(repo.ok());
    first_id = *(*repo)->Insert(MakeSchema("persisted"));
    ASSERT_TRUE((*repo)->Remove(
        *(*repo)->Insert(MakeSchema("removed"))).ok());
  }
  {
    auto repo = SchemaRepository::Open(dir.string());
    ASSERT_TRUE(repo.ok());
    EXPECT_EQ((*repo)->Size(), 1u);
    EXPECT_EQ((*repo)->Get(first_id)->name(), "persisted");
    // The id counter survived: new ids continue past removed ones.
    auto next = (*repo)->Insert(MakeSchema("later"));
    ASSERT_TRUE(next.ok());
    EXPECT_GT(*next, first_id + 1);
  }
  fs::remove_all(dir);
}

TEST(SchemaRepositoryTest, ForEachAscendingAndEarlyExit) {
  auto repo = SchemaRepository::OpenInMemory();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(repo->Insert(MakeSchema("s" + std::to_string(i))).ok());
  }
  std::vector<SchemaId> visited;
  ASSERT_TRUE(repo->ForEach([&visited](const Schema& schema) {
                    visited.push_back(schema.id());
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(visited.size(), 5u);
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));

  // Errors propagate and stop iteration.
  int count = 0;
  Status st = repo->ForEach([&count](const Schema&) {
    if (++count == 2) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(count, 2);
}

TEST(SchemaRepositoryTest, CompactPreservesContent) {
  fs::path dir = fs::temp_directory_path() / "schemr_repo_test_compact";
  fs::remove_all(dir);
  auto repo_result = SchemaRepository::Open(dir.string());
  ASSERT_TRUE(repo_result.ok());
  auto& repo = *repo_result.value();
  std::vector<SchemaId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(*repo.Insert(MakeSchema("s" + std::to_string(i))));
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(repo.Remove(ids[i]).ok());
  }
  ASSERT_TRUE(repo.Compact().ok());
  EXPECT_EQ(repo.Size(), 5u);
  for (int i = 5; i < 10; ++i) {
    EXPECT_EQ(repo.Get(ids[i])->name(), "s" + std::to_string(i));
  }
  fs::remove_all(dir);
}

TEST(SchemaRepositoryTest, RoundTripsComplexSchema) {
  auto repo = SchemaRepository::OpenInMemory();
  Schema original = SchemaBuilder("complex")
                        .Description("desc")
                        .Source("src://x")
                        .Entity("a")
                        .Attribute("a_id", DataType::kInt64)
                        .PrimaryKey()
                        .NestedEntity("nested")
                        .Attribute("deep", DataType::kText)
                        .End()
                        .Entity("b")
                        .Attribute("a_ref", DataType::kInt64)
                        .References("a.a_id")
                        .Build();
  SchemaId id = *repo->Insert(original);
  Schema fetched = *repo->Get(id);
  original.set_id(id);  // Insert assigns the id
  EXPECT_EQ(fetched, original);
}

}  // namespace
}  // namespace schemr
